"""Configuration dataclasses shared across the OnSlicing reproduction.

Every tunable of the system lives here so experiments are reproducible
from a single object graph.  The defaults mirror the paper's testbed:

* three slices (MAR, HVS, RDC) with the SLA targets of Sec. 7.1,
* a 96-slot (24 h, 15-min interval) episode,
* SLA threshold ``C_max = 5 %`` of cumulative cost,
* 128x64x32 fully-connected policy networks with sigmoid actor heads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Ordered names of the ten orchestration action dimensions (paper Sec. 3).
ACTION_NAMES: Tuple[str, ...] = (
    "uplink_bandwidth",       # U_u  -- share of uplink PRBs
    "uplink_mcs_offset",      # U_m  -- uplink MCS offset (0..10 discretised)
    "uplink_scheduler",       # U_a  -- uplink scheduling algorithm choice
    "downlink_bandwidth",     # U_d  -- share of downlink RBGs
    "downlink_mcs_offset",    # U_s  -- downlink MCS offset (0..10 discretised)
    "downlink_scheduler",     # U_g  -- downlink scheduling algorithm choice
    "transport_bandwidth",    # U_b  -- share of transport link capacity
    "transport_path",         # U_l  -- reserved path in TN (discretised)
    "cpu_allocation",         # U_c  -- CPU share for SPGW-U + edge server
    "ram_allocation",         # U_r  -- RAM share for SPGW-U + edge server
)

#: Indices of action dimensions that count toward the resource-usage
#: reward (paper Eq. 9): U_u + U_d + U_b + U_l + U_c + U_r.  Scheduler
#: choices and MCS offsets are excluded because their impact on usage is
#: indirect.
USAGE_ACTION_INDICES: Tuple[int, ...] = (0, 3, 6, 7, 8, 9)

#: Indices that are *not* consumable resources (schedulers, MCS offsets).
NON_RESOURCE_INDICES: Tuple[int, ...] = (1, 2, 4, 5)

NUM_ACTIONS = len(ACTION_NAMES)

#: Maximum MCS offset supported by the RDM's custom CQI-MCS tables.
MAX_MCS_OFFSET = 10


@dataclass(frozen=True)
class SliceSLA:
    """Service-level agreement of a slice.

    Attributes
    ----------
    metric:
        Name of the performance metric (``latency_ms``, ``fps``,
        ``reliability``).
    target:
        Required value ``P`` in Eq. 10 (e.g. 500 ms, 30 FPS, 0.99999).
    cost_threshold:
        ``C_max`` -- the statistical SLA threshold on the mean per-slot
        cost over an episode (paper uses 5 %).
    lower_is_better:
        True for latency-style metrics where smaller measured values are
        better; the satisfaction ratio then uses ``target / measured``.
    """

    metric: str
    target: float
    cost_threshold: float = 0.05
    lower_is_better: bool = False


@dataclass(frozen=True)
class SliceSpec:
    """Static description of one network slice and its application."""

    name: str
    app: str                       # "mar" | "hvs" | "rdc"
    sla: SliceSLA
    max_arrival_rate: float        # users/s scale for the traffic trace
    #: Mean payload sizes in bits used by the app model.
    uplink_payload_bits: float = 0.0
    downlink_payload_bits: float = 0.0
    #: CPU work units per request at the edge (MAR feature extraction etc).
    compute_units: float = 0.0

    def __post_init__(self) -> None:
        if self.app not in ("mar", "hvs", "rdc"):
            raise ValueError(f"unknown app {self.app!r}")
        if self.max_arrival_rate <= 0:
            raise ValueError("max_arrival_rate must be positive")


def mar_slice_spec(name: str = "MAR") -> SliceSpec:
    """MAR slice: 540p frames uplink, ORB feature extraction at the edge.

    SLA: average round-trip frame latency <= 500 ms (delay sensitive).
    """
    return SliceSpec(
        name=name,
        app="mar",
        sla=SliceSLA(metric="latency_ms", target=500.0, lower_is_better=True),
        max_arrival_rate=5.0,
        uplink_payload_bits=8e5,      # ~100 kB compressed 540p frame
        downlink_payload_bits=8e3,    # matched-object reply
        compute_units=1.0,
    )


def hvs_slice_spec(name: str = "HVS") -> SliceSpec:
    """HD video streaming slice: 1080p downlink stream, SLA 30 FPS."""
    return SliceSpec(
        name=name,
        app="hvs",
        sla=SliceSLA(metric="fps", target=30.0),
        max_arrival_rate=2.0,
        uplink_payload_bits=4e3,      # player feedback
        downlink_payload_bits=1.4e5,  # ~4.2 Mbps @ 30fps -> bits/frame
        compute_units=0.05,
    )


def rdc_slice_spec(name: str = "RDC") -> SliceSpec:
    """Reliable distant control slice: 1 kbit messages, 99.999 % reliability."""
    return SliceSpec(
        name=name,
        app="rdc",
        sla=SliceSLA(metric="reliability", target=0.99999),
        max_arrival_rate=100.0,
        uplink_payload_bits=1e3,
        downlink_payload_bits=1e3,
        compute_units=0.01,
    )


def default_slice_specs() -> List[SliceSpec]:
    """The paper's three evaluation slices (Sec. 7.1)."""
    return [mar_slice_spec(), hvs_slice_spec(), rdc_slice_spec()]


#: Canonical spec builder per application kind.
SLICE_SPEC_BUILDERS = {
    "mar": mar_slice_spec,
    "hvs": hvs_slice_spec,
    "rdc": rdc_slice_spec,
}


def slice_spec_for_app(app: str, name: Optional[str] = None,
                       arrival_scale: float = 1.0) -> SliceSpec:
    """Instantiate a slice spec from one of the paper's app templates.

    ``arrival_scale`` scales the template's peak arrival rate, which is
    how scenario definitions populate a cell with N > 3 slices without
    over-running the fixed infrastructure (N copies at scale ~3/N offer
    roughly the paper's aggregate load).
    """
    try:
        builder = SLICE_SPEC_BUILDERS[app]
    except KeyError as exc:
        raise ValueError(f"unknown app {app!r}; expected one of "
                         f"{tuple(SLICE_SPEC_BUILDERS)}") from exc
    if arrival_scale <= 0:
        raise ValueError("arrival_scale must be positive")
    spec = builder(name) if name is not None else builder()
    return dataclasses.replace(
        spec, max_arrival_rate=spec.max_arrival_rate * arrival_scale)


@dataclass(frozen=True)
class RANConfig:
    """Radio access network parameters.

    Defaults model the paper's 4G LTE cell: 20 MHz / 100 PRBs at 2.6 GHz.
    The 5G NR variant uses 40 MHz / 106 PRBs at 30 kHz subcarrier spacing
    with the TDD split of Sec. 7.2 ("Performance in 5G").
    """

    technology: str = "lte"           # "lte" | "nr"
    num_prbs: int = 100
    prb_bandwidth_hz: float = 180e3   # LTE PRB; NR@30kHz SCS uses 360 kHz
    #: Fraction of slots/symbols available for DL and UL (TDD split).
    downlink_fraction: float = 0.6
    uplink_fraction: float = 0.4
    #: Fixed MCS index if >= 0 (paper pins MCS 9 for the 4G/5G comparison).
    fixed_mcs: int = -1
    #: PHY+MAC overhead discount on achievable rate.
    overhead: float = 0.20
    #: Base one-way RAN latency in ms (scheduling + HARQ pipeline).
    base_latency_ms: float = 10.0

    def __post_init__(self) -> None:
        if self.technology not in ("lte", "nr"):
            raise ValueError(f"unknown RAN technology {self.technology!r}")
        if self.num_prbs <= 0:
            raise ValueError("num_prbs must be positive")
        if not 0 < self.downlink_fraction < 1:
            raise ValueError("downlink_fraction must be in (0, 1)")


def lte_ran_config() -> RANConfig:
    """The testbed eNB: 2.6 GHz, 20 MHz, 100 PRBs."""
    return RANConfig(technology="lte", num_prbs=100,
                     prb_bandwidth_hz=180e3, base_latency_ms=10.5)


def nr_ran_config() -> RANConfig:
    """The testbed gNB: 3.5 GHz, 40 MHz, 106 PRBs @ 30 kHz SCS.

    TDD configuration: 5 slots + 6 symbols DL, 4 slots + 4 symbols UL out
    of 10 slots -> DL fraction ~0.54, UL fraction ~0.43 (paper Sec. 7.2).
    """
    return RANConfig(technology="nr", num_prbs=106,
                     prb_bandwidth_hz=360e3, downlink_fraction=0.54,
                     uplink_fraction=0.43, base_latency_ms=2.5)


@dataclass(frozen=True)
class TransportConfig:
    """Transport network parameters (Ruckus ICX 7150-C12P substitute)."""

    link_capacity_bps: float = 1e9    # 1 Gbps per port
    num_paths: int = 3
    #: Per-hop forwarding latency in ms.
    hop_latency_ms: float = 0.5
    #: Extra hops of the k-th alternative path relative to the shortest.
    path_extra_hops: Tuple[int, ...] = (0, 1, 2)

    def __post_init__(self) -> None:
        if self.num_paths != len(self.path_extra_hops):
            raise ValueError("path_extra_hops must list one entry per path")


@dataclass(frozen=True)
class CoreConfig:
    """CUPS core network parameters."""

    #: Packet-processing capacity of one fully-provisioned SPGW-U, in
    #: packets/s (Docker on the Intel i7 workstation).
    sgwu_capacity_pps: float = 2.0e5
    num_sgwu_per_slice: int = 2
    #: Base control/user-plane latency in ms.
    base_latency_ms: float = 2.0
    mean_packet_bits: float = 12e3    # 1500-byte packets


@dataclass(frozen=True)
class EdgeConfig:
    """Edge server parameters (co-located with SPGW-U containers)."""

    #: Compute-unit throughput at 100 % CPU (MAR ORB extraction ~ 20/s on
    #: the i7 workstation per the DARE/MAR literature the paper cites).
    compute_capacity_ups: float = 40.0
    total_cpu_cores: float = 8.0
    total_ram_gb: float = 32.0
    #: RAM (GB) needed per unit of sustained request throughput before
    #: swapping penalties kick in.
    ram_gb_per_ups: float = 0.25


@dataclass(frozen=True)
class NetworkConfig:
    """Composite end-to-end infrastructure description."""

    ran: RANConfig = field(default_factory=lte_ran_config)
    transport: TransportConfig = field(default_factory=TransportConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    edge: EdgeConfig = field(default_factory=EdgeConfig)
    #: Number of users each slice serves (per-slice UE population used
    #: for channel realisations).
    users_per_slice: int = 3


@dataclass(frozen=True)
class TrafficConfig:
    """Telecom-Italia-style synthetic trace parameters (Sec. 7.1)."""

    slot_minutes: float = 15.0
    slots_per_episode: int = 96       # 24 hours
    #: Diurnal profile: morning/evening peak hours.
    morning_peak_hour: float = 10.0
    evening_peak_hour: float = 20.0
    night_floor: float = 0.15         # fraction of peak at night
    #: Multiplicative log-normal noise sigma on each 10-min bin.
    noise_sigma: float = 0.18
    weekly_modulation: float = 0.12   # weekend dampening amplitude
    #: Seed for the synthesizer's own noise stream when the caller does
    #: not inject a Generator (kept at the historical value so default
    #: traces are unchanged).
    seed: int = 11


@dataclass(frozen=True)
class PolicyNetConfig:
    """Architecture of all policy networks (paper Sec. 6: 128x64x32)."""

    hidden_sizes: Tuple[int, ...] = (128, 64, 32)
    activation: str = "relu"
    actor_output_activation: str = "sigmoid"  # actions in [0, 1]


@dataclass(frozen=True)
class PPOConfig:
    """Hyper-parameters of the clipped-surrogate PPO learner."""

    learning_rate: float = 2e-4
    value_learning_rate: float = 1e-3
    clip_ratio: float = 0.1
    gamma: float = 0.99
    gae_lambda: float = 0.95
    update_epochs: int = 4
    minibatch_size: int = 64
    entropy_coef: float = 0.0
    value_coef: float = 0.5
    max_grad_norm: float = 0.5
    #: Initial log standard deviation of the Gaussian policy.  Actions
    #: live in [0, 1], so exploration noise must be a small fraction of
    #: the box (std ~= 0.10).
    initial_log_std: float = -3.0
    #: Floor on the log std to keep minimal exploration.
    min_log_std: float = -4.0
    target_kl: float = 0.01


@dataclass(frozen=True)
class LagrangianConfig:
    """Constraint-aware update (paper Eq. 3-5)."""

    initial_multiplier: float = 3.0
    step_size: float = 10.0           # epsilon in Eq. 5
    max_multiplier: float = 50.0
    #: Floor on lambda.  The pure sub-gradient rule drives lambda to 0
    #: while the constraint is satisfied, after which the unconstrained
    #: usage-minimiser dives straight back over the SLA cliff; a small
    #: floor keeps the cost signal alive (the projected dual variable
    #: of a strictly-feasible point need not be exactly zero in finite
    #: time anyway).
    min_multiplier: float = 1.0
    #: Step-size multiplier applied when the constraint is satisfied
    #: (residual negative) -- slow decay avoids bang-bang oscillation
    #: between "safe" and "violating" policies.
    decay_fraction: float = 0.2


@dataclass(frozen=True)
class SwitchingConfig:
    """Proactive baseline switching (paper Eq. 8)."""

    enabled: bool = True
    #: Risk-preference factor eta; larger -> more conservative.
    eta: float = 1.0
    #: Use the Bayesian estimator pi_phi; when False the switch degrades
    #: to the OnSlicing-NE variant (reactive: switch only once the
    #: cumulative cost alone crosses the threshold).
    use_estimator: bool = True
    #: Gaussian noise std injected on pi_phi outputs (Table 2 robustness
    #: ablation "OnSlicing Est. Noise" uses 1.0).
    estimator_noise_std: float = 0.0


@dataclass(frozen=True)
class EstimatorConfig:
    """pi_phi: variational Bayesian cost-to-go estimator."""

    hidden_sizes: Tuple[int, ...] = (64, 32)
    learning_rate: float = 1e-3
    kl_weight: float = 1e-3
    train_epochs: int = 40
    minibatch_size: int = 128
    num_posterior_samples: int = 16
    prior_std: float = 1.0


@dataclass(frozen=True)
class ModifierConfig:
    """pi_a: action modifier (paper Eq. 13) and coordination (Eq. 14)."""

    hidden_sizes: Tuple[int, ...] = (128, 64, 32)
    learning_rate: float = 1e-3
    train_epochs: int = 30
    minibatch_size: int = 128
    dataset_size: int = 4096
    #: epsilon step size of the parameter coordinator (Eq. 14).
    coordinator_step_size: float = 0.5
    max_coordination_rounds: int = 12
    #: Stop coordinating once relative over-request is below this.
    tolerance: float = 1e-3
    #: Warm-start beta from the previous slot (paper's initialisation).
    warm_start: bool = True
    #: Gaussian noise std on modifier outputs (Table 3 "Md. Noise" = 1.0).
    modifier_noise_std: float = 0.0
    #: When True use plain proportional projection instead of pi_a
    #: (Table 3 "OnSlicing-projection").
    use_projection: bool = False


@dataclass(frozen=True)
class BCConfig:
    """Behavior cloning from the rule-based baseline (paper Eq. 15)."""

    learning_rate: float = 1e-3
    epochs: int = 60
    minibatch_size: int = 128
    episodes_per_epoch: int = 10


@dataclass(frozen=True)
class AgentConfig:
    """Everything one OnSlicing agent needs."""

    policy: PolicyNetConfig = field(default_factory=PolicyNetConfig)
    ppo: PPOConfig = field(default_factory=PPOConfig)
    lagrangian: LagrangianConfig = field(default_factory=LagrangianConfig)
    switching: SwitchingConfig = field(default_factory=SwitchingConfig)
    estimator: EstimatorConfig = field(default_factory=EstimatorConfig)
    modifier: ModifierConfig = field(default_factory=ModifierConfig)
    bc: BCConfig = field(default_factory=BCConfig)


@dataclass(frozen=True)
class ExperimentConfig:
    """Top-level experiment description."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    agent: AgentConfig = field(default_factory=AgentConfig)
    slices: Tuple[SliceSpec, ...] = field(
        default_factory=lambda: tuple(default_slice_specs()))
    seed: int = 7
    #: Number of transitions per training epoch (paper: 1000).
    transitions_per_epoch: int = 1000

    def replace(self, **kwargs) -> "ExperimentConfig":
        """Functional update helper (dataclasses.replace passthrough)."""
        return dataclasses.replace(self, **kwargs)


def action_index(name: str) -> int:
    """Return the index of an action dimension by its canonical name."""
    try:
        return ACTION_NAMES.index(name)
    except ValueError as exc:
        raise KeyError(f"unknown action dimension {name!r}") from exc


def usage_from_action(action) -> float:
    """Resource usage of an action vector per paper Eq. 9.

    ``usage = U_u + U_d + U_b + U_l + U_c + U_r`` averaged to [0, 1] so a
    value of 1.0 means every counted resource is fully allocated.
    """
    import numpy as np

    arr = np.asarray(action, dtype=float)
    if arr.shape[-1] != NUM_ACTIONS:
        raise ValueError(
            f"action must have {NUM_ACTIONS} dims, got {arr.shape[-1]}")
    return float(np.mean(arr[..., list(USAGE_ACTION_INDICES)]))
