"""pi_a: the action modifier of the distributed coordination (Eq. 13).

The modifier turns an agent's original action ``a`` into ``a_hat``
minimising

    H = |a_hat - a|_2^2 + sum_k beta_k * a_hat_k + w_c * c(s, a_hat)

where ``beta_k`` are the coordinating parameters from the domain
managers.  The slice cost ``c(s, a_hat)`` "is too complicated to be
mathematically modeled", so -- following the paper -- we learn it from
system data: :class:`CostSurrogate` regresses (state, action) -> cost
on transitions collected from the real system; :class:`ActionModifier`
then trains pi_a offline to minimise H with gradients flowing through
the frozen surrogate ("this network is offline trained with supervised
learning by minimizing the objective function in Eq. 13", with the
dataset of [s, a, beta] built by appending randomly generated
coordinating parameters to collected state-action pairs).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config import ModifierConfig, NUM_ACTIONS
from repro.nn.losses import mse_loss
from repro.nn.network import MLP
from repro.nn.optim import Adam, clip_grad_norm
from repro.sim.env import STATE_DIM
from repro.sim.network import CONSTRAINED_RESOURCES

#: Weight of the cost term in H -- balances the [0, 1] cost against the
#: up-to-NUM_ACTIONS distance term.
COST_WEIGHT = 3.0


def beta_vector(beta: Mapping[str, float]) -> np.ndarray:
    """Expand per-kind coordinating parameters onto action dimensions.

    Only the consumable dimensions (PRB shares, transport bandwidth,
    CPU, RAM) carry a beta; scheduler/MCS/path dimensions get zero.
    """
    vec = np.zeros(NUM_ACTIONS)
    for kind, idx in CONSTRAINED_RESOURCES.items():
        vec[idx] = float(beta.get(kind, 0.0))
    return vec


class CostSurrogate:
    """Differentiable model of the slice cost ``c(s, a)``."""

    def __init__(self, state_dim: int = STATE_DIM,
                 action_dim: int = NUM_ACTIONS,
                 hidden_sizes: Sequence[int] = (128, 64, 32),
                 rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(7)
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.network = MLP(state_dim + action_dim, 1,
                           hidden_sizes=hidden_sizes,
                           output_activation="sigmoid",
                           rng=self._rng, name="cost_surrogate")
        self._optim = Adam(self.network.parameters(), lr=1e-3)

    def fit(self, states: np.ndarray, actions: np.ndarray,
            costs: np.ndarray, epochs: int = 30,
            minibatch_size: int = 128) -> List[float]:
        """Supervised regression on collected transitions."""
        states = np.asarray(states, dtype=float)
        actions = np.asarray(actions, dtype=float)
        costs = np.asarray(costs, dtype=float).reshape(-1, 1)
        if not len(states) == len(actions) == len(costs):
            raise ValueError("dataset length mismatch")
        inputs = np.concatenate([states, actions], axis=1)
        n = len(inputs)
        curve: List[float] = []
        for _ in range(epochs):
            order = self._rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, minibatch_size):
                idx = order[start:start + minibatch_size]
                pred = self.network.forward(inputs[idx])
                loss, grad = mse_loss(pred, costs[idx])
                self._optim.zero_grad()
                self.network.backward(grad)
                clip_grad_norm(self.network.parameters(), 5.0)
                self._optim.step()
                total += loss
                batches += 1
            curve.append(total / max(batches, 1))
        return curve

    def predict(self, states: np.ndarray,
                actions: np.ndarray) -> np.ndarray:
        inputs = np.concatenate(
            [np.atleast_2d(states), np.atleast_2d(actions)], axis=1)
        return self.network.forward(inputs)[:, 0]

    def cost_and_action_grad(self, states: np.ndarray,
                             actions: np.ndarray
                             ) -> Tuple[np.ndarray, np.ndarray]:
        """Predicted cost and its gradient w.r.t. the action inputs."""
        states = np.atleast_2d(states)
        actions = np.atleast_2d(actions)
        inputs = np.concatenate([states, actions], axis=1)
        pred = self.network.forward(inputs)
        grad_in = self.network.backward(np.ones_like(pred))
        # Careful: backward() accumulates parameter grads; surrogate is
        # frozen during pi_a training, so zero them to stay clean.
        self.network.zero_grad()
        return pred[:, 0], grad_in[:, self.state_dim:]


class ActionModifier:
    """pi_a network: (state, action, beta) -> modified action.

    The modified action is assembled as

        a_hat = clip(a - beta/2 + s * (2 * pi_a(s, a, beta) - 1), 0, 1)

    where ``a - beta/2`` is the closed-form minimiser of the quadratic
    part of H (``|a_hat - a|^2 + sum_k beta_k a_hat_k``) and the network
    contributes a *bounded* cost-aware correction of magnitude at most
    ``CORRECTION_SCALE``.  Bounding the learned part keeps the modifier
    graceful when the proposals drift outside its training distribution
    during online learning -- an unbounded network there can gut a
    feasible allocation and trigger exactly the SLA violations the
    mechanism exists to prevent.
    """

    #: Maximum magnitude of the learned correction per dimension.
    CORRECTION_SCALE = 0.15

    def __init__(self, cfg: Optional[ModifierConfig] = None,
                 state_dim: int = STATE_DIM,
                 action_dim: int = NUM_ACTIONS,
                 surrogate: Optional[CostSurrogate] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cfg = cfg or ModifierConfig()
        self._rng = rng if rng is not None else np.random.default_rng(9)
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.num_betas = len(CONSTRAINED_RESOURCES)
        in_dim = state_dim + action_dim + self.num_betas
        self.network = MLP(in_dim, action_dim,
                           hidden_sizes=self.cfg.hidden_sizes,
                           output_activation="sigmoid",
                           rng=self._rng, name="pi_a")
        self.surrogate = surrogate if surrogate is not None else \
            CostSurrogate(state_dim, action_dim, rng=self._rng)
        self._optim = Adam(self.network.parameters(),
                           lr=self.cfg.learning_rate)

    # ---- offline training ------------------------------------------

    def _beta_matrix(self, betas: np.ndarray) -> np.ndarray:
        """Expand (n, num_betas) kind-order betas to action dims."""
        mat = np.zeros((len(betas), self.action_dim))
        for col, (_kind, idx) in enumerate(
                CONSTRAINED_RESOURCES.items()):
            mat[:, idx] = betas[:, col]
        return mat

    def _assemble(self, actions: np.ndarray, beta_mat: np.ndarray,
                  net_out: np.ndarray) -> np.ndarray:
        """Combine the analytic base with the bounded correction."""
        base = actions - 0.5 * beta_mat
        correction = self.CORRECTION_SCALE * (2.0 * net_out - 1.0)
        return np.clip(base + correction, 0.0, 1.0)

    def objective(self, states: np.ndarray, actions: np.ndarray,
                  betas: np.ndarray, modified: np.ndarray
                  ) -> Tuple[float, np.ndarray]:
        """Mean H over a batch and dH/d(modified).

        H = |a_hat - a|^2 + sum_k beta_k a_hat_k + w_c c(s, a_hat).
        """
        n = len(modified)
        beta_mat = self._beta_matrix(betas)
        cost, cost_grad = self.surrogate.cost_and_action_grad(
            states, modified)
        distance = np.sum((modified - actions) ** 2, axis=1)
        beta_term = np.sum(beta_mat * modified, axis=1)
        h = float(np.mean(distance + beta_term + COST_WEIGHT * cost))
        grad = (2.0 * (modified - actions) + beta_mat
                + COST_WEIGHT * cost_grad) / n
        return h, grad

    def train_offline(self, states: np.ndarray, actions: np.ndarray,
                      epochs: Optional[int] = None,
                      beta_scale: float = 1.0) -> List[float]:
        """Offline pi_a training on system data + random betas.

        Builds the paper's dataset: each collected (s, a) pair is
        paired with coordinating parameters drawn uniformly from
        [0, beta_scale] (plus a share of all-zero betas so the modifier
        learns to be the identity when nothing is over-requested), then
        pi_a is updated to minimise H through the frozen surrogate.
        """
        states = np.asarray(states, dtype=float)
        actions = np.asarray(actions, dtype=float)
        n = len(states)
        if n == 0:
            raise ValueError("empty modifier dataset")
        betas = self._rng.uniform(0.0, beta_scale,
                                  size=(n, self.num_betas))
        zero_rows = self._rng.random(n) < 0.25
        betas[zero_rows] = 0.0
        inputs = np.concatenate([states, actions, betas], axis=1)
        epochs = epochs if epochs is not None else self.cfg.train_epochs
        curve: List[float] = []
        for _ in range(epochs):
            order = self._rng.permutation(n)
            total, batches = 0.0, 0
            for start in range(0, n, self.cfg.minibatch_size):
                idx = order[start:start + self.cfg.minibatch_size]
                net_out = self.network.forward(inputs[idx])
                beta_mat = self._beta_matrix(betas[idx])
                modified = self._assemble(actions[idx], beta_mat,
                                          net_out)
                h, grad = self.objective(states[idx], actions[idx],
                                         betas[idx], modified)
                # d a_hat / d net_out = 2 * CORRECTION_SCALE where the
                # clip is inactive (straight-through at the box edge).
                active = (modified > 0.0) & (modified < 1.0)
                grad_out = grad * active * (2.0 * self.CORRECTION_SCALE)
                self._optim.zero_grad()
                self.network.backward(grad_out)
                clip_grad_norm(self.network.parameters(), 5.0)
                self._optim.step()
                total += h
                batches += 1
            curve.append(total / max(batches, 1))
        return curve

    # ---- runtime ------------------------------------------------------

    def modify(self, state: np.ndarray, action: np.ndarray,
               beta: Mapping[str, float]) -> np.ndarray:
        """One modification pass: a_hat = pi_a(s, a, beta).

        With all-zero betas the modified action should track the
        original closely (nothing is over-requested); larger betas push
        the corresponding resource dimensions down.  Optional Gaussian
        noise (Table 3's "Md. Noise" ablation) is applied afterwards,
        clipped back to the action box.
        """
        state = np.asarray(state, dtype=float)
        action = np.asarray(action, dtype=float)
        beta_kinds = np.array([
            float(beta.get(kind, 0.0))
            for kind in CONSTRAINED_RESOURCES])
        inputs = np.concatenate([state, action, beta_kinds])
        net_out = self.network.predict(inputs)
        beta_mat = self._beta_matrix(beta_kinds[None, :])[0]
        modified = self._assemble(action[None, :], beta_mat[None, :],
                                  net_out[None, :])[0]
        if self.cfg.modifier_noise_std > 0:
            modified = modified + self._rng.normal(
                0.0, self.cfg.modifier_noise_std, size=modified.shape)
        return np.clip(modified, 0.0, 1.0)
