"""Offline learning from the baseline (paper Sec. 5 + modifier data).

Before any online learning the agent is prepared offline:

1. the baseline policy pi_b runs full episodes against the network,
   collecting (state, action, reward, cost) transitions;
2. pi_theta is trained by behavior cloning (Eq. 15) until it imitates
   pi_b's actions (Fig. 10: the agent's usage approaches the baseline's
   over BC epochs);
3. pi_phi is fitted on the baseline episodes' cost-to-go via the ELBO;
4. the cost surrogate and pi_a are trained on the same transitions
   plus exploration actions with random coordinating parameters
   (Sec. 4's dataset construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import NUM_ACTIONS
from repro.core.agent import OnSlicingAgent
from repro.rl.behavior_cloning import BehaviorCloningTrainer
from repro.sim.env import ScenarioSimulator, SliceObservation


@dataclass
class OfflineDataset:
    """Baseline-rollout transitions for one slice.

    ``actions`` are the *executed* actions (possibly exploration-
    jittered); ``expert_actions`` are the clean pi_b labels for the
    visited states.  Behavior cloning trains on the expert labels so
    the clone learns to *recover* toward the baseline from off-
    trajectory states (a DAgger-style correction -- without it, one
    noisy slot pushes the state features off the training manifold and
    the clone cascades).
    """

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[np.ndarray] = field(default_factory=list)
    expert_actions: List[np.ndarray] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    costs: List[float] = field(default_factory=list)
    usages: List[float] = field(default_factory=list)
    episode_bounds: List[int] = field(default_factory=list)

    def add(self, state: np.ndarray, action: np.ndarray, reward: float,
            cost: float, usage: float,
            expert_action: Optional[np.ndarray] = None) -> None:
        self.states.append(np.asarray(state, dtype=float))
        self.actions.append(np.asarray(action, dtype=float))
        self.expert_actions.append(
            np.asarray(expert_action, dtype=float)
            if expert_action is not None
            else np.asarray(action, dtype=float))
        self.rewards.append(float(reward))
        self.costs.append(float(cost))
        self.usages.append(float(usage))

    def end_episode(self) -> None:
        self.episode_bounds.append(len(self.states))

    def __len__(self) -> int:
        return len(self.states)

    def episodes(self):
        """Yield (states, costs) per episode for estimator training."""
        start = 0
        for end in self.episode_bounds:
            yield (self.states[start:end], self.costs[start:end])
            start = end

    def mean_usage(self) -> float:
        return float(np.mean(self.usages)) if self.usages else 0.0


def collect_baseline_rollouts(simulator: ScenarioSimulator,
                              baselines: Dict[str, object],
                              num_episodes: int,
                              exploration_std: float = 0.0,
                              rng: Optional[np.random.Generator] = None
                              ) -> Dict[str, OfflineDataset]:
    """Run pi_b for every slice and collect per-slice datasets.

    ``exploration_std`` adds Gaussian jitter to the baseline actions
    (clipped to the box); the modifier's cost surrogate needs coverage
    around the baseline trajectory, not just on it.
    """
    rng = rng if rng is not None else np.random.default_rng(31)
    datasets = {name: OfflineDataset() for name in simulator.slice_names}
    for _ in range(num_episodes):
        observations = simulator.reset()
        while not simulator.done:
            actions = {}
            expert = {}
            for name in simulator.slice_names:
                label = np.asarray(
                    baselines[name].act(observations[name]), dtype=float)
                expert[name] = label
                action = label
                if exploration_std > 0:
                    action = np.clip(
                        label + rng.normal(0.0, exploration_std,
                                           size=label.shape),
                        0.0, 1.0)
                actions[name] = action
            results = simulator.step(actions)
            for name, result in results.items():
                datasets[name].add(
                    observations[name].vector(), actions[name],
                    result.reward, result.cost, result.usage,
                    expert_action=expert[name])
                observations[name] = result.observation
        for dataset in datasets.values():
            dataset.end_episode()
    return datasets


@dataclass
class PretrainReport:
    """Loss curves of the offline stage for one agent."""

    bc_curve: List[float]
    estimator_curve: List[float]
    surrogate_curve: List[float]
    modifier_curve: List[float]
    dataset_size: int


def pretrain_agent(agent: OnSlicingAgent, dataset: OfflineDataset,
                   bc_epochs: Optional[int] = None,
                   exploration_dataset: Optional[OfflineDataset] = None
                   ) -> PretrainReport:
    """Run the full offline stage for one agent.

    ``dataset`` holds *pure* baseline rollouts -- pi_theta clones them
    and pi_phi learns the baseline's cost-to-go from them.
    ``exploration_dataset`` (jittered baseline actions) trains the cost
    surrogate and pi_a, which need coverage around the baseline
    trajectory; it defaults to ``dataset``.
    """
    if len(dataset) == 0:
        raise ValueError("empty offline dataset")
    explore = exploration_dataset if exploration_dataset is not None \
        else dataset

    # 1) behavior cloning of pi_b into pi_theta (Eq. 15).  States from
    #    both the clean and the jittered rollouts, always labelled with
    #    the expert pi_b action, so the clone recovers toward pi_b from
    #    off-trajectory states instead of cascading.
    bc_states = np.concatenate(
        [np.stack(dataset.states), np.stack(explore.states)]) \
        if explore is not dataset else np.stack(dataset.states)
    bc_labels = np.concatenate(
        [np.stack(dataset.expert_actions),
         np.stack(explore.expert_actions)]) \
        if explore is not dataset else np.stack(dataset.expert_actions)
    bc = BehaviorCloningTrainer(agent.model.actor, cfg=agent.cfg.bc,
                                rng=agent._rng)
    bc_curve = bc.fit(bc_states, bc_labels, epochs=bc_epochs)

    # 2) pi_phi on the baseline cost-to-go (Eq. 7) -- *clean* rollouts
    #    only: pi_phi must estimate what the baseline would cost from
    #    here on, so jittered executions would bias it pessimistic and
    #    make the switch fire on every episode.
    for ep_states, ep_costs in dataset.episodes():
        agent.estimator.add_episode(ep_states, ep_costs)
    estimator_curve = agent.estimator.fit()

    # 3) cost surrogate + pi_a (Eq. 13) on the exploration data
    ex_states = np.stack(explore.states)
    ex_actions = np.stack(explore.actions)
    ex_costs = np.array(explore.costs)
    surrogate_curve = agent.modifier.surrogate.fit(
        ex_states, ex_actions, ex_costs)
    modifier_curve = agent.modifier.train_offline(ex_states, ex_actions)

    # 4) warm-start the critic toward the (penalised) baseline returns,
    #    so early PPO updates see sane value targets.
    _warm_start_critic(agent, dataset)
    return PretrainReport(bc_curve=bc_curve,
                          estimator_curve=estimator_curve,
                          surrogate_curve=surrogate_curve,
                          modifier_curve=modifier_curve,
                          dataset_size=len(dataset))


def _warm_start_critic(agent: OnSlicingAgent, dataset: OfflineDataset,
                       epochs: int = 10) -> None:
    """Fit the critic to discounted penalised returns of the dataset."""
    from repro.nn.losses import mse_loss
    from repro.nn.optim import Adam, clip_grad_norm

    gamma = agent.cfg.ppo.gamma
    returns: List[float] = []
    start = 0
    for end in dataset.episode_bounds:
        g = 0.0
        episode_returns = []
        for i in reversed(range(start, end)):
            penalized = (dataset.rewards[i]
                         - agent.lagrangian.value * dataset.costs[i])
            g = penalized + gamma * g
            episode_returns.append(g)
        returns.extend(reversed(episode_returns))
        start = end
    states = np.stack(dataset.states[:len(returns)])
    targets = np.array(returns)
    optim = Adam(agent.model.critic.parameters(),
                 lr=agent.cfg.ppo.value_learning_rate)
    for _ in range(epochs):
        pred = agent.model.critic.forward(states)[:, 0]
        _loss, grad = mse_loss(pred, targets)
        optim.zero_grad()
        agent.model.critic.backward(grad[:, None])
        clip_grad_norm(agent.model.critic.parameters(), 5.0)
        optim.step()
