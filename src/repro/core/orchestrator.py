"""The OnSlicing orchestrator: multi-slice online learning loop.

Ties together the per-slice agents, the domain managers' parameter
coordinators and the end-to-end network (paper Fig. 1):

1. every agent proposes an action for its slice;
2. :func:`coordinate_actions` runs the distributed coordination of
   Sec. 4 -- action modifiers and parameter coordinators exchange
   ``beta`` until resource constraints hold (warm-started from the
   previous slot, so typically ~2 rounds);
3. the network evaluates the slot; agents observe (with the executed,
   post-coordination action) and learn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.baselines.projection import project_actions
from repro.config import ExperimentConfig
from repro.core.agent import OnSlicingAgent
from repro.domains.cdm import CoreDomainManager
from repro.domains.coordinator import ParameterCoordinator
from repro.domains.edm import EdgeDomainManager
from repro.domains.rdm import RadioDomainManager
from repro.domains.tdm import TransportDomainManager
from repro.sim.env import ScenarioSimulator, SliceObservation
from repro.sim.network import CONSTRAINED_RESOURCES


@dataclass
class DomainManagerSet:
    """The four domain managers over one network instance."""

    rdm: RadioDomainManager
    tdm: TransportDomainManager
    cdm: CoreDomainManager
    edm: EdgeDomainManager

    @classmethod
    def for_simulator(cls, simulator: ScenarioSimulator,
                      coordinator_step: float = 0.5
                      ) -> "DomainManagerSet":
        network = simulator.network
        managers = cls(
            rdm=RadioDomainManager(network.cell,
                                   coordinator_step=coordinator_step),
            tdm=TransportDomainManager(network.fabric,
                                       coordinator_step=coordinator_step),
            cdm=CoreDomainManager(network.core),
            edm=EdgeDomainManager(network.edge,
                                  coordinator_step=coordinator_step),
        )
        for name in simulator.slice_names:
            managers.rdm.create_slice(name)
            managers.tdm.create_slice(name)
        return managers

    @property
    def coordinators(self) -> List[ParameterCoordinator]:
        return [self.rdm.coordinator, self.tdm.coordinator,
                self.edm.coordinator]


@dataclass(frozen=True)
class CoordinationResult:
    """Outcome of one slot's distributed coordination."""

    actions: Dict[str, np.ndarray]
    rounds: int                     # modifier <-> coordinator exchanges
    betas: Dict[str, float]
    projected: bool                 # True if the projection fallback ran


def _requested_totals(actions: Mapping[str, np.ndarray]
                      ) -> Dict[str, float]:
    totals = {}
    for kind, idx in CONSTRAINED_RESOURCES.items():
        totals[kind] = float(sum(a[idx] for a in actions.values()))
    return totals


def coordinate_actions(states: Mapping[str, np.ndarray],
                       proposals: Mapping[str, np.ndarray],
                       agents: Mapping[str, OnSlicingAgent],
                       coordinators: List[ParameterCoordinator],
                       max_rounds: int = 12,
                       tolerance: float = 1e-3,
                       use_projection: bool = False
                       ) -> CoordinationResult:
    """Distributed coordination of one slot (paper Sec. 4).

    Each round, every agent's action modifier produces a modified
    action under the current betas; the domain coordinators then update
    their betas from the over-request sub-gradient (Eq. 14).  The loop
    ends when every constraint holds.  ``use_projection`` short-circuits
    to the plain proportional projection (the Table 3 ablation).  As a
    hard guarantee, an infeasible result after ``max_rounds`` is
    projected -- infrastructure capacity is physical.
    """
    proposals = {name: np.asarray(a, dtype=float)
                 for name, a in proposals.items()}
    if use_projection:
        totals = _requested_totals(proposals)
        feasible = all(v <= 1.0 + tolerance for v in totals.values())
        projected = {} if feasible else project_actions(proposals)
        return CoordinationResult(
            actions=projected or proposals, rounds=1,
            betas={kind: 0.0 for kind in CONSTRAINED_RESOURCES},
            projected=not feasible)

    betas: Dict[str, float] = {}
    for coordinator in coordinators:
        betas.update(coordinator.begin_slot())
    actions = dict(proposals)
    rounds = 1
    # First interaction: the agents submit their proposals and the
    # domain managers check capacity.  Only when something is
    # over-requested do the action modifiers engage -- with zero betas
    # pi_a approximates the identity but is not exact, so running it on
    # feasible proposals would needlessly perturb good actions.
    totals = _requested_totals(actions)
    while not all(coordinator.satisfied(totals, tolerance)
                  for coordinator in coordinators):
        if rounds >= max_rounds:
            break
        rounds += 1
        for coordinator in coordinators:
            betas.update(coordinator.update(totals))
        actions = {
            name: agents[name].modifier.modify(states[name],
                                               proposals[name], betas)
            for name in proposals
        }
        totals = _requested_totals(actions)
    totals = _requested_totals(actions)
    feasible = all(v <= 1.0 + tolerance for v in totals.values())
    if not feasible:
        actions = project_actions(actions)
    return CoordinationResult(actions=actions, rounds=rounds,
                              betas=betas, projected=not feasible)


@dataclass
class EpochStats:
    """Aggregates of one training epoch (paper: 1000 transitions)."""

    mean_usage: float
    mean_cost: float
    violation_rate: float           # fraction of episodes violating SLA
    mean_interactions: float
    episodes: int
    switch_rate: float              # fraction of episodes that switched
    per_slice_usage: Dict[str, float] = field(default_factory=dict)
    per_slice_violation: Dict[str, float] = field(default_factory=dict)


class OnSlicingOrchestrator:
    """Runs the online learning phase for all slices."""

    def __init__(self, simulator: ScenarioSimulator,
                 agents: Dict[str, OnSlicingAgent],
                 managers: Optional[DomainManagerSet] = None,
                 cfg: Optional[ExperimentConfig] = None) -> None:
        missing = set(simulator.slice_names) - set(agents)
        if missing:
            raise ValueError(f"agents missing for slices: {missing}")
        self.simulator = simulator
        self.agents = agents
        self.cfg = cfg or ExperimentConfig()
        self.managers = managers if managers is not None else \
            DomainManagerSet.for_simulator(
                simulator,
                coordinator_step=self.cfg.agent.modifier
                .coordinator_step_size)
        self.interaction_counts: List[int] = []
        self.epoch_history: List[EpochStats] = []

    def run_episode(self, deterministic: bool = False,
                    learn: bool = True) -> Dict[str, object]:
        """One 24 h episode across all slices.

        Returns per-slice episode records plus the mean coordination
        rounds of the episode.
        """
        simulator = self.simulator
        observations = simulator.reset()
        for agent in self.agents.values():
            agent.begin_episode()
        episode_interactions: List[int] = []
        mod_cfg = self.cfg.agent.modifier
        while not simulator.done:
            proposals = {}
            states = {}
            for name, agent in self.agents.items():
                decision = agent.act(observations[name],
                                     deterministic=deterministic)
                proposals[name] = decision.action
                states[name] = observations[name].vector()
            coordination = coordinate_actions(
                states, proposals, self.agents,
                self.managers.coordinators,
                max_rounds=mod_cfg.max_coordination_rounds,
                tolerance=mod_cfg.tolerance,
                use_projection=mod_cfg.use_projection)
            episode_interactions.append(coordination.rounds)
            results = simulator.step(coordination.actions)
            for name, result in results.items():
                self.agents[name].observe(
                    result.reward, result.cost, result.usage,
                    executed_action=coordination.actions[name])
                observations[name] = result.observation
            if learn:
                for agent in self.agents.values():
                    agent.maybe_update()
        records = {name: agent.end_episode()
                   for name, agent in self.agents.items()}
        self.interaction_counts.extend(episode_interactions)
        return {"records": records,
                "mean_interactions": float(
                    np.mean(episode_interactions))}

    def run_epoch(self, episodes: int = 10,
                  deterministic: bool = False,
                  learn: bool = True) -> EpochStats:
        """Run several episodes and aggregate the paper's metrics."""
        usages: Dict[str, List[float]] = {
            name: [] for name in self.agents}
        costs: Dict[str, List[float]] = {
            name: [] for name in self.agents}
        violations: Dict[str, List[bool]] = {
            name: [] for name in self.agents}
        interactions: List[float] = []
        switches = 0
        for _ in range(episodes):
            outcome = self.run_episode(deterministic=deterministic,
                                       learn=learn)
            interactions.append(outcome["mean_interactions"])
            for name, record in outcome["records"].items():
                threshold = self.agents[name].cost_threshold
                usages[name].append(record.mean_usage)
                costs[name].append(record.mean_cost)
                violations[name].append(record.mean_cost > threshold)
                if record.switched_at is not None:
                    switches += 1
        per_slice_usage = {name: float(np.mean(vals))
                           for name, vals in usages.items()}
        per_slice_violation = {name: float(np.mean(vals))
                               for name, vals in violations.items()}
        stats = EpochStats(
            mean_usage=float(np.mean(list(per_slice_usage.values()))),
            mean_cost=float(np.mean([np.mean(costs[name])
                                     for name in self.agents])),
            violation_rate=float(np.mean(
                list(per_slice_violation.values()))),
            mean_interactions=float(np.mean(interactions)),
            episodes=episodes,
            switch_rate=switches / max(episodes * len(self.agents), 1),
            per_slice_usage=per_slice_usage,
            per_slice_violation=per_slice_violation,
        )
        self.epoch_history.append(stats)
        return stats

    def refresh_estimators(self, epochs: int = 3) -> None:
        """Periodic online pi_phi refresh across agents (Sec. 5)."""
        for agent in self.agents.values():
            agent.refresh_estimator(epochs=epochs)
