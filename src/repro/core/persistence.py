"""Checkpointing for OnSlicing agents.

Operational deployments reconfigure every 15 minutes for days; being
able to snapshot and restore an agent (all four policy networks, the
Gaussian head, the Lagrangian multiplier and the estimator's target
scaling) is table stakes for the paper's envisioned production use.
Checkpoints are plain ``numpy.savez`` archives -- no pickle, no code
execution on load.
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np

from repro.core.agent import OnSlicingAgent


def _pack(prefix: str, arrays: List[np.ndarray],
          out: Dict[str, np.ndarray]) -> None:
    for i, arr in enumerate(arrays):
        out[f"{prefix}__{i:03d}"] = arr


def _unpack(prefix: str, data) -> List[np.ndarray]:
    keys = sorted(k for k in data.files if k.startswith(prefix + "__"))
    if not keys:
        raise KeyError(f"checkpoint has no arrays for {prefix!r}")
    return [data[k] for k in keys]


def save_agent(agent: OnSlicingAgent, path: str) -> None:
    """Snapshot an agent's learnable state to ``path`` (.npz)."""
    out: Dict[str, np.ndarray] = {}
    _pack("actor", agent.model.actor.get_weights(), out)
    _pack("critic", agent.model.critic.get_weights(), out)
    _pack("modifier", agent.modifier.network.get_weights(), out)
    _pack("surrogate",
          agent.modifier.surrogate.network.get_weights(), out)
    _pack("estimator",
          [p.value.copy()
           for p in agent.estimator.network.parameters()], out)
    out["log_std"] = agent.model.dist.log_std.value.copy()
    out["scalars"] = np.array([
        agent.lagrangian.value,
        agent.estimator._target_mean,
        agent.estimator._target_std,
    ])
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **out)


def load_agent(agent: OnSlicingAgent, path: str) -> None:
    """Restore a snapshot produced by :func:`save_agent` in place.

    The agent must have been constructed with the same architecture
    configuration; shapes are validated by the underlying setters.
    """
    with np.load(path) as data:
        agent.model.actor.set_weights(_unpack("actor", data))
        agent.model.critic.set_weights(_unpack("critic", data))
        agent.modifier.network.set_weights(_unpack("modifier", data))
        agent.modifier.surrogate.network.set_weights(
            _unpack("surrogate", data))
        estimator_params = agent.estimator.network.parameters()
        estimator_arrays = _unpack("estimator", data)
        if len(estimator_params) != len(estimator_arrays):
            raise ValueError("estimator architecture mismatch")
        for param, arr in zip(estimator_params, estimator_arrays):
            if param.value.shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {param.name}: "
                    f"{arr.shape} vs {param.value.shape}")
            param.value = arr.copy()
        agent.model.dist.log_std.value = data["log_std"].copy()
        scalars = data["scalars"]
        agent.lagrangian.value = float(scalars[0])
        agent.estimator._target_mean = float(scalars[1])
        agent.estimator._target_std = float(scalars[2])
