"""The OnSlicing agent (paper Fig. 2).

One agent per slice, composing four policies:

* **pi_theta** -- the learning policy (PPO actor-critic), updated with
  the constraint-aware Lagrangian reward (Eq. 3-5);
* **pi_b** -- the rule-based baseline, invoked by proactive switching;
* **pi_phi** -- the variational cost-to-go estimator driving the switch;
* **pi_a** -- the action modifier used during distributed coordination.

The agent owns the per-episode bookkeeping: cumulative cost, the
truncated-episode handling ("we only use the effective transitions run
by policy pi_theta and discard the remaining episode run by the
baseline policy" with a critic bootstrap at the truncation slot), the
dual update of the Lagrangian multiplier at episode end, and online
refreshing of pi_phi as new baseline-run transitions are observed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import AgentConfig, NUM_ACTIONS
from repro.core.action_modifier import ActionModifier
from repro.core.switching import ProactiveBaselineSwitch, SwitchDecision
from repro.rl.buffer import RolloutBuffer, Transition
from repro.rl.cost_estimator import CostToGoEstimator
from repro.rl.lagrangian import LagrangianMultiplier
from repro.rl.ppo import GaussianActorCritic, PPOTrainer
from repro.sim.env import STATE_DIM, SliceObservation


@dataclass
class ActDecision:
    """What the agent decided for the current slot."""

    action: np.ndarray
    from_baseline: bool
    switch: SwitchDecision
    log_prob: float = 0.0
    value: float = 0.0


@dataclass
class EpisodeRecord:
    """Per-episode summary kept for diagnostics and dual updates."""

    total_cost: float
    total_usage: float
    length: int
    switched_at: Optional[int]

    @property
    def mean_cost(self) -> float:
        return self.total_cost / max(self.length, 1)

    @property
    def mean_usage(self) -> float:
        return self.total_usage / max(self.length, 1)


class OnSlicingAgent:
    """Per-slice online learner with near-zero-violation safeguards."""

    def __init__(self, slice_name: str, baseline_policy,
                 horizon: int, cost_threshold: float,
                 cfg: Optional[AgentConfig] = None,
                 state_dim: int = STATE_DIM,
                 action_dim: int = NUM_ACTIONS,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.slice_name = slice_name
        self.cfg = cfg or AgentConfig()
        self._rng = rng if rng is not None else np.random.default_rng(4)
        self.horizon = horizon
        self.cost_threshold = cost_threshold
        self.baseline = baseline_policy
        self.model = GaussianActorCritic(
            state_dim, action_dim, policy_cfg=self.cfg.policy,
            ppo_cfg=self.cfg.ppo, rng=self._rng)
        self.trainer = PPOTrainer(self.model, cfg=self.cfg.ppo,
                                  rng=self._rng)
        self.buffer = RolloutBuffer(gamma=self.cfg.ppo.gamma,
                                    gae_lambda=self.cfg.ppo.gae_lambda)
        self.lagrangian = LagrangianMultiplier(
            cost_threshold, cfg=self.cfg.lagrangian)
        self.estimator = CostToGoEstimator(
            state_dim, cfg=self.cfg.estimator, rng=self._rng)
        self.switch = ProactiveBaselineSwitch(
            self.cfg.switching, horizon, cost_threshold,
            estimator=(self.estimator
                       if self.cfg.switching.use_estimator else None),
            rng=self._rng)
        self.modifier = ActionModifier(self.cfg.modifier,
                                       state_dim=state_dim,
                                       action_dim=action_dim,
                                       rng=self._rng)
        # episode bookkeeping
        self.last_executed_action: Optional[np.ndarray] = None
        self._cum_cost = 0.0
        self._cum_usage = 0.0
        self._slot = 0
        self._pending: Optional[Dict] = None
        self._truncated = False
        self._baseline_states: List[np.ndarray] = []
        self._baseline_costs: List[float] = []
        self.episodes: List[EpisodeRecord] = []
        self.updates_run = 0
        #: Minimum transitions before a PPO update (one paper epoch is
        #: 1000 transitions; we update on a fraction for faster cycles,
        #: and truncated episodes contribute fewer transitions).
        self.update_threshold = 192

    # ---- acting -------------------------------------------------------

    def begin_episode(self) -> None:
        self._cum_cost = 0.0
        self._cum_usage = 0.0
        self._slot = 0
        self._pending = None
        self._truncated = False
        self._baseline_states = []
        self._baseline_costs = []
        self.switch.reset()

    def act(self, observation: SliceObservation,
            deterministic: bool = False) -> ActDecision:
        """Choose the slot's action: Eq. 8 switch, then pi_theta/pi_b."""
        state = observation.vector()
        decision = self.switch.evaluate(state, self._cum_cost,
                                        self._slot)
        if decision.newly_triggered and not self._truncated:
            # Truncate the pi_theta episode with a critic bootstrap at
            # the truncation slot (paper Sec. 3).
            self.buffer.end_episode(
                bootstrap_value=self.model.value(state))
            self._truncated = True
        if decision.use_baseline:
            action = np.asarray(self.baseline.act(observation),
                                dtype=float)
            self._pending = {"state": state, "action": action,
                             "from_baseline": True}
            return ActDecision(action=action, from_baseline=True,
                               switch=decision)
        sampled = self.model.act(state, deterministic=deterministic)
        self._pending = {"state": state, "from_baseline": False,
                         **sampled}
        return ActDecision(action=sampled["action"],
                           from_baseline=False, switch=decision,
                           log_prob=sampled["log_prob"],
                           value=sampled["value"])

    def observe(self, reward: float, cost: float, usage: float,
                executed_action: Optional[np.ndarray] = None) -> None:
        """Record the slot outcome.

        ``executed_action`` (the post-coordination action actually
        enforced) is kept for diagnostics only; the stored transition
        uses the *sampled* action so the importance ratios of PPO stay
        coherent -- from pi_theta's perspective the action modification
        is part of the environment dynamics.
        """
        if self._pending is None:
            raise RuntimeError("observe() called before act()")
        pending = self._pending
        self._pending = None
        self._cum_cost += cost
        self._cum_usage += usage
        self._slot += 1
        self.last_executed_action = (
            np.asarray(executed_action, dtype=float)
            if executed_action is not None else pending["action"])
        if pending["from_baseline"]:
            # Baseline-run transitions feed pi_phi's online refresh.
            self._baseline_states.append(pending["state"])
            self._baseline_costs.append(cost)
            return
        penalized = self.lagrangian.penalized_reward(reward, cost)
        self.buffer.add(Transition(
            state=pending["state"], action=pending["action"],
            reward=penalized, cost=cost, value=pending["value"],
            log_prob=pending["log_prob"]))

    def end_episode(self) -> EpisodeRecord:
        """Finalise the episode: buffer, dual update, pi_phi refresh."""
        if not self._truncated:
            self.buffer.end_episode(bootstrap_value=0.0)
        if self._baseline_states:
            self.estimator.add_episode(self._baseline_states,
                                       self._baseline_costs)
        record = EpisodeRecord(
            total_cost=self._cum_cost, total_usage=self._cum_usage,
            length=self._slot, switched_at=self.switch.switch_slot)
        self.episodes.append(record)
        self.lagrangian.update(record.mean_cost)
        return record

    # ---- learning -------------------------------------------------------

    def maybe_update(self) -> Optional[Dict[str, float]]:
        """PPO update once enough pi_theta transitions accumulated."""
        if len(self.buffer) < self.update_threshold:
            return None
        stats = self.trainer.update(self.buffer.get())
        self.buffer.clear()
        self.updates_run += 1
        return stats

    def refresh_estimator(self, epochs: int = 5) -> Optional[List[float]]:
        """Online pi_phi adaptation on newly observed baseline data."""
        if self.estimator.dataset_size == 0:
            return None
        return self.estimator.fit(epochs=epochs)

    # ---- introspection ----------------------------------------------------

    @property
    def cumulative_cost(self) -> float:
        return self._cum_cost

    def sla_violated(self) -> bool:
        """Episode-level SLA check at the current slot."""
        if self._slot == 0:
            return False
        return (self._cum_cost / self._slot) > self.cost_threshold
