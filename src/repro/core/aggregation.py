"""Policy aggregation and federated averaging (paper Sec. 9 extension).

The paper's discussion names two accelerators it would incorporate:
"several promising techniques could accelerate the learning progress,
e.g., policy aggregation [OnRL] and federated learning [Bonawitz et
al.], which can be further incorporated into OnSlicing."  This module
implements both for the numpy policy networks:

* :func:`federated_average` -- FedAvg over the actors of agents serving
  the *same application class* (e.g. the MAR replicas of Fig. 18/19's
  scaled deployments), weighted by each agent's experience volume;
* :class:`PolicyAggregator` -- OnRL-style periodic aggregation: pull a
  weighted average into a global model, push it back blended with each
  agent's local weights so slice-specific specialisation survives.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.nn.network import MLP


def federated_average(networks: Sequence[MLP],
                      weights: Optional[Sequence[float]] = None
                      ) -> List[np.ndarray]:
    """Weighted average of identically-shaped networks' parameters.

    Returns the averaged weight list (apply with ``set_weights``).
    ``weights`` default to uniform; they are normalised internally.
    """
    if not networks:
        raise ValueError("need at least one network")
    if weights is None:
        weights = [1.0] * len(networks)
    if len(weights) != len(networks):
        raise ValueError("one weight per network required")
    weights = np.asarray(weights, dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("weights must be non-negative, sum > 0")
    weights = weights / weights.sum()
    reference = networks[0].get_weights()
    averaged = [np.zeros_like(arr) for arr in reference]
    for network, weight in zip(networks, weights):
        for i, arr in enumerate(network.get_weights()):
            if arr.shape != averaged[i].shape:
                raise ValueError(
                    "networks must share an architecture")
            averaged[i] += weight * arr
    return averaged


class PolicyAggregator:
    """Periodic OnRL-style aggregation across same-class agents.

    Parameters
    ----------
    blend:
        Fraction of the global average pulled into each local actor
        (1.0 = full FedAvg replacement, 0.0 = no aggregation).
    """

    def __init__(self, blend: float = 0.5) -> None:
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must be in [0, 1]")
        self.blend = blend
        self.rounds_run = 0

    def aggregate(self, actors: Mapping[str, MLP],
                  experience: Optional[Mapping[str, float]] = None
                  ) -> None:
        """One aggregation round over a group of actors (in place).

        ``experience`` weights each member by its data volume (e.g.
        transitions collected since the last round); uniform when
        omitted.
        """
        names = list(actors)
        if len(names) < 2:
            return
        weights = None
        if experience is not None:
            weights = [float(experience.get(name, 0.0))
                       for name in names]
            if sum(weights) <= 0:
                weights = None
        averaged = federated_average([actors[n] for n in names],
                                     weights)
        for name in names:
            local = actors[name].get_weights()
            blended = [
                (1.0 - self.blend) * loc + self.blend * avg
                for loc, avg in zip(local, averaged)
            ]
            actors[name].set_weights(blended)
        self.rounds_run += 1

    def aggregate_by_class(self, actors: Mapping[str, MLP],
                           classes: Mapping[str, str],
                           experience: Optional[Mapping[str, float]]
                           = None) -> None:
        """Aggregate separately within each application class.

        ``classes`` maps agent name -> class label (e.g. "mar"); only
        agents sharing a label are averaged together, preserving the
        per-application specialisation of individualized learning.
        """
        groups: Dict[str, Dict[str, MLP]] = {}
        for name, actor in actors.items():
            label = classes.get(name)
            if label is None:
                raise KeyError(f"no class for agent {name!r}")
            groups.setdefault(label, {})[name] = actor
        for group in groups.values():
            self.aggregate(group, experience)
