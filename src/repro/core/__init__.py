"""OnSlicing core: the paper's primary contribution.

* :mod:`repro.core.agent` -- the per-slice OnSlicing agent composing
  the learning policy pi_theta, the Bayesian cost estimator pi_phi, the
  rule-based baseline pi_b and the action modifier pi_a (paper Fig. 2);
* :mod:`repro.core.switching` -- proactive baseline switching (Eq. 8);
* :mod:`repro.core.action_modifier` -- pi_a and its offline training
  against a learned cost surrogate (Eq. 13);
* :mod:`repro.core.offline` -- learning-from-baseline: behavior cloning
  and estimator fitting (Sec. 5);
* :mod:`repro.core.orchestrator` -- the multi-slice online loop with
  distributed parameter coordination (Sec. 4).
"""

from repro.core.action_modifier import ActionModifier, CostSurrogate
from repro.core.agent import OnSlicingAgent
from repro.core.offline import OfflineDataset, pretrain_agent
from repro.core.orchestrator import (
    CoordinationResult,
    DomainManagerSet,
    EpochStats,
    OnSlicingOrchestrator,
    coordinate_actions,
)
from repro.core.switching import ProactiveBaselineSwitch, SwitchDecision

__all__ = [
    "ActionModifier",
    "CoordinationResult",
    "CostSurrogate",
    "DomainManagerSet",
    "EpochStats",
    "OfflineDataset",
    "OnSlicingAgent",
    "OnSlicingOrchestrator",
    "ProactiveBaselineSwitch",
    "SwitchDecision",
    "coordinate_actions",
    "pretrain_agent",
]
