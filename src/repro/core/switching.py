"""Proactive baseline switching (paper Sec. 3, Eq. 8).

At every time slot the agent evaluates

    E_t = sum_{m<=t} c_m + mu + eta * sigma

where ``(mu, sigma)`` is pi_phi's posterior over the baseline policy's
cost-to-go from the current state.  If ``E_t >= T * C_max`` the
baseline policy takes over *the rest of the episode* -- switching is a
one-way door within an episode ("let the baseline policy take over the
rest of the episode"), re-armed at the next reset.

Variants used by the paper's ablation (Table 2 / Fig. 13):

* **OnSlicing-NB** -- ``enabled=False``: never switches.
* **OnSlicing-NE** -- ``use_estimator=False``: reactive switching only
  once the cumulative cost alone crosses the threshold.
* **Est. Noise** -- ``estimator_noise_std=1.0``: Gaussian noise on the
  estimator output to probe robustness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import SwitchingConfig
from repro.rl.cost_estimator import CostToGoEstimator


@dataclass(frozen=True)
class SwitchDecision:
    """Outcome of one slot's switching evaluation."""

    use_baseline: bool
    expected_episode_cost: float     # E_t of Eq. 8
    threshold: float                 # T * C_max
    estimator_mean: float
    estimator_std: float
    newly_triggered: bool


class ProactiveBaselineSwitch:
    """Per-episode switching state machine for one agent."""

    def __init__(self, cfg: SwitchingConfig, horizon: int,
                 cost_threshold: float,
                 estimator: Optional[CostToGoEstimator] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.cfg = cfg
        self.horizon = horizon
        self.cost_threshold = cost_threshold
        self.estimator = estimator
        self._rng = rng if rng is not None else np.random.default_rng(23)
        self._active = False
        self._switch_slot: Optional[int] = None
        if cfg.enabled and cfg.use_estimator and estimator is None:
            raise ValueError(
                "use_estimator=True requires a CostToGoEstimator")

    @property
    def active(self) -> bool:
        """True while the baseline controls the rest of the episode."""
        return self._active

    @property
    def switch_slot(self) -> Optional[int]:
        """Slot at which the baseline took over (None if it has not)."""
        return self._switch_slot

    def reset(self) -> None:
        """Re-arm at the start of a new episode."""
        self._active = False
        self._switch_slot = None

    def evaluate(self, state: np.ndarray, cumulative_cost: float,
                 slot: int) -> SwitchDecision:
        """Eq. 8: decide which policy acts at this slot."""
        threshold = self.horizon * self.cost_threshold
        if not self.cfg.enabled:
            return SwitchDecision(False, cumulative_cost, threshold,
                                  0.0, 0.0, False)
        if self._active:
            return SwitchDecision(True, cumulative_cost, threshold,
                                  0.0, 0.0, False)
        mu, sigma = 0.0, 0.0
        if self.cfg.use_estimator:
            mu, sigma = self.estimator.predict(state)
            if self.cfg.estimator_noise_std > 0:
                mu += float(self._rng.normal(
                    0.0, self.cfg.estimator_noise_std))
            mu = max(mu, 0.0)
        expected = cumulative_cost + mu + self.cfg.eta * sigma
        triggered = expected >= threshold
        if triggered:
            self._active = True
            self._switch_slot = slot
        return SwitchDecision(triggered, expected, threshold, mu, sigma,
                              triggered)
