"""Comparison methods of the paper's evaluation (Sec. 7.1).

* :mod:`repro.baselines.rule_based` -- **Baseline**: per-slice key
  factors, grid search for minimum usage meeting the requirement, and
  projection for over-requests.
* :mod:`repro.baselines.model_based` -- **Model_Based**: approximated
  analytic performance models solved as a convex program.
* :mod:`repro.baselines.onrl` -- **OnRL**: learn-from-scratch online
  DRL with reward shaping and projection (the adapted OnRL of Sec. 7.1).
* :mod:`repro.baselines.projection` -- the proportional scale-down
  used by both Baseline and OnRL when resources are over-requested.
"""

from repro.baselines.projection import project_actions
from repro.baselines.rule_based import (
    KEY_FACTORS,
    RuleBasedPolicy,
    fit_rule_based_policy,
)
from repro.baselines.model_based import ModelBasedPolicy
from repro.baselines.onrl import OnRLAgent

__all__ = [
    "KEY_FACTORS",
    "ModelBasedPolicy",
    "OnRLAgent",
    "RuleBasedPolicy",
    "fit_rule_based_policy",
    "project_actions",
]
