"""Projection: proportional scale-down of over-requested resources.

"The existing method requires domain managers to scale down all actions
of slices, i.e., projection, if the summation of requested resources
surpluses the capacity of the infrastructure" (paper Sec. 4).  Both the
rule-based Baseline and OnRL use this; OnSlicing replaces it with the
action modifier + parameter coordination and Table 3 quantifies why
(projection under-provisions slices and violates SLAs).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.sim.network import CONSTRAINED_RESOURCES


def project_actions(actions: Mapping[str, np.ndarray],
                    capacity: float = 1.0) -> Dict[str, np.ndarray]:
    """Scale down each over-requested resource kind proportionally.

    For every constrained kind ``k`` with ``sum_i a_i_k > capacity``,
    every slice's ``a_i_k`` is multiplied by ``capacity / sum``; other
    dimensions are untouched.  Returns new arrays (inputs unmodified).
    """
    projected = {name: np.asarray(action, dtype=float).copy()
                 for name, action in actions.items()}
    if not projected:
        return projected
    for kind, idx in CONSTRAINED_RESOURCES.items():
        total = sum(action[idx] for action in projected.values())
        if total > capacity and total > 0:
            scale = capacity / total
            for action in projected.values():
                action[idx] *= scale
    return projected
