"""Model_Based: approximated analytic models + convex solver.

Paper Sec. 7.1: "we develop a model-based method by using approximated
performance models in each slice.  The end-to-end latency and frame
rate are formulated as p_MAR = (f*s)/U_u + l_s and p_HVS = U_d/(f*s)
... the MCS offset U_m = 6, U_s = 0 [for RDC] ... the problem of
minimizing the overall resource usage is solved by using the CVXPY
tool."  We solve the same programs with scipy's SLSQP (CVXPY is not
available offline; the programs are tiny and smooth).

The method's weaknesses -- the reason the paper measures *both* higher
usage and more violations than Baseline -- are kept exactly as the
paper describes them:

* the models assume a pessimistic nominal link rate (they cannot see
  link adaptation or multi-user scheduling gains), so the bandwidth
  they provision is inflated -> highest resource usage;
* the MAR latency model ``(f*s)/U_u + l_s`` contains **no compute
  term**, so the edge/core CPU is a static rule-of-thumb that ignores
  load -> queueing violations at traffic peaks;
* the HVS model ignores HARQ retransmissions and the RDC offsets come
  from a one-off table read-off -> residual violations under channel
  dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy import optimize

from repro.config import (
    NUM_ACTIONS,
    NetworkConfig,
    SliceSpec,
    action_index,
)
from repro.sim.env import SliceObservation
from repro.sim.phy import cqi_to_mcs, mcs_spectral_efficiency

#: Static non-modelled dimensions assumed by the model-based operator.
#: Notably the MAR compute share is a load-blind rule of thumb -- the
#: analytic latency model has no CPU term, so there is nothing to size
#: it from (the paper's central criticism of model-based methods).
_MB_DEFAULTS: Dict[str, Dict[str, float]] = {
    "mar": {
        "uplink_mcs_offset": 0.1, "uplink_scheduler": 0.5,
        "downlink_bandwidth": 0.15, "downlink_mcs_offset": 0.1,
        "downlink_scheduler": 0.5, "transport_path": 0.0,
        "cpu_allocation": 0.18, "ram_allocation": 0.4,
    },
    "hvs": {
        "uplink_bandwidth": 0.08, "uplink_mcs_offset": 0.1,
        "uplink_scheduler": 0.5, "downlink_mcs_offset": 0.0,
        "downlink_scheduler": 0.5, "transport_path": 0.0,
        "cpu_allocation": 0.35, "ram_allocation": 0.3,
    },
    "rdc": {
        "uplink_scheduler": 0.5, "downlink_scheduler": 0.5,
        "transport_bandwidth": 0.1, "transport_path": 0.0,
        "cpu_allocation": 0.25, "ram_allocation": 0.25,
    },
}


def _mb_default_action(app: str) -> np.ndarray:
    action = np.zeros(NUM_ACTIONS)
    for name, value in _MB_DEFAULTS[app].items():
        action[action_index(name)] = value
    return action


@dataclass(frozen=True)
class ModelBasedConfig:
    """Operator knobs of the model-based method."""

    #: Provisioning margin on model-derived bandwidth.
    provisioning_margin: float = 1.5
    #: Static latency l_s assumed by the MAR model (ms).
    static_latency_ms: float = 120.0
    #: Nominal CQI the models assume.  A pessimistic link budget --
    #: the models cannot account for link adaptation, so the operator
    #: plans against a conservative rate.
    nominal_cqi: int = 8
    #: RDC MCS offsets fixed from the paper's Fig. 6 read-off.
    rdc_uplink_offset: float = 0.6    # U_m = 6
    rdc_downlink_offset: float = 0.0  # U_s = 0


class ModelBasedPolicy:
    """Analytic per-slot resource calculator (one instance per slice)."""

    def __init__(self, spec: SliceSpec,
                 network_cfg: Optional[NetworkConfig] = None,
                 cfg: Optional[ModelBasedConfig] = None) -> None:
        self.spec = spec
        self.network_cfg = network_cfg or NetworkConfig()
        self.cfg = cfg or ModelBasedConfig()
        ran = self.network_cfg.ran
        eff = mcs_spectral_efficiency(cqi_to_mcs(self.cfg.nominal_cqi))
        base = ran.num_prbs * ran.prb_bandwidth_hz * (1.0 - ran.overhead)
        #: Nominal full-cell rate per direction assumed by the models.
        self._nominal_ul_bps = base * ran.uplink_fraction * eff
        self._nominal_dl_bps = base * ran.downlink_fraction * eff
        self._link_bps = self.network_cfg.transport.link_capacity_bps

    # ---- per-app analytic programs -----------------------------------

    def _solve_mar(self, arrival_rate: float) -> np.ndarray:
        """min U_u  s.t.  p_MAR = (f*s)/(U_u R) + l_s <= P (paper model).

        Solved with SLSQP for parity with the paper's CVXPY program
        (the one-variable program has the closed form
        ``U_u = f*s / (R * (P - l_s))``, which the solver recovers).
        """
        spec, cfg = self.spec, self.cfg
        f = arrival_rate * cfg.provisioning_margin
        s = spec.uplink_payload_bits
        budget_ms = spec.sla.target - cfg.static_latency_ms

        def latency_ms(x):
            return f * s / (x[0] * self._nominal_ul_bps) * 1e3

        result = optimize.minimize(
            lambda x: x[0], x0=np.array([0.3]), method="SLSQP",
            bounds=[(0.02, 1.0)],
            constraints=[{"type": "ineq",
                          "fun": lambda x: budget_ms - latency_ms(x)}])
        u_u = float(result.x[0]) if result.success else 1.0
        action = _mb_default_action("mar")
        action[action_index("uplink_bandwidth")] = float(np.clip(
            u_u, 0.02, 1.0))
        action[action_index("transport_bandwidth")] = float(np.clip(
            f * s / self._link_bps * cfg.provisioning_margin,
            0.01, 1.0))
        return action

    def _solve_hvs(self, arrival_rate: float) -> np.ndarray:
        """U_d from p_HVS = U_d R/(f*s) >= target FPS (linear model)."""
        spec, cfg = self.spec, self.cfg
        f = arrival_rate * cfg.provisioning_margin
        demand_bps = f * spec.sla.target * spec.downlink_payload_bits
        u_d = demand_bps / self._nominal_dl_bps
        action = _mb_default_action("hvs")
        action[action_index("downlink_bandwidth")] = float(np.clip(
            u_d, 0.05, 1.0))
        action[action_index("transport_bandwidth")] = float(np.clip(
            demand_bps / self._link_bps * cfg.provisioning_margin,
            0.01, 1.0))
        return action

    def _solve_rdc(self, arrival_rate: float) -> np.ndarray:
        """Fixed offsets from the Fig. 6 read-off; bandwidth from demand."""
        spec, cfg = self.spec, self.cfg
        f = arrival_rate * cfg.provisioning_margin
        demand_bps = f * spec.uplink_payload_bits
        action = _mb_default_action("rdc")
        action[action_index("uplink_mcs_offset")] = cfg.rdc_uplink_offset
        action[action_index("downlink_mcs_offset")] = \
            cfg.rdc_downlink_offset
        share = demand_bps / self._nominal_ul_bps \
            * cfg.provisioning_margin
        action[action_index("uplink_bandwidth")] = float(np.clip(
            max(share, 0.05), 0.05, 1.0))
        action[action_index("downlink_bandwidth")] = float(np.clip(
            max(share, 0.05), 0.05, 1.0))
        return action

    # ---- runtime interface --------------------------------------------

    def action_for_rate(self, arrival_rate: float) -> np.ndarray:
        if self.spec.app == "mar":
            return self._solve_mar(arrival_rate)
        if self.spec.app == "hvs":
            return self._solve_hvs(arrival_rate)
        return self._solve_rdc(arrival_rate)

    def act(self, observation: SliceObservation) -> np.ndarray:
        """Resource allocation from the analytic models at the
        currently-observed traffic."""
        rate = observation.traffic * self.spec.max_arrival_rate
        return self.action_for_rate(rate)

    def act_vector(self, state_vector: np.ndarray) -> np.ndarray:
        rate = float(state_vector[1]) * self.spec.max_arrival_rate
        return self.action_for_rate(rate)
