"""Baseline: rule-based key-factor grid search (paper Sec. 7.1).

The paper builds its Baseline in three steps:

1. each slice is offline evaluated in a small-scale testbed to identify
   *key action factors* -- ``[U_u, U_b, U_c]`` for MAR, ``[U_d, U_b]``
   for HVS and ``[U_m, U_s]`` for RDC;
2. a grid search finds the minimum resource usage meeting the slice's
   performance requirement at each traffic level;
3. over-requested resources are resolved with projection.

We reproduce that: :func:`fit_rule_based_policy` grid-searches a
single-slice simulator ("small-scale testbed") per traffic bin with a
traffic safety margin and a tightened cost target -- the conservatism
that makes the Baseline safe but expensive (~2.5x OnSlicing's usage in
the paper) -- and :class:`RuleBasedPolicy` serves the per-bin table at
run time, keyed by the observed traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.config import (
    NUM_ACTIONS,
    NetworkConfig,
    SliceSpec,
    action_index,
)
from repro.sim.env import SliceObservation
from repro.sim.network import EndToEndNetwork

#: Key action factors identified per application (paper Sec. 7.1).
KEY_FACTORS: Dict[str, Tuple[str, ...]] = {
    "mar": ("uplink_bandwidth", "transport_bandwidth",
            "cpu_allocation"),
    "hvs": ("downlink_bandwidth", "transport_bandwidth"),
    "rdc": ("uplink_mcs_offset", "downlink_mcs_offset"),
}

#: Static values for the non-key dimensions: a rule-of-thumb operator
#: configuration, moderately generous so only the key factors need
#: tuning.  Indexed by app.
DEFAULT_ACTIONS: Dict[str, Dict[str, float]] = {
    "mar": {
        "uplink_mcs_offset": 0.1, "uplink_scheduler": 0.5,
        "downlink_bandwidth": 0.15, "downlink_mcs_offset": 0.1,
        "downlink_scheduler": 0.5, "transport_path": 0.0,
        "ram_allocation": 0.4,
    },
    "hvs": {
        "uplink_bandwidth": 0.08, "uplink_mcs_offset": 0.1,
        "uplink_scheduler": 0.5, "downlink_mcs_offset": 0.2,
        "downlink_scheduler": 0.5, "transport_path": 0.0,
        "cpu_allocation": 0.35, "ram_allocation": 0.3,
    },
    "rdc": {
        "uplink_bandwidth": 0.08, "uplink_scheduler": 0.5,
        "downlink_bandwidth": 0.08, "downlink_scheduler": 0.5,
        "transport_bandwidth": 0.06, "transport_path": 0.0,
        "cpu_allocation": 0.15, "ram_allocation": 0.12,
    },
}

#: Grid values searched per key factor.
GRID_VALUES: Dict[str, Sequence[float]] = {
    "uplink_bandwidth": (0.1, 0.2, 0.3, 0.4, 0.5, 0.65),
    "downlink_bandwidth": (0.15, 0.3, 0.45, 0.6, 0.75),
    "transport_bandwidth": (0.02, 0.05, 0.1, 0.2, 0.35),
    "cpu_allocation": (0.15, 0.25, 0.4, 0.55, 0.7, 0.85),
    "uplink_mcs_offset": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    "downlink_mcs_offset": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
}


def default_action(app: str) -> np.ndarray:
    """The non-key-factor template action of an application."""
    action = np.zeros(NUM_ACTIONS)
    for name, value in DEFAULT_ACTIONS[app].items():
        action[action_index(name)] = value
    return action


@dataclass(frozen=True)
class GridSearchConfig:
    """Conservatism knobs of the offline grid search."""

    #: Traffic multiplier applied when evaluating a bin (headroom for
    #: Poisson bursts above the envelope).
    traffic_margin: float = 1.4
    #: Fraction of the SLA cost threshold the searched point must stay
    #: under (tighter than C_max -> safety margin).
    cost_margin: float = 0.5
    #: Traffic bins in normalised [0, 1] units (bin upper edges).
    bin_edges: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0, 1.3)
    #: Channel/queue slots averaged per grid-point evaluation.
    eval_slots: int = 3
    #: Grid steps each key factor is bumped *above* the found minimum --
    #: the classic operator over-provisioning that makes the Baseline
    #: safe-but-expensive (the paper's Baseline uses ~2.5x OnSlicing's
    #: resources at zero violation).
    safety_step: int = 1


class RuleBasedPolicy:
    """Per-traffic-bin action table for one slice.

    ``act`` is the runtime interface used as the paper's pi_b: it looks
    up the bin of the current observed traffic and returns the
    pre-searched action.
    """

    def __init__(self, slice_name: str, app: str,
                 bin_edges: Sequence[float],
                 actions: Sequence[np.ndarray]) -> None:
        if len(bin_edges) != len(actions):
            raise ValueError("one action per traffic bin required")
        self.slice_name = slice_name
        self.app = app
        self.bin_edges = np.asarray(bin_edges, dtype=float)
        self.actions = [np.asarray(a, dtype=float).copy()
                        for a in actions]

    def action_for_traffic(self, normalized_traffic: float) -> np.ndarray:
        """The grid-searched action of a normalised traffic level."""
        idx = int(np.searchsorted(self.bin_edges,
                                  max(normalized_traffic, 0.0),
                                  side="left"))
        idx = min(idx, len(self.actions) - 1)
        return self.actions[idx].copy()

    def act(self, observation: SliceObservation) -> np.ndarray:
        """pi_b(s): key on the observed traffic feature."""
        return self.action_for_traffic(observation.traffic)

    def act_vector(self, state_vector: np.ndarray) -> np.ndarray:
        """pi_b over a raw state vector (traffic is feature index 1)."""
        return self.action_for_traffic(float(state_vector[1]))


def _evaluate_candidate(network: EndToEndNetwork, spec: SliceSpec,
                        action: np.ndarray, arrival_rate: float,
                        eval_slots: int) -> Tuple[float, float]:
    """Mean (cost, usage) of an action at a fixed arrival rate."""
    costs, usages = [], []
    for _ in range(eval_slots):
        network.step_channels()
        reports = network.evaluate_slot(
            {spec.name: action}, {spec.name: arrival_rate})
        costs.append(reports[spec.name].cost)
        usages.append(reports[spec.name].usage)
    return float(np.mean(costs)), float(np.mean(usages))


def fit_rule_based_policy(spec: SliceSpec,
                          network_cfg: Optional[NetworkConfig] = None,
                          search_cfg: Optional[GridSearchConfig] = None,
                          seed: int = 1234) -> RuleBasedPolicy:
    """Offline grid search in a single-slice small-scale testbed.

    For each traffic bin the search evaluates the key-factor grid at
    ``bin_edge * traffic_margin`` of the slice's peak arrival rate and
    keeps the minimum-usage point whose mean cost stays below
    ``cost_margin * C_max``; if nothing qualifies, the most generous
    (highest-usage) point is used -- mirroring an operator falling back
    to maximum provisioning.
    """
    network_cfg = network_cfg or NetworkConfig()
    search_cfg = search_cfg or GridSearchConfig()
    factors = KEY_FACTORS[spec.app]
    template = default_action(spec.app)
    grids = [GRID_VALUES[f] for f in factors]
    indices = [action_index(f) for f in factors]
    actions: List[np.ndarray] = []
    for bin_edge in search_cfg.bin_edges:
        rng = np.random.default_rng(seed)  # same channels per bin
        network = EndToEndNetwork(network_cfg, slices=[spec], rng=rng)
        rate = (bin_edge * search_cfg.traffic_margin
                * spec.max_arrival_rate)
        target_cost = spec.sla.cost_threshold * search_cfg.cost_margin
        best_action: Optional[np.ndarray] = None
        best_usage = float("inf")
        fallback_action: Optional[np.ndarray] = None
        fallback_cost = float("inf")
        best_combo = None
        fallback_combo = None
        for combo in itertools.product(*grids):
            candidate = template.copy()
            for idx, value in zip(indices, combo):
                candidate[idx] = value
            cost, usage = _evaluate_candidate(
                network, spec, candidate, rate, search_cfg.eval_slots)
            if cost <= target_cost and usage < best_usage:
                best_usage = usage
                best_action = candidate
                best_combo = combo
            if cost < fallback_cost:
                fallback_cost = cost
                fallback_action = candidate
                fallback_combo = combo
        chosen = best_action if best_action is not None else \
            fallback_action
        combo = best_combo if best_combo is not None else fallback_combo
        if search_cfg.safety_step > 0:
            chosen = chosen.copy()
            for factor, idx, value in zip(factors, indices, combo):
                grid = GRID_VALUES[factor]
                pos = min(grid.index(value) + search_cfg.safety_step,
                          len(grid) - 1)
                chosen[idx] = grid[pos]
        actions.append(chosen)
    return RuleBasedPolicy(spec.name, spec.app,
                           search_cfg.bin_edges, actions)
