"""OnRL-style online DRL agent (comparison method, paper Sec. 7.1).

OnRL [Zhang et al., MobiCom '20] learns online in the real network from
scratch.  The paper adapts it to slicing: "We supplement the reward
sharping method to be aware of constraints and the projection method to
deal with resource over-requesting situations."  Concretely this agent
is PPO with

* a **fixed-weight** penalty ``r - w * c`` (reward shaping, not the
  adaptive Lagrangian of OnSlicing),
* **no** offline imitation (learns from scratch),
* **no** proactive baseline switching or cost estimator,
* **projection** (not action modification) for over-requests -- applied
  by the caller across agents via
  :func:`repro.baselines.projection.project_actions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import PPOConfig, PolicyNetConfig
from repro.rl.buffer import RolloutBuffer, Transition
from repro.rl.ppo import GaussianActorCritic, PPOTrainer


@dataclass(frozen=True)
class OnRLConfig:
    """Hyper-parameters of the adapted OnRL agent."""

    #: Fixed reward-shaping weight on the cost (no dual update).
    penalty_weight: float = 2.0
    ppo: PPOConfig = PPOConfig()
    policy: PolicyNetConfig = PolicyNetConfig()
    #: Minimum stored transitions before a PPO update runs.
    update_threshold: int = 384


class OnRLAgent:
    """Learn-from-scratch PPO agent for one slice."""

    def __init__(self, slice_name: str, state_dim: int, action_dim: int,
                 cfg: Optional[OnRLConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.slice_name = slice_name
        self.cfg = cfg or OnRLConfig()
        self._rng = rng if rng is not None else np.random.default_rng(5)
        self.model = GaussianActorCritic(
            state_dim, action_dim, policy_cfg=self.cfg.policy,
            ppo_cfg=self.cfg.ppo, rng=self._rng)
        self.trainer = PPOTrainer(self.model, cfg=self.cfg.ppo,
                                  rng=self._rng)
        self.buffer = RolloutBuffer(gamma=self.cfg.ppo.gamma,
                                    gae_lambda=self.cfg.ppo.gae_lambda)
        self._pending = None
        self.updates_run = 0

    def act(self, state: np.ndarray,
            deterministic: bool = False) -> np.ndarray:
        """Sample the next action and stage it for :meth:`observe`."""
        decision = self.model.act(state, deterministic=deterministic)
        self._pending = {"state": np.asarray(state, dtype=float),
                         **decision}
        return decision["action"]

    def discard_pending(self) -> None:
        """Drop the transition staged by :meth:`act` without learning.

        Evaluation rollouts call this after every deterministic step so
        test actions never enter the training buffer.
        """
        self._pending = None

    def observe(self, reward: float, cost: float) -> None:
        """Record the outcome of the last action (reward shaping here)."""
        if self._pending is None:
            raise RuntimeError("observe() called before act()")
        shaped = reward - self.cfg.penalty_weight * cost
        self.buffer.add(Transition(
            state=self._pending["state"],
            action=self._pending["action"],
            reward=shaped, cost=cost,
            value=self._pending["value"],
            log_prob=self._pending["log_prob"]))
        self._pending = None

    def end_episode(self) -> None:
        self.buffer.end_episode(bootstrap_value=0.0)

    # -- persistence -----------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Learnable state (actor, critic, Gaussian head) by name.

        Arrays are copies; pair with :meth:`load_state_dict` for exact
        round-trips (the policy store serialises these through the
        runtime's tagged-JSON scheme).
        """
        return self.model.state_dict()

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore weights exported by :meth:`state_dict` in place."""
        self.model.load_state_dict(state)

    def maybe_update(self) -> Optional[Dict[str, float]]:
        """Run a PPO update when enough transitions are stored."""
        if len(self.buffer) < self.cfg.update_threshold:
            return None
        stats = self.trainer.update(self.buffer.get())
        self.buffer.clear()
        self.updates_run += 1
        return stats
