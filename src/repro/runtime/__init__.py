"""Parallel experiment runtime: units, runner, result cache, CLI.

The paper's evaluation decomposes into independent *experiment units*
-- one ``(method, variant, scenario, seed)`` tuple each.  This package
schedules those units:

* :mod:`repro.runtime.units` -- the unit dataclass, named scenarios,
  and the top-level :func:`~repro.runtime.units.execute_unit` workers
  run;
* :mod:`repro.runtime.runner` -- :class:`ParallelRunner`, which serves
  units cache-first and fans misses out over worker processes;
* :mod:`repro.runtime.cache` -- the content-keyed two-layer result
  cache (hash of config + variant + seed + params + code version);
* :mod:`repro.runtime.serialization` -- lossless JSON encoding of
  result objects for the disk layer;
* :mod:`repro.runtime.cli` -- the ``python -m repro`` entry point.

See docs/ARCHITECTURE.md for how this layer sits above the experiments
harness.
"""

from repro.runtime.cache import (
    MISSING,
    ResultCache,
    code_version,
    configure_shared_cache,
    content_key,
    pin_code_version,
    shared_cache,
)
from repro.runtime.runner import ParallelRunner, RunSummary, \
    default_workers
from repro.runtime.units import (
    ExperimentUnit,
    execute_unit,
    make_figure_unit,
    make_unit,
    unit_cache_key,
)

__all__ = [
    "MISSING",
    "ExperimentUnit",
    "ParallelRunner",
    "ResultCache",
    "RunSummary",
    "code_version",
    "configure_shared_cache",
    "content_key",
    "default_workers",
    "execute_unit",
    "make_figure_unit",
    "make_unit",
    "pin_code_version",
    "shared_cache",
    "unit_cache_key",
]
