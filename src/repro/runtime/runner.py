"""Parallel experiment execution with shared result caching.

:class:`ParallelRunner` is the one funnel every table, figure and
benchmark submits work through.  It

1. keys each :class:`~repro.runtime.units.ExperimentUnit` into the
   :class:`~repro.runtime.cache.ResultCache` and serves hits without
   computing anything,
2. fans the misses out across worker processes
   (:class:`concurrent.futures.ProcessPoolExecutor`) -- or runs them
   inline when ``workers == 1``, the deterministic path the tier-1
   tests use -- and
3. stores fresh results back into the cache and returns them in
   submission order.

Units are executed by the top-level :func:`~repro.runtime.units
.execute_unit`, which is deterministic given the unit, so ``workers=4``
and ``workers=1`` produce identical metrics for the same seeds.  Cache
bookkeeping lives in the parent process only; workers merely inherit
the disk directory (via an initializer) so expensive sub-steps such as
the baseline grid search are shared across processes too.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import configure_from_env, trace
from repro.runtime.cache import (
    MISSING,
    ResultCache,
    code_version,
    configure_shared_cache,
    pin_code_version,
    shared_cache,
)
from repro.runtime.units import SEED_CONSUMING_METHODS, \
    ExperimentUnit, execute_unit, make_figure_unit, unit_cache_key


@dataclass
class RunSummary:
    """Aggregate counters over every ``run()`` call of one runner."""

    units: int = 0
    cache_hits: int = 0
    executed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.units if self.units else 0.0

    def line(self) -> str:
        return (f"{self.units} unit(s): {self.cache_hits} cached, "
                f"{self.executed} executed "
                f"(hit rate {100.0 * self.hit_rate:.0f}%)")


def _worker_init(cache_dir: Optional[str], version: str) -> None:
    """Point the worker's shared cache at the parent's disk store and
    pin it to the parent's code version so their keys agree.  Workers
    also join the trace session when ``REPRO_TRACE_DIR`` is set (each
    writes its own file; the obs reader merges)."""
    configure_shared_cache(cache_dir)
    pin_code_version(version)
    configure_from_env(label="worker")


def _traced_execute(unit: ExperimentUnit) -> Any:
    """Execute one unit under a ``runtime.unit`` span.

    The span's attribution (method/variant/scenario/seed) makes
    runner fan-out visible in trace rollups; with tracing off this is
    :func:`execute_unit` plus one global read.
    """
    with trace("runtime.unit", method=unit.method,
               variant=unit.variant, scenario=unit.scenario,
               seed=unit.seed):
        return execute_unit(unit)


class ParallelRunner:
    """Fan experiment units out over processes, through the cache.

    ``seed_override`` rewrites the seed of every seed-consuming unit
    (onslicing/onrl) before keying or executing it -- the CLI's
    ``--seed`` flag, so one unit can be reproduced from the command
    line without editing generator code.  Seed-independent units
    (baseline/model_based derive randomness from the config, figure
    units forward their own ``seed`` keyword) are left untouched so
    their cached results stay valid.

    ``collect_only`` turns the runner into a planner: ``run()`` records
    every submitted unit in :attr:`collected` and returns stub results
    without touching the cache or computing anything -- the CLI's
    ``--list-units`` dry run.
    """

    def __init__(self, workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 use_cache: bool = True,
                 seed_override: Optional[int] = None,
                 collect_only: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.cache = cache if cache is not None else shared_cache()
        self.use_cache = use_cache
        self.seed_override = seed_override
        self.collect_only = collect_only
        self.collected: List[ExperimentUnit] = []
        self.summary = RunSummary()
        self._pool: Optional[ProcessPoolExecutor] = None

    def _prepare(self, unit: ExperimentUnit) -> ExperimentUnit:
        if (self.seed_override is not None
                and unit.method in SEED_CONSUMING_METHODS):
            unit = dataclasses.replace(unit, seed=self.seed_override)
        return unit

    def _executor(self) -> ProcessPoolExecutor:
        """The lazily created worker pool, reused across run() calls
        (workers fork on demand up to ``workers``)."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self.cache.directory, code_version()))
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool, if one was started (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, units: Sequence[ExperimentUnit]) -> List[Any]:
        """Run every unit (cache-first), preserving input order."""
        units = [self._prepare(unit) for unit in units]
        if self.collect_only:
            self.collected.extend(units)
            self.summary.units += len(units)
            return [_stub_result(unit) for unit in units]
        results: List[Any] = [None] * len(units)
        pending: List[int] = []
        keys: Dict[int, str] = {}
        for i, unit in enumerate(units):
            if not self.use_cache:
                # caching off: no key hashing, no lookups, no stores
                pending.append(i)
                continue
            keys[i] = unit_cache_key(unit)
            value = self.cache.fetch(keys[i])
            if value is not MISSING:
                results[i] = value
                self.summary.cache_hits += 1
            else:
                pending.append(i)
        if self.workers == 1 or len(pending) <= 1:
            for i in pending:
                results[i] = _traced_execute(units[i])
        else:
            pool = self._executor()
            futures = {i: pool.submit(_traced_execute, units[i])
                       for i in pending}
            for i, future in futures.items():
                results[i] = future.result()
        if self.use_cache:
            for i in pending:
                self.cache.put(keys[i], results[i])
        self.summary.units += len(units)
        self.summary.executed += len(pending)
        return results

    def run_unit(self, unit: ExperimentUnit) -> Any:
        return self.run([unit])[0]

    def run_figure(self, name: str, **params: Any) -> Any:
        """Run a whole single-run figure generator as one cached unit."""
        return self.run_unit(make_figure_unit(name, **params))


def _stub_result(unit: ExperimentUnit) -> Any:
    """Placeholder result for collect-only runs.

    Shaped like a zero-metric :class:`MethodResult` so fan-out
    generators can keep assembling rows while the runner merely
    records their unit decomposition.
    """
    from repro.experiments.metrics import MethodResult

    return MethodResult(method=unit.method, avg_resource_usage=0.0,
                        avg_sla_violation=0.0)


#: Workers picked when the caller asks for "auto" parallelism.
def default_workers() -> int:
    """CPUs actually usable by this process, minus one for the parent.

    Containers and batch schedulers routinely pin processes to a
    subset of the machine (cgroups cpusets, ``taskset``), where
    ``os.cpu_count()`` over-reports and oversubscribes the pool --
    the affinity mask is authoritative when the platform exposes it.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 2
    return max(1, cpus - 1)
