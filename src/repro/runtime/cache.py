"""Content-keyed result cache shared by every experiment entry point.

A cache key is the SHA-256 of the canonical JSON of everything that can
change a result: the full :class:`~repro.config.ExperimentConfig`
object graph, the method/variant labels, the seed, the schedule
parameters, and the code version (git commit when available).  Re-running
a figure therefore only recomputes units whose inputs actually changed;
edits to the source invalidate every entry at once.

Two storage layers back each key:

* an in-process dict holding live result objects (so repeated calls in
  one process return the *same* object -- the contract the old
  ``_BASELINE_CACHE`` in ``experiments/harness.py`` provided), and
* an optional on-disk JSON store (see :mod:`repro.runtime.serialization`)
  that survives processes and is shared by parallel workers.

The process-wide shared instance is obtained with :func:`shared_cache`;
its disk directory comes from ``REPRO_CACHE_DIR`` or
:func:`configure_shared_cache` (the CLI and worker initialisers call the
latter).  Without a directory the shared cache is memory-only, keeping
tests hermetic.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from typing import Any, Dict, Optional

from repro.runtime.serialization import from_jsonable, to_jsonable

#: Sentinel distinguishing "no cache entry" from a stored ``None``.
MISSING = object()

_code_version: Optional[str] = None


def _git(root: str, *args: str) -> str:
    return subprocess.run(
        ["git", "-C", root, *args], capture_output=True, text=True,
        timeout=10, check=True).stdout


def code_version() -> str:
    """Version string mixed into every cache key.

    Resolution order: the ``REPRO_CODE_VERSION`` environment variable
    (escape hatch for containers without git), the short git commit of
    the source tree, then the package ``__version__``.  A dirty
    worktree appends ``-dirty.<hash>`` over ``git status`` plus the
    tracked diff, so uncommitted edits and added/removed files
    invalidate cached results too.  Limitations: the *contents* of
    untracked files are not hashed (only their status lines), and a
    cache directory inside the worktree must be gitignored (the
    default ``.repro_cache`` is) or its files would churn the hash on
    every run.  The version is computed once per process;
    ``REPRO_CODE_VERSION`` overrides all of this.
    """
    global _code_version
    if _code_version is None:
        version = os.environ.get("REPRO_CODE_VERSION")
        if not version:
            root = os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))
            try:
                # Guard against resolving an *enclosing* repo (e.g. a
                # pip install inside someone's gitignored venv): only
                # trust git if it governs this very file -- tracked,
                # or at least visible as untracked (not ignored).
                me = os.path.abspath(__file__)
                try:
                    _git(root, "ls-files", "--error-unmatch", me)
                except subprocess.CalledProcessError:
                    if not _git(root, "status", "--porcelain",
                                "--", me).strip():
                        raise
                version = _git(root, "rev-parse", "--short",
                               "HEAD").strip()
                pending = _git(root, "status", "--porcelain")
                if pending:
                    digest = hashlib.sha256(
                        (pending + _git(root, "diff", "HEAD"))
                        .encode("utf-8")).hexdigest()
                    version += f"-dirty.{digest[:10]}"
            except (OSError, subprocess.SubprocessError):
                version = ""
        if not version:
            from repro import __version__
            version = __version__
        _code_version = version
    return _code_version


def pin_code_version(version: str) -> None:
    """Force :func:`code_version` to return ``version``.

    Worker processes are pinned to the parent's computed version (see
    the runner's initializer): a worker re-deriving it from git could
    disagree with the parent -- e.g. once cache files appear in the
    worktree -- and silently split the key space.
    """
    global _code_version
    _code_version = version


def content_key(payload: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``payload``."""
    canonical = json.dumps(to_jsonable(payload), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Two-layer (memory + optional disk) content-addressed store."""

    def __init__(self, directory: Optional[str] = None) -> None:
        self.directory = directory
        self._memory: Dict[str, Any] = {}
        if directory:
            os.makedirs(directory, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def fetch(self, key: str) -> Any:
        """Return the cached value for ``key`` or :data:`MISSING`."""
        if key in self._memory:
            return self._memory[key]
        if self.directory:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        value = from_jsonable(json.load(fh))
                except (OSError, ValueError):
                    return MISSING  # corrupt/partial entry: recompute
                self._memory[key] = value
                return value
        return MISSING

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` in memory and (if configured) on disk.

        Disk failures degrade to memory-only -- by the time put() runs
        the value has already been computed, so a full disk or a
        vanished cache dir must never abort the run (fetch() degrades
        the same way).
        """
        self._memory[key] = value
        if self.directory:
            path = self._path(key)
            tmp = f"{path}.tmp.{os.getpid()}"
            try:
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(to_jsonable(value), fh)
                os.replace(tmp, path)  # atomic: concurrent-writer safe
            except (TypeError, OSError):
                # TypeError: not losslessly serialisable; OSError: the
                # disk let us down.  Either way keep it memory-only.
                try:
                    os.remove(tmp)
                except OSError:
                    pass

    def __contains__(self, key: str) -> bool:
        return self.fetch(key) is not MISSING

    def __len__(self) -> int:
        keys = set(self._memory)
        if self.directory:
            keys.update(name[:-5] for name in os.listdir(self.directory)
                        if name.endswith(".json"))
        return len(keys)

    def clear(self) -> None:
        """Drop every entry in both layers."""
        self._memory.clear()
        if self.directory:
            for name in os.listdir(self.directory):
                if name.endswith(".json"):
                    os.remove(os.path.join(self.directory, name))

    def disk_usage(self) -> int:
        """Total bytes of the on-disk entries (0 when memory-only)."""
        if not self.directory:
            return 0
        total = 0
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    total += os.path.getsize(
                        os.path.join(self.directory, name))
                except OSError:
                    continue  # entry vanished mid-scan
        return total

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-*stored* disk entries until the store
        fits in ``max_bytes`` (ops hygiene: ``python -m repro cache
        prune --max-size``).

        Eviction order is file mtime (the store never rewrites an
        entry, so mtime is store order).  Pruned keys are dropped from
        the memory layer too, so a later ``fetch`` misses instead of
        resurrecting the evicted value.  Returns eviction stats.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        stats = {"removed": 0, "kept": 0, "bytes_before": 0,
                 "bytes_after": 0}
        if not self.directory:
            return stats
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path,
                            name[:-5]))
        entries.sort()
        total = sum(size for _, size, _, _ in entries)
        stats["bytes_before"] = total
        for _, size, path, key in entries:
            if total <= max_bytes:
                stats["kept"] += 1
                continue
            try:
                os.remove(path)
            except OSError:
                stats["kept"] += 1
                continue
            self._memory.pop(key, None)
            total -= size
            stats["removed"] += 1
        stats["bytes_after"] = total
        return stats


_shared: Optional[ResultCache] = None


def shared_cache() -> ResultCache:
    """The process-wide cache (created on first use)."""
    global _shared
    if _shared is None:
        _shared = ResultCache(os.environ.get("REPRO_CACHE_DIR") or None)
    return _shared


def configure_shared_cache(directory: Optional[str]) -> ResultCache:
    """(Re)build the shared cache with an explicit disk directory."""
    global _shared
    _shared = ResultCache(directory)
    return _shared
