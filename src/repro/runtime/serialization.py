"""JSON-safe encoding of experiment results.

The result cache stores everything as JSON on disk (no pickle, no code
execution on load -- same policy as :mod:`repro.core.persistence`).
Result objects are richer than plain JSON, so values are encoded with a
small tagged scheme: ``{"__repro__": "<tag>", ...}`` wrappers mark
numpy arrays, :class:`~repro.experiments.metrics.MethodResult`,
:class:`~repro.experiments.metrics.TrajectoryPoint` and
:class:`~repro.baselines.rule_based.RuleBasedPolicy` instances, and
:func:`from_jsonable` reconstructs them exactly, so a cache hit served
from disk is indistinguishable from a freshly computed result.

Frozen declarative dataclasses -- the config family, scenario specs,
traffic models, and network events -- round-trip through a generic
``{"__repro__": "dataclass", "type": ..., "fields": ...}`` wrapper.
Only types in the explicit :data:`DATACLASS_TYPES` allowlist decode
(construction calls the class's validating ``__init__``, never
``__setstate__``-style machinery), preserving the no-pickle contract.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.baselines.rule_based import RuleBasedPolicy
from repro.config import (
    AgentConfig,
    BCConfig,
    CoreConfig,
    EdgeConfig,
    EstimatorConfig,
    ExperimentConfig,
    LagrangianConfig,
    ModifierConfig,
    NetworkConfig,
    PPOConfig,
    PolicyNetConfig,
    RANConfig,
    SliceSLA,
    SliceSpec,
    SwitchingConfig,
    TrafficConfig,
    TransportConfig,
)
from repro.experiments.metrics import MethodResult, TrajectoryPoint
from repro.obs.diagnose import DiagnosisReport, Hypothesis
from repro.obs.slo import SloObjective, SloSpec
from repro.scenarios import (
    EVENT_TYPES,
    TRAFFIC_MODEL_TYPES,
    ScenarioSpec,
    SliceTemplate,
)

TAG = "__repro__"

#: Declarative dataclasses that round-trip via the generic wrapper.
DATACLASS_TYPES = {
    cls.__name__: cls
    for cls in (
        # the config object graph
        AgentConfig, BCConfig, CoreConfig, EdgeConfig, EstimatorConfig,
        ExperimentConfig, LagrangianConfig, ModifierConfig,
        NetworkConfig, PPOConfig, PolicyNetConfig, RANConfig, SliceSLA,
        SliceSpec, SwitchingConfig, TrafficConfig, TransportConfig,
        # the scenario object graph
        ScenarioSpec, SliceTemplate, *TRAFFIC_MODEL_TYPES, *EVENT_TYPES,
        # the SLO object graph (health contracts pin like scenarios)
        SloObjective, SloSpec,
        # the diagnosis object graph (reports ship as artifacts)
        DiagnosisReport, Hypothesis,
    )
}


#: Modules imported (lazily, in order) when decoding hits an unknown
#: dataclass tag: packages above this layer register their types via
#: :func:`register_dataclass` at import time, and a cold process can
#: decode a cached result before anything imported them.  Module
#: *names* only -- importing them here would recreate the cycle.
LAZY_REGISTRATION_MODULES = ("repro.fleet",)


def register_dataclass(cls: type) -> type:
    """Opt a frozen declarative dataclass into the tagged round-trip.

    Packages that sit *above* this module (e.g. :mod:`repro.fleet`)
    register their specs/results at import time instead of being
    imported here, which would create an import cycle through the
    layers they build on (their module *name* goes in
    :data:`LAZY_REGISTRATION_MODULES` so cold decodes can find them).
    Returns ``cls`` so it works as a decorator.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    existing = DATACLASS_TYPES.get(cls.__name__)
    if existing is not None and existing is not cls:
        raise ValueError(f"dataclass tag {cls.__name__!r} is already "
                         f"registered to {existing!r}")
    DATACLASS_TYPES[cls.__name__] = cls
    return cls


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-dumpable primitives."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return {TAG: "ndarray", "dtype": str(obj.dtype),
                "data": obj.tolist()}
    if isinstance(obj, TrajectoryPoint):
        return {TAG: "trajectory_point",
                "fields": to_jsonable(dataclasses.asdict(obj))}
    if isinstance(obj, MethodResult):
        fields = {f.name: getattr(obj, f.name)
                  for f in dataclasses.fields(obj)
                  if f.name != "trajectory"}
        return {TAG: "method_result",
                "fields": to_jsonable(fields),
                "trajectory": [to_jsonable(p) for p in obj.trajectory]}
    if isinstance(obj, RuleBasedPolicy):
        return {TAG: "rule_based_policy",
                "slice_name": obj.slice_name, "app": obj.app,
                "bin_edges": obj.bin_edges.tolist(),
                "actions": [a.tolist() for a in obj.actions]}
    if (dataclasses.is_dataclass(obj) and not isinstance(obj, type)
            and DATACLASS_TYPES.get(type(obj).__name__) is type(obj)):
        fields = {f.name: to_jsonable(getattr(obj, f.name))
                  for f in dataclasses.fields(obj)}
        return {TAG: "dataclass", "type": type(obj).__name__,
                "fields": fields}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, tuple):
        # tagged so warm-cache results keep their exact types
        return {TAG: "tuple", "items": [to_jsonable(v) for v in obj]}
    if isinstance(obj, list):
        return [to_jsonable(v) for v in obj]
    raise TypeError(f"cannot encode {type(obj).__name__} for the "
                    "result cache")


def from_jsonable(obj: Any) -> Any:
    """Inverse of :func:`to_jsonable`."""
    if isinstance(obj, dict):
        tag = obj.get(TAG)
        if tag == "ndarray":
            return np.asarray(obj["data"], dtype=obj["dtype"])
        if tag == "tuple":
            return tuple(from_jsonable(v) for v in obj["items"])
        if tag == "trajectory_point":
            return TrajectoryPoint(**from_jsonable(obj["fields"]))
        if tag == "method_result":
            fields = from_jsonable(obj["fields"])
            fields["trajectory"] = [from_jsonable(p)
                                    for p in obj["trajectory"]]
            return MethodResult(**fields)
        if tag == "rule_based_policy":
            return RuleBasedPolicy(
                obj["slice_name"], obj["app"], obj["bin_edges"],
                [np.asarray(a, dtype=float) for a in obj["actions"]])
        if tag == "dataclass":
            cls = DATACLASS_TYPES.get(obj["type"])
            if cls is None:
                import importlib

                for module in LAZY_REGISTRATION_MODULES:
                    importlib.import_module(module)
                    cls = DATACLASS_TYPES.get(obj["type"])
                    if cls is not None:
                        break
            if cls is None:
                raise ValueError(
                    f"unknown dataclass tag {obj['type']!r}")
            return cls(**from_jsonable(obj["fields"]))
        return {k: from_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, list):
        return [from_jsonable(v) for v in obj]
    return obj
