"""Experiment units: the schedulable atoms of the evaluation.

One :class:`ExperimentUnit` is one ``(method, variant, scenario, seed)``
tuple plus its schedule parameters -- e.g. "train OnSlicing-NB on the
default scenario with seed 42 for 6 epochs".  Units are plain frozen
dataclasses so they pickle across process boundaries, and
:func:`execute_unit` is a top-level function so worker processes can
run them.  Every table/figure generator decomposes into units, submits
them to a :class:`~repro.runtime.runner.ParallelRunner`, and assembles
rows/series from the returned :class:`~repro.experiments.metrics`
objects.

Methods
-------
``onslicing``
    Offline stage + online phase (+ optional deterministic test); the
    ``variant`` field selects the paper's ablations (``full``, ``nb``,
    ``ne``, ``est_noise``, ``projection``, ``md_noise``).  Returns a
    :class:`MethodResult` whose ``trajectory`` is the online phase.
``onrl`` / ``baseline`` / ``model_based``
    The three comparison methods of Sec. 7.1.
``figure``
    A whole single-run figure generator (``variant`` names it, e.g.
    ``fig12``); used for artefacts that cannot be decomposed further.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.config import ExperimentConfig
from repro.experiments.scenarios import (
    default_scenario,
    lte_fixed_mcs_scenario,
    nr_fixed_mcs_scenario,
    short_horizon_scenario,
)
from repro.runtime.cache import code_version, content_key

#: Named scenario factories a unit may reference (picklable by name).
SCENARIOS = {
    "default": default_scenario,
    "lte_fixed_mcs": lte_fixed_mcs_scenario,
    "nr_fixed_mcs": nr_fixed_mcs_scenario,
    "short_horizon": short_horizon_scenario,
}

#: Figure generators runnable as whole-figure units.  The fan-out
#: figures (fig3/9/11/13) are *not* here: they decompose into method
#: units inside :mod:`repro.experiments.figures` instead.
FIGURE_UNITS = ("fig5", "fig6", "fig10", "fig12", "fig14", "fig15",
                "fig16", "fig17", "fig18", "fig19")

METHODS = ("onslicing", "onrl", "baseline", "model_based", "figure")


@dataclass(frozen=True)
class ExperimentUnit:
    """One independently runnable (and cacheable) piece of work."""

    method: str
    variant: str = "full"
    scenario: str = "default"
    seed: int = 42
    #: Sorted ``(name, value)`` schedule parameters (epochs, episodes,
    #: ...).  A tuple so the unit stays hashable and picklable.
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Explicit config override; when set it wins over ``scenario``.
    #: Excluded from equality/hash (configs are mutable dataclasses);
    #: cache identity comes from :func:`unit_cache_key`, which hashes
    #: the resolved config's full contents.
    cfg: Optional[ExperimentConfig] = field(default=None, compare=False)

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def resolve_config(self) -> ExperimentConfig:
        if self.cfg is not None:
            return self.cfg
        return SCENARIOS[self.scenario]()

def make_unit(method: str, variant: str = "full",
              scenario: str = "default", seed: int = 42,
              cfg: Optional[ExperimentConfig] = None,
              **params: Any) -> ExperimentUnit:
    """Build a validated unit; ``params`` become the schedule tuple."""
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; "
                         f"expected one of {METHODS}")
    if method == "figure":
        # make_unit's own cfg/scenario/seed parameters would shadow
        # same-named figure kwargs and then be silently ignored by
        # execute_unit while still poisoning the cache key -- build
        # figure units with make_figure_unit, which forwards *every*
        # keyword to the figure function.
        raise ValueError("use make_figure_unit() for figure units")
    if cfg is None and scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"expected one of {tuple(SCENARIOS)}")
    return ExperimentUnit(method=method, variant=variant,
                          scenario=scenario, seed=seed,
                          params=tuple(sorted(params.items())), cfg=cfg)


def make_figure_unit(name: str, **params: Any) -> ExperimentUnit:
    """Build a whole-figure unit; every keyword (including ``seed``)
    reaches the figure function verbatim."""
    if name not in FIGURE_UNITS:
        raise ValueError(f"unknown figure unit {name!r}; "
                         f"expected one of {FIGURE_UNITS}")
    return ExperimentUnit(method="figure", variant=name,
                          params=tuple(sorted(params.items())))


def unit_cache_key(unit: ExperimentUnit) -> str:
    """Content key: config + variant + seed + params + code version."""
    cfg = None if unit.method == "figure" else unit.resolve_config()
    payload = {
        "config": dataclasses.asdict(cfg) if cfg is not None else None,
        "method": unit.method,
        "variant": unit.variant,
        "scenario": unit.scenario,
        "seed": unit.seed,
        "params": [list(pair) for pair in unit.params],
        "code_version": code_version(),
    }
    return content_key(payload)


def execute_unit(unit: ExperimentUnit) -> Any:
    """Run one unit to completion (in this process) and return its
    result -- a :class:`MethodResult` for method units, the figure's
    series dict for figure units.  Deterministic given the unit, so
    parallel and in-process execution agree bit-for-bit.
    """
    # Imported lazily: workers only pay for what the unit needs, and
    # the figures module itself imports the runner (cycle otherwise).
    from repro.experiments import harness
    from repro.experiments.metrics import (
        MethodResult,
        online_phase_summary,
    )

    p = unit.kwargs()
    if unit.method == "figure":
        from repro.experiments import figures
        return getattr(figures, unit.variant)(**p)
    cfg = unit.resolve_config()
    if unit.method == "onslicing":
        bundle = harness.build_onslicing(
            cfg, variant=unit.variant,
            offline_episodes=p.get("offline_episodes", 4),
            exploration_episodes=p.get("exploration_episodes", 6),
            seed=unit.seed)
        trajectory = harness.run_online_phase(
            bundle, epochs=p.get("epochs", 12),
            episodes_per_epoch=p.get("episodes_per_epoch", 3),
            estimator_refresh_every=p.get("estimator_refresh_every", 4))
        test_episodes = p.get("test_episodes", 3)
        if test_episodes:
            result = harness.test_performance(bundle,
                                              episodes=test_episodes)
        else:
            # Online-phase-only protocols (Tables 2-4): summarise the
            # trajectory instead of running extra test episodes.
            summary = online_phase_summary(trajectory)
            result = MethodResult(
                method="OnSlicing",
                avg_resource_usage=summary["avg_res_usage_pct"],
                avg_sla_violation=summary["avg_sla_violation_pct"],
                mean_interactions=summary["mean_interactions"])
        return dataclasses.replace(result, trajectory=trajectory)
    if unit.method == "onrl":
        return harness.run_onrl_phase(
            cfg, epochs=p.get("epochs", 12),
            episodes_per_epoch=p.get("episodes_per_epoch", 3),
            seed=unit.seed)
    if unit.method == "baseline":
        return harness.evaluate_static_policies(
            cfg, harness.fit_baselines(cfg),
            episodes=p.get("episodes", 3), method="Baseline")
    if unit.method == "model_based":
        return harness.evaluate_static_policies(
            cfg, harness.make_model_based_policies(cfg),
            episodes=p.get("episodes", 3), method="Model_Based")
    raise ValueError(f"unknown method {unit.method!r}")
