"""Experiment units: the schedulable atoms of the evaluation.

One :class:`ExperimentUnit` is one ``(method, variant, scenario, seed)``
tuple plus its schedule parameters -- e.g. "train OnSlicing-NB on the
flash_crowd scenario with seed 42 for 6 epochs".  Units are plain
frozen dataclasses so they pickle across process boundaries (scenarios
travel *by name* and are resolved against the
:mod:`repro.scenarios` registry on the worker), and
:func:`execute_unit` is a top-level function so worker processes can
run them.  Every table/figure generator decomposes into units, submits
them to a :class:`~repro.runtime.runner.ParallelRunner`, and assembles
rows/series from the returned :class:`~repro.experiments.metrics`
objects.

Methods
-------
``onslicing``
    Offline stage + online phase (+ optional deterministic test); the
    ``variant`` field selects the paper's ablations (``full``, ``nb``,
    ``ne``, ``est_noise``, ``projection``, ``md_noise``).  Returns a
    :class:`MethodResult` whose ``trajectory`` is the online phase.
``onrl`` / ``baseline`` / ``model_based``
    The three comparison methods of Sec. 7.1.
``snapshot_eval``
    Evaluate a saved policy snapshot on the unit's scenario through
    the decision service -- no training.  ``params`` carry the store
    directory, the snapshot ref, and the snapshot's content digest
    (so the cache key changes when the snapshot does); ``variant``
    names the snapshotted method.
``figure``
    A whole single-run figure generator (``variant`` names it, e.g.
    ``fig12``); used for artefacts that cannot be decomposed further.
``fleet``
    A whole fleet campaign (:mod:`repro.fleet`) served from a
    digest-pinned snapshot; ``params`` carry the
    :class:`~repro.fleet.spec.FleetSpec`, the store directory, the
    snapshot ref and its content digest, and the result is the
    :class:`~repro.fleet.report.FleetReport`.  Shards run inline so
    the unit stays deterministic under the runner's own process pool.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import scenarios as scenario_registry
from repro.config import ExperimentConfig
from repro.runtime.cache import code_version, content_key

#: Figure generators runnable as whole-figure units.  The fan-out
#: figures (fig3/9/11/13) are *not* here: they decompose into method
#: units inside :mod:`repro.experiments.figures` instead.
FIGURE_UNITS = ("fig5", "fig6", "fig10", "fig12", "fig14", "fig15",
                "fig16", "fig17", "fig18", "fig19")

METHODS = ("onslicing", "onrl", "baseline", "model_based",
           "snapshot_eval", "figure", "fleet")

#: Methods whose execution actually consumes ``unit.seed`` (the static
#: baselines derive all randomness from the config's seed).  A seed
#: override only rewrites these, so it never forces a gratuitous
#: recompute of seed-independent units.
SEED_CONSUMING_METHODS = ("onslicing", "onrl", "snapshot_eval",
                          "fleet")

#: Methods that run without a (single) scenario: figures drive their
#: own protocol, fleet units carry a whole scenario *cycle* in their
#: FleetSpec.
SCENARIO_FREE_METHODS = ("figure", "fleet")


def schedule_epochs(scale: float, full_epochs: int) -> int:
    """Shrink a full training schedule by ``scale``, floored at the
    2 epochs every trajectory-shaped artefact needs.  The one schedule
    rule shared by tables, figures and the robustness matrix."""
    return max(int(round(full_epochs * scale)), 2)


@dataclass(frozen=True)
class ExperimentUnit:
    """One independently runnable (and cacheable) piece of work."""

    method: str
    variant: str = "full"
    scenario: str = "default"
    seed: int = 42
    #: Sorted ``(name, value)`` schedule parameters (epochs, episodes,
    #: ...).  A tuple so the unit stays hashable and picklable.
    params: Tuple[Tuple[str, Any], ...] = ()
    #: Explicit config override; when set it wins over ``scenario``.
    #: Excluded from equality/hash (configs are mutable dataclasses);
    #: cache identity comes from :func:`unit_cache_key`, which hashes
    #: the resolved config's full contents.
    cfg: Optional[ExperimentConfig] = field(default=None, compare=False)
    #: The resolved scenario spec, attached by :func:`make_unit` so the
    #: unit is self-contained across process boundaries: a worker under
    #: a spawn/forkserver start method only has the *built-in* registry,
    #: and a user-registered scenario would otherwise be unresolvable
    #: there.  Excluded from equality like ``cfg``; the cache key hashes
    #: its full contents.
    spec: Optional[Any] = field(default=None, compare=False)

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def resolve_scenario(self):
        """The :class:`~repro.scenarios.spec.ScenarioSpec` this unit
        runs under (``None`` for figure units).

        Prefers the spec carried by the unit (attached at creation, so
        it travels to worker processes by pickle); falls back to the
        registry for hand-constructed units.  Resolved even when an
        explicit ``cfg`` overrides the spec's config: the scenario's
        traffic model and event timeline still drive the simulator
        (mirroring the harness semantics), so a custom config on a
        stress scenario keeps the stress.
        """
        if self.method in SCENARIO_FREE_METHODS:
            return None
        if self.spec is not None:
            return self.spec
        return scenario_registry.get(self.scenario)

    def resolve_config(self) -> ExperimentConfig:
        if self.cfg is not None:
            return self.cfg
        return self.resolve_scenario().build_config()


def make_unit(method: str, variant: str = "full",
              scenario: str = "default", seed: int = 42,
              cfg: Optional[ExperimentConfig] = None,
              **params: Any) -> ExperimentUnit:
    """Build a validated unit; ``params`` become the schedule tuple."""
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; "
                         f"expected one of {METHODS}")
    if method == "figure":
        # make_unit's own cfg/scenario/seed parameters would shadow
        # same-named figure kwargs and then be silently ignored by
        # execute_unit while still poisoning the cache key -- build
        # figure units with make_figure_unit, which forwards *every*
        # keyword to the figure function.
        raise ValueError("use make_figure_unit() for figure units")
    if method == "fleet":
        # fleet units need the FleetSpec + pinned snapshot params and
        # the resolved scenario cycle attached
        raise ValueError("use make_fleet_unit() for fleet units")
    if scenario not in scenario_registry.names():
        raise ValueError(f"unknown scenario {scenario!r}; "
                         f"expected one of {scenario_registry.names()}")
    return ExperimentUnit(method=method, variant=variant,
                          scenario=scenario, seed=seed,
                          params=tuple(sorted(params.items())), cfg=cfg,
                          spec=scenario_registry.get(scenario))


def make_figure_unit(name: str, **params: Any) -> ExperimentUnit:
    """Build a whole-figure unit; every keyword (including ``seed``)
    reaches the figure function verbatim."""
    if name not in FIGURE_UNITS:
        raise ValueError(f"unknown figure unit {name!r}; "
                         f"expected one of {FIGURE_UNITS}")
    return ExperimentUnit(method="figure", variant=name,
                          params=tuple(sorted(params.items())))


def make_fleet_unit(spec: Any, store: str, snapshot: str,
                    digest: str) -> ExperimentUnit:
    """Build a unit that runs a whole fleet campaign.

    ``spec`` is a :class:`~repro.fleet.spec.FleetSpec`; the snapshot
    is pinned by store directory, ref *and* content digest (like
    ``snapshot_eval`` units), so the cache key changes whenever the
    served policy does.  The unit's seed mirrors the spec's so the
    runner's ``--seed`` override rewrites the campaign coherently.
    """
    from repro.fleet.spec import FleetSpec

    if not isinstance(spec, FleetSpec):
        raise TypeError(f"spec must be a FleetSpec, got {type(spec)}")
    unknown = [name for name in spec.scenario_cycle()
               if name not in scenario_registry.names()]
    if unknown:
        raise ValueError(f"fleet spec {spec.name!r} names unknown "
                         f"scenario(s): {', '.join(unknown)}")
    # The resolved cycle travels with the unit (like `spec` on method
    # units): a spawn/forkserver worker only has the built-in
    # registry, and a user-registered scenario would otherwise be
    # unresolvable there.  It also puts the resolved workloads into
    # the cache key via `params`.
    resolved = tuple(scenario_registry.get(name)
                     for name in spec.scenario_cycle())
    params = {"spec": spec, "store": store, "snapshot": snapshot,
              "digest": digest, "scenario_specs": resolved}
    return ExperimentUnit(method="fleet", variant=spec.name,
                          seed=spec.seed,
                          params=tuple(sorted(params.items())))


def unit_cache_key(unit: ExperimentUnit) -> str:
    """Content key: config + scenario spec + variant + seed + params +
    code version.

    The *resolved* scenario spec (traffic model, event timeline, slice
    population) is hashed alongside the config: two scenarios with the
    same infrastructure config but different workloads never share a
    key, and editing a registered spec invalidates its cached results.
    Fleet units hash every resolved spec of their scenario *cycle* for
    the same reason.
    """
    cfg = (None if unit.method in SCENARIO_FREE_METHODS
           else unit.resolve_config())
    spec: Any = unit.resolve_scenario()
    if unit.method == "fleet":
        # prefer the resolved cycle carried in params (hand-built
        # units without one fall back to the registry)
        params = unit.kwargs()
        spec = params.get("scenario_specs") or tuple(
            scenario_registry.get(name)
            for name in params["spec"].scenario_cycle())
    payload = {
        "config": dataclasses.asdict(cfg) if cfg is not None else None,
        "scenario_spec": spec,  # tagged-JSON encoded by content_key
        "method": unit.method,
        "variant": unit.variant,
        "scenario": unit.scenario,
        "seed": unit.seed,
        "params": [list(pair) for pair in unit.params],
        "code_version": code_version(),
    }
    return content_key(payload)


def execute_unit(unit: ExperimentUnit) -> Any:
    """Run one unit to completion (in this process) and return its
    result -- a :class:`MethodResult` for method units, the figure's
    series dict for figure units.  Deterministic given the unit, so
    parallel and in-process execution agree bit-for-bit.
    """
    # Imported lazily: workers only pay for what the unit needs, and
    # the figures module itself imports the runner (cycle otherwise).
    from repro.experiments import harness
    from repro.experiments.metrics import (
        MethodResult,
        online_phase_summary,
    )

    p = unit.kwargs()
    if unit.method == "figure":
        from repro.experiments import figures
        return getattr(figures, unit.variant)(**p)
    if unit.method == "fleet":
        from repro.fleet import run_fleet
        from repro.serve import PolicyStore

        fleet_spec = p["spec"]
        if unit.seed != fleet_spec.seed:
            # the runner's --seed override reaches the whole campaign
            fleet_spec = dataclasses.replace(fleet_spec, seed=unit.seed)
        snapshot = PolicyStore(p["store"]).load(p["snapshot"])
        if snapshot.digest != p["digest"]:
            raise ValueError(
                f"snapshot {p['snapshot']!r} changed since this fleet "
                f"unit was planned (digest {snapshot.digest[:12]} != "
                f"{p['digest'][:12]}); rebuild the units")
        carried = p.get("scenario_specs")
        scenarios = (dict(zip(fleet_spec.scenario_cycle(), carried))
                     if carried else None)
        # Shards stay inline (1): the unit itself is the parallelism
        # grain -- the runner may already be fanning units over
        # processes, and inline execution keeps results cache-exact.
        # The stepping engine (vector by default) is deliberately NOT
        # part of the unit params/cache key: both engines share one
        # kernel code path and produce identical reports, so a cached
        # scalar-era result is still exact under the vector engine
        # (tests/test_engine.py pins the equivalence).
        return run_fleet(fleet_spec, p["store"],
                         snapshot_ref=p["snapshot"], shards=1,
                         scenarios=scenarios, snapshot=snapshot)
    cfg = unit.resolve_config()
    spec = unit.resolve_scenario()
    if unit.method == "onslicing":
        bundle = harness.build_onslicing(
            cfg, variant=unit.variant,
            offline_episodes=p.get("offline_episodes", 4),
            exploration_episodes=p.get("exploration_episodes", 6),
            seed=unit.seed, scenario=spec)
        trajectory = harness.run_online_phase(
            bundle, epochs=p.get("epochs", 12),
            episodes_per_epoch=p.get("episodes_per_epoch", 3),
            estimator_refresh_every=p.get("estimator_refresh_every", 4))
        test_episodes = p.get("test_episodes", 3)
        if test_episodes:
            result = harness.test_performance(bundle,
                                              episodes=test_episodes)
        else:
            # Online-phase-only protocols (Tables 2-4): summarise the
            # trajectory instead of running extra test episodes.
            summary = online_phase_summary(trajectory)
            result = MethodResult(
                method="OnSlicing",
                avg_resource_usage=summary["avg_res_usage_pct"],
                avg_sla_violation=summary["avg_sla_violation_pct"],
                mean_interactions=summary["mean_interactions"])
        return dataclasses.replace(result, trajectory=trajectory)
    if unit.method == "onrl":
        return harness.run_onrl_phase(
            cfg, epochs=p.get("epochs", 12),
            episodes_per_epoch=p.get("episodes_per_epoch", 3),
            seed=unit.seed, scenario=spec)
    if unit.method == "snapshot_eval":
        from repro.serve import PolicyStore, evaluate_snapshot

        snapshot = PolicyStore(p["store"]).load(p["snapshot"])
        if snapshot.digest != p["digest"]:
            raise ValueError(
                f"snapshot {p['snapshot']!r} changed since this unit "
                f"was planned (digest {snapshot.digest[:12]} != "
                f"{p['digest'][:12]}); rebuild the units")
        return evaluate_snapshot(snapshot, scenario=spec,
                                 episodes=p.get("episodes", 1),
                                 seed=unit.seed)
    if unit.method == "baseline":
        return harness.evaluate_static_policies(
            cfg, harness.fit_baselines(cfg),
            episodes=p.get("episodes", 3), method="Baseline",
            scenario=spec)
    if unit.method == "model_based":
        return harness.evaluate_static_policies(
            cfg, harness.make_model_based_policies(cfg),
            episodes=p.get("episodes", 3), method="Model_Based",
            scenario=spec)
    raise ValueError(f"unknown method {unit.method!r}")
