"""``python -m repro`` -- list and run the paper's artefacts.

Subcommands
-----------
``list``
    Show every runnable artefact (tables 1-4, figures 3-19, the
    robustness matrix) and how it decomposes into experiment units.
``scenarios``
    Show every registered scenario (slice population, traffic model,
    event timeline) from :mod:`repro.scenarios`; ``--json`` emits the
    registry machine-readably for loadgen tooling and CI.
``train``
    Train one method on one scenario and (with ``--save``) snapshot
    the resulting policy into the :class:`~repro.serve.policy_store
    .PolicyStore` (default ``.repro_policies``).
``serve``
    Run the :class:`~repro.serve.service.SlicingService` from a saved
    snapshot against a scenario feed, reporting service telemetry
    (optionally exported as JSONL).
``loadgen``
    Load-test a saved snapshot: drive the service with a registered
    scenario at ``--slices N`` and report decisions/sec, p50/p99
    decision latency and the SLA-violation rate.  No retraining --
    with an empty store it bootstraps a model-based snapshot.
``fleet run / fleet report``
    Simulate ``--cells N`` cells (cycling ``--scenarios``, default the
    robustness matrix) sharded over ``--shards`` worker processes, all
    serving one digest-pinned snapshot; streams mergeable telemetry to
    a rolling aggregate, optionally checkpoints completed shards to
    JSONL (``--checkpoint``, resumable with ``--resume``), and prints
    the fleet report (p50/p99 latency, per-scenario SLA table,
    per-cell outliers, deterministic report digest).  ``fleet
    report --checkpoint`` rebuilds the report from a checkpoint file
    without running anything.  ``--slo SPEC`` judges every
    shard-checkpoint boundary against a declarative health contract
    (burn-rate alerting; ``--slo-timeline`` streams the incident
    records, ``--fail-fast`` exits 4 on a sustained page burn,
    ``--diagnose`` appends the ranked root-cause hypotheses).
``fuzz run / fuzz shrink / fuzz sweep``
    Scenario fuzzing: ``run`` generates a seeded spec corpus
    (``--seed``/``--count``) and oracle-checks it across methods --
    SLA verdicts plus engine invariants (finite kernels, conservation,
    cross-engine parity), exiting non-zero on an invariant breach;
    ``shrink`` delta-debugs one violating world to a minimal spec
    (``--out`` writes the tagged JSON for catalog graduation);
    ``sweep`` writes cost-vs-SLA Pareto frontier and scenario-family
    heatmap artefacts (also available as ``run fuzz_sweep``).
``run ARTEFACT [ARTEFACT ...]``
    Regenerate artefacts through the shared
    :class:`~repro.runtime.runner.ParallelRunner`: ``--workers`` fans
    units out over processes, ``--scale`` shortens the training
    schedules, and results are served from the on-disk cache
    (``--cache-dir``, default ``.repro_cache``) whenever the same
    config/seed/code version was computed before.  ``run all`` sweeps
    everything.  ``--scenario`` re-targets scenario-aware artefacts at
    a named workload, ``--seed`` overrides every method unit's seed,
    and ``--list-units`` prints the unit decomposition (with cache
    keys) instead of executing.
``cache``
    Inspect (``info``), drop (``clear``) or size-bound (``prune
    --max-size``) the on-disk result cache.
``obs report / compare / profile / watch / incidents / diagnose /
slo-compare``
    Observability tooling: ``report`` rolls merged trace files (from
    ``REPRO_TRACE_DIR`` or ``fleet run --trace-dir``) into a
    flamegraph-style span tree with an attributed-span digest;
    ``compare`` diffs ``BENCH_*.json`` perf results against the
    committed baselines (non-zero exit on regression); ``profile``
    runs one scenario episode under the per-kernel profiler and
    prints where engine time goes; ``watch`` renders a live fleet
    health board (burn sparklines, open incidents) from a fleet
    checkpoint or a serving telemetry export; ``incidents`` queries
    an SLO incident timeline (filter by objective/severity/event)
    and prints its deterministic digest; ``diagnose`` replays a fleet
    checkpoint through the root-cause attribution engine and ranks
    the hypotheses behind each SLO breach (injected scenario events,
    fallback storms, snapshot regressions); ``slo-compare`` renders
    the canary verdict between two checkpoints (exit 3 on
    regression).

Examples
--------
::

    python -m repro list
    python -m repro scenarios --json
    python -m repro run table1 --workers 4 --scale 0.1
    python -m repro run robustness --scale 0.05 --workers 2
    python -m repro run table1 --scenario flash_crowd --seed 7
    python -m repro run table1 --list-units
    python -m repro run fig13 fig16 --json
    python -m repro cache prune --max-size 256M
    python -m repro train --method onslicing --scale 0.1 --save prod
    python -m repro serve --snapshot prod --scenario flash_crowd
    python -m repro loadgen --scenario flash_crowd --slices 50
    python -m repro fleet run --cells 32 --shards auto
    python -m repro fleet run --cells 32 --checkpoint fleet.jsonl \
        --resume
    python -m repro fleet report --checkpoint fleet.jsonl
    python -m repro fuzz run --seed 11 --count 16
    python -m repro fuzz shrink --seed 11 --world 4 \
        --method model_based
    python -m repro fuzz sweep --count 32 --out artefacts/
    python -m repro fleet run --cells 8 --trace-dir .repro_trace
    python -m repro fleet run --cells 8 --slo default \
        --slo-timeline incidents.jsonl --fail-fast
    python -m repro obs report .repro_trace
    python -m repro obs compare --results .repro_bench
    python -m repro obs profile --scenario flash_crowd --alloc
    python -m repro obs watch --checkpoint fleet.jsonl --once
    python -m repro obs incidents incidents.jsonl --severity page
    python -m repro obs diagnose fleet.jsonl --top 3
    python -m repro obs slo-compare incumbent.jsonl candidate.jsonl
    python -m repro fleet run --cells 8 --slo default \
        --checkpoint fleet.jsonl --diagnose
    python -m repro loadgen --scenario flash_crowd --slo default
"""

from __future__ import annotations

import argparse
import dataclasses
import inspect
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.obs.cli import add_obs_parser, run_obs
from repro.runtime.cache import configure_shared_cache
from repro.runtime.runner import ParallelRunner, default_workers
from repro.runtime.serialization import to_jsonable

DEFAULT_CACHE_DIR = ".repro_cache"
#: Mirrors ``repro.serve.DEFAULT_STORE_DIR`` (a literal so argparse
#: defaults never import the serve layer at CLI start-up).
DEFAULT_STORE_DIR = ".repro_policies"
DEFAULT_SCALE = 0.1

#: Methods `train` accepts (mirrors repro.serve.SNAPSHOT_METHODS
#: without importing the serve layer at module load).
TRAIN_METHODS = ("onslicing", "onrl", "baseline", "model_based")


@dataclass(frozen=True)
class Artefact:
    """One runnable paper artefact and how to regenerate it."""

    name: str
    description: str
    #: "fanout" generators take (scale, runner) and decompose into
    #: method units; "figure" artefacts run as one whole-figure unit.
    kind: str
    scaled: bool = True


ARTEFACTS: Dict[str, Artefact] = {a.name: a for a in (
    Artefact("table1", "test usage/violation of all four methods",
             "fanout"),
    Artefact("table2", "online averages of the switching variants",
             "fanout"),
    Artefact("table3", "action-modification methods", "fanout"),
    Artefact("table4", "OnSlicing on 4G LTE vs 5G NR (fixed MCS 9)",
             "fanout"),
    Artefact("fig3", "unsafe fixed-penalty DRL vs the baseline",
             "fanout"),
    Artefact("fig5", "slice rates under RDM vs vanilla", "figure",
             scaled=False),
    Artefact("fig6", "retransmission probability vs MCS offset",
             "figure", scaled=False),
    Artefact("fig9", "usage-vs-violation learning trajectories",
             "fanout"),
    Artefact("fig10", "offline imitation usage curves", "figure",
             scaled=False),
    Artefact("fig11", "per-slice online curves", "fanout"),
    Artefact("fig12", "proactive switching under a traffic anomaly",
             "figure", scaled=False),
    Artefact("fig13", "violation curves of switching variants",
             "fanout"),
    Artefact("fig14", "usage under fixed coordinating parameters",
             "figure", scaled=False),
    Artefact("fig15", "per-resource converged allocations", "figure"),
    Artefact("fig16", "ping-delay CDF, LTE vs NR", "figure",
             scaled=False),
    Artefact("fig17", "slice performance CDF, LTE vs NR", "figure",
             scaled=False),
    Artefact("fig18", "MAR user scale-up", "figure"),
    Artefact("fig19", "coordination rounds vs slice count", "figure",
             scaled=False),
    Artefact("robustness", "all four methods across the scenario "
             "stress matrix", "fanout"),
    Artefact("fleet_sweep", "fleet campaigns at growing cell counts",
             "fanout"),
    Artefact("fuzz_sweep", "cost-vs-SLA Pareto frontier over fuzzed "
             "worlds", "fanout"),
)}


def _generator(name: str) -> Callable[..., Any]:
    if name == "robustness":
        from repro.experiments.robustness import robustness

        return robustness
    if name == "fleet_sweep":
        from repro.experiments.fleet_sweep import fleet_sweep

        return fleet_sweep
    if name == "fuzz_sweep":
        from repro.experiments.fuzz import fuzz_sweep

        return fuzz_sweep
    from repro.experiments import figures, tables

    module = tables if name.startswith("table") else figures
    return getattr(module, name)


def supports_scenario(name: str) -> bool:
    """Whether an artefact's generator takes a ``scenario`` keyword."""
    if ARTEFACTS[name].kind != "fanout":
        return False
    return "scenario" in inspect.signature(_generator(name)).parameters


def run_artefact(name: str, runner: ParallelRunner, scale: float,
                 scenario: Optional[str] = None) -> Any:
    spec = ARTEFACTS[name]
    if scenario is not None and not supports_scenario(name):
        raise SystemExit(
            f"artefact {name!r} does not accept --scenario")
    if spec.kind == "fanout":
        kwargs: Dict[str, Any] = {"scale": scale, "runner": runner}
        if scenario is not None:
            kwargs["scenario"] = scenario
        return _generator(name)(**kwargs)
    kwargs = {"scale": scale} if spec.scaled else {}
    return runner.run_figure(name, **kwargs)


def _print_units(units: List[Any]) -> None:
    """Print a recorded unit decomposition (``run --list-units``)."""
    from repro.runtime.units import unit_cache_key

    def clip(value: Any) -> str:
        # fleet units carry whole resolved specs in params; the
        # listing only needs enough to identify the unit
        text = str(value)
        return text if len(text) <= 64 else f"{text[:61]}..."

    print(f"{'method':<12} {'variant':<12} {'scenario':<18} "
          f"{'seed':<6} {'key':<14} params")
    for unit in units:
        params = " ".join(f"{k}={clip(v)}"
                          for k, v in unit.params) or "-"
        key = unit_cache_key(unit)[:12]
        print(f"{unit.method:<12} {unit.variant:<12} "
              f"{unit.scenario:<18} {unit.seed:<6} {key:<14} {params}")
    print(f"{len(units)} unit(s)")


def _print_result(name: str, result: Any) -> None:
    print(f"== {name} ==")
    if isinstance(result, dict) and result and all(
            isinstance(v, dict) and "method" in v
            for v in result.values()):
        for row in result.values():  # a table: aligned metric rows
            cells = "  ".join(f"{k}={v}" for k, v in row.items()
                              if k != "method")
            print(f"  {row['method']:<24} {cells}")
    elif isinstance(result, dict):
        for key, value in result.items():
            text = repr(value)
            if len(text) > 60:
                text = f"{text[:57]}..."
            print(f"  {key}: {text}")
    else:
        print(f"  {result!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list runnable artefacts")

    scenarios = sub.add_parser(
        "scenarios",
        help="list registered scenarios / bench the engines")
    scenarios.add_argument("scenarios_command", nargs="?",
                           choices=("list", "bench"), default="list",
                           help="'list' (default) or 'bench': measure "
                                "scalar vs vector engine slot "
                                "throughput over the catalog")
    scenarios.add_argument("--json", action="store_true",
                           dest="as_json",
                           help="machine-readable output")
    scenarios.add_argument("--batch", type=int, default=8,
                           help="bench: worlds per scenario batch "
                                "(default: 8)")
    scenarios.add_argument("--slots", type=int, default=24,
                           help="bench: episode horizon in slots "
                                "(default: 24)")
    scenarios.add_argument("--scenario", default=None, metavar="NAME",
                           help="bench: a single scenario (default: "
                                "the whole catalog)")
    scenarios.add_argument("--fast", action="store_true",
                           help="bench: also time the vector-fast "
                                "tier (float32/numba; reported as a "
                                "separate multiple, excluded from "
                                "the parity check)")

    train = sub.add_parser(
        "train", help="train a method and snapshot the policy")
    train.add_argument("--method", choices=TRAIN_METHODS,
                       default="onslicing")
    train.add_argument("--scenario", default="default", metavar="NAME",
                       help="training scenario (default: default)")
    train.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                       help="schedule scale in (0, 1] "
                            f"(default: {DEFAULT_SCALE})")
    train.add_argument("--seed", type=int, default=42)
    train.add_argument("--save", nargs="?", const="", default=None,
                       metavar="NAME",
                       help="store the snapshot (optionally named; "
                            "default name <method>-<scenario>-seed<N>)")
    train.add_argument("--store-dir", default=DEFAULT_STORE_DIR,
                       help=f"policy store (default: "
                            f"{DEFAULT_STORE_DIR})")

    for command, description in (
            ("serve", "run the decision service over a scenario feed"),
            ("loadgen", "load-test a saved snapshot")):
        p = sub.add_parser(command, help=description)
        p.add_argument("--scenario",
                       required=(command == "loadgen"), default=None,
                       metavar="NAME",
                       help="workload scenario"
                            + ("" if command == "loadgen"
                               else " (default: the snapshot's)"))
        p.add_argument("--snapshot", default=None, metavar="REF",
                       help="snapshot 'name' or 'name@version' "
                            "(default: newest in the store)")
        p.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
        p.add_argument("--slices", type=int, default=None, metavar="N",
                       help="serve an N-slice population(N) instead "
                            "of the scenario's own slices")
        p.add_argument("--episodes", type=int, default=1)
        p.add_argument("--decisions", type=int, default=None,
                       metavar="N", help="stop after N decisions")
        p.add_argument("--seed", type=int, default=None,
                       help="traffic/service seed (default: the "
                            "scenario's)")
        p.add_argument("--no-batch", action="store_true",
                       help="disable micro-batched inference "
                            "(reference path)")
        p.add_argument("--telemetry-dir", default=None, metavar="DIR",
                       help="export instrument readings as JSONL")
        p.add_argument("--slo", default=None, metavar="SPEC",
                       help="evaluate SLOs while serving: 'default' "
                            "for the stock contract or a tagged-JSON "
                            "SloSpec file")
        p.add_argument("--json", action="store_true", dest="as_json")

    fleet = sub.add_parser(
        "fleet", help="sharded multi-cell fleet simulation")
    fleet_sub = fleet.add_subparsers(dest="fleet_command",
                                     required=True)
    fleet_run = fleet_sub.add_parser(
        "run", help="simulate N cells sharded over worker processes")
    fleet_run.add_argument("--cells", type=int, default=8,
                           help="simulated cells (default: 8)")
    fleet_run.add_argument("--shards", default="auto",
                           help="worker shards, or 'auto' "
                                "(default: auto)")
    fleet_run.add_argument("--scenarios", default=None, metavar="A,B",
                           help="comma-separated registered scenarios "
                                "cells cycle through (default: the "
                                "robustness matrix)")
    fleet_run.add_argument("--slices", type=int, default=None,
                           metavar="N",
                           help="re-populate every cell to N slices")
    fleet_run.add_argument("--episodes", type=int, default=1)
    fleet_run.add_argument("--slots", type=int, default=None,
                           metavar="N",
                           help="episode horizon override (slots)")
    fleet_run.add_argument("--seed", type=int, default=7,
                           help="fleet seed (cell seeds derive from "
                                "it; default: 7)")
    fleet_run.add_argument("--snapshot", default=None, metavar="REF",
                           help="snapshot 'name' or 'name@version' "
                                "(default: newest in the store)")
    fleet_run.add_argument("--store-dir", default=DEFAULT_STORE_DIR)
    fleet_run.add_argument("--name", default="fleet", metavar="NAME",
                           help="campaign name (default: fleet)")
    fleet_run.add_argument("--checkpoint", default=None, metavar="PATH",
                           help="stream completed shards to a JSONL "
                                "checkpoint")
    fleet_run.add_argument("--resume", action="store_true",
                           help="resume a killed run from "
                                "--checkpoint (same spec and seed)")
    fleet_run.add_argument("--engine",
                           choices=("scalar", "vector",
                                    "vector-compat", "vector-fast"),
                           default="vector",
                           help="cell stepping engine: 'vector' "
                                "(default) batch-steps each shard's "
                                "cells in lockstep through the "
                                "kernel arena, 'scalar' runs them "
                                "sequentially, 'vector-compat' is "
                                "the allocating reference tier "
                                "(results identical across those "
                                "three); 'vector-fast' is the "
                                "float32/numba tier -- fast, not "
                                "bit-identical, never digest-bearing")
    fleet_run.add_argument("--trace-dir", default=None, metavar="DIR",
                           dest="trace_dir",
                           help="write obs trace spans (one JSONL "
                                "file per process) into DIR; inspect "
                                "with 'python -m repro obs report'")
    fleet_run.add_argument("--slo", default=None, metavar="SPEC",
                           help="evaluate SLOs at every shard "
                                "checkpoint: 'default' for the stock "
                                "contract or a tagged-JSON SloSpec "
                                "file")
    fleet_run.add_argument("--slo-timeline", default=None,
                           metavar="PATH", dest="slo_timeline",
                           help="write the incident timeline JSONL "
                                "here (with --slo; inspect with "
                                "'python -m repro obs incidents')")
    fleet_run.add_argument("--fail-fast", action="store_true",
                           dest="fail_fast",
                           help="with --slo: abort (exit 4) the "
                                "moment an objective sustains a "
                                "page-severity burn")
    fleet_run.add_argument("--diagnose", action="store_true",
                           help="after the run, replay the checkpoint "
                                "through the diagnosis engine and "
                                "print the ranked root-cause "
                                "hypotheses (needs --checkpoint)")
    fleet_run.add_argument("--json", action="store_true",
                           dest="as_json")
    fleet_report = fleet_sub.add_parser(
        "report", help="rebuild a fleet report from a checkpoint")
    fleet_report.add_argument("--checkpoint", required=True,
                              metavar="PATH")
    fleet_report.add_argument("--json", action="store_true",
                              dest="as_json")

    fuzz = sub.add_parser(
        "fuzz", help="fuzz scenarios, shrink failing worlds, sweep")
    fuzz_sub = fuzz.add_subparsers(dest="fuzz_command", required=True)
    fuzz_run = fuzz_sub.add_parser(
        "run", help="generate a seeded corpus and oracle-check it")
    fuzz_shrink = fuzz_sub.add_parser(
        "shrink", help="minimise one SLA-violating fuzzed world")
    fuzz_sweep_p = fuzz_sub.add_parser(
        "sweep", help="Pareto frontier + family heatmap artefacts")
    for p in (fuzz_run, fuzz_shrink, fuzz_sweep_p):
        p.add_argument("--seed", type=int, default=11,
                       help="fuzz seed (default: 11)")
        p.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                       help="snapshot training schedule scale for the "
                            f"learned methods (default: {DEFAULT_SCALE})")
        p.add_argument("--store-dir", default=DEFAULT_STORE_DIR,
                       help="policy store for the learned methods' "
                            f"snapshots (default: {DEFAULT_STORE_DIR})")
        p.add_argument("--json", action="store_true", dest="as_json")
    for p in (fuzz_run, fuzz_sweep_p):
        p.add_argument("--count", type=int, default=16,
                       help="corpus size (default: 16)")
        p.add_argument("--batch", type=int, default=8,
                       help="worlds per engine batch (default: 8)")
        p.add_argument("--methods", default="baseline,model_based",
                       metavar="A,B",
                       help="comma-separated methods (default: the "
                            "training-free baseline,model_based; "
                            f"any of {','.join(TRAIN_METHODS)})")
        p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
        p.add_argument("--no-cache", action="store_true",
                       help="recompute, bypassing the result cache")
    fuzz_run.add_argument("--engine",
                          choices=("scalar", "vector",
                                   "vector-compat", "vector-fast"),
                          default="vector",
                          help="driving engine; 'vector-fast' "
                               "switches the parity oracle to "
                               "float64-vs-fast tolerance mode")
    fuzz_run.add_argument("--no-parity", action="store_true",
                          help="skip the cross-engine parity check")
    fuzz_shrink.add_argument("--world", type=int, required=True,
                             help="corpus index of the failing world")
    fuzz_shrink.add_argument("--method", choices=TRAIN_METHODS,
                             default="model_based",
                             help="method whose SLA violation must be "
                                  "preserved (default: model_based)")
    fuzz_shrink.add_argument("--max-evals", type=int, default=200,
                             help="predicate evaluation budget "
                                  "(default: 200)")
    fuzz_shrink.add_argument("--out", default=None, metavar="PATH",
                             help="write the shrunk spec as tagged "
                                  "JSON (catalog graduation input)")
    fuzz_sweep_p.add_argument("--out", default=None, metavar="DIR",
                              help="write fuzz_pareto.json / "
                                   "fuzz_heatmap.json artefacts")

    run = sub.add_parser("run", help="regenerate artefacts")
    run.add_argument("artefacts", nargs="+", metavar="ARTEFACT",
                     help="table1..table4, fig3..fig19, robustness, "
                          "or 'all'")
    run.add_argument("--workers", default="1",
                     help="worker processes, or 'auto' (default: 1)")
    run.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                     help="schedule scale in (0, 1]; 1.0 approximates "
                          f"the paper (default: {DEFAULT_SCALE})")
    run.add_argument("--scenario", default=None, metavar="NAME",
                     help="re-target scenario-aware artefacts at a "
                          "registered scenario (see 'scenarios')")
    run.add_argument("--seed", type=int, default=None,
                     help="override the seed of every learning unit "
                          "(onslicing/onrl)")
    run.add_argument("--list-units", action="store_true",
                     dest="list_units",
                     help="print the unit decomposition (with cache "
                          "keys) instead of executing")
    run.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                     help=f"result cache (default: {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute everything, bypassing the cache")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print results as JSON instead of text")

    cache = sub.add_parser("cache",
                           help="inspect/clear/prune the cache")
    cache.add_argument("action", choices=("info", "clear", "prune"))
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    cache.add_argument("--max-size", default=None, metavar="SIZE",
                       help="prune target, bytes with optional "
                            "K/M/G suffix (e.g. 256M); required for "
                            "'prune'")

    add_obs_parser(sub)
    return parser


def resolve_artefacts(names: List[str]) -> List[str]:
    if names == ["all"]:
        return list(ARTEFACTS)
    unknown = [n for n in names if n not in ARTEFACTS]
    if unknown:
        raise SystemExit(
            f"unknown artefact(s): {', '.join(unknown)} "
            f"(try 'python -m repro list')")
    return names


def parse_workers(value: str, option: str = "--workers") -> int:
    """Parse a worker-count setting; ``option`` names the flag or
    environment variable being parsed so errors blame the right knob."""
    if value == "auto":
        return default_workers()
    try:
        workers = int(value)
    except ValueError:
        raise SystemExit(f"{option} must be an integer or 'auto', "
                         f"got {value!r}")
    if workers < 1:
        raise SystemExit(f"{option} must be >= 1")
    return workers


_SIZE_SUFFIXES = {"": 1, "k": 1024, "m": 1024 ** 2, "g": 1024 ** 3}


def parse_size(value: str, option: str = "--max-size") -> int:
    """Parse a byte size with an optional K/M/G suffix (e.g. 256M)."""
    import re

    match = re.fullmatch(r"\s*(\d+(?:\.\d+)?)\s*([kKmMgG]?)[bB]?\s*",
                         value)
    if not match:
        raise SystemExit(f"{option} must look like 1024, 256M or 2G, "
                         f"got {value!r}")
    return int(float(match.group(1))
               * _SIZE_SUFFIXES[match.group(2).lower()])


def _load_serving_snapshot(store_dir: str, ref: Optional[str]):
    """Resolve the snapshot a serve/loadgen/fleet run should use
    (:func:`repro.serve.resolve_serving_snapshot`: explicit ref, else
    newest, else bootstrap a model-based snapshot), translating
    *lookup* failures into actionable CLI errors."""
    from repro.serve import resolve_serving_snapshot

    try:
        return resolve_serving_snapshot(store_dir, ref)
    except (KeyError, ValueError) as exc:
        if ref is None:
            # no explicit ref: the failure came from the store scan or
            # the bootstrap training itself -- "train one" would be
            # circular advice, so surface the real cause
            raise
        raise SystemExit(
            f"{exc.args[0]} (train one with 'python -m repro "
            "train --save')")


def _run_serving(args, report_telemetry: bool) -> int:
    """Shared body of the ``serve`` and ``loadgen`` subcommands."""
    from repro.serve import LoadGenerator

    snapshot = _load_serving_snapshot(args.store_dir, args.snapshot)
    scenario = args.scenario or snapshot.scenario
    from repro import scenarios as scenario_registry

    if scenario not in scenario_registry.names():
        raise SystemExit(f"unknown scenario {scenario!r} "
                         f"(try 'python -m repro scenarios')")
    evaluator = None
    if args.slo is not None:
        from repro.obs.cli import load_slo_spec
        from repro.obs.slo import SloEvaluator

        evaluator = SloEvaluator(load_slo_spec(args.slo))
    generator = LoadGenerator(snapshot, scenario, slices=args.slices,
                              seed=args.seed,
                              batching=not args.no_batch,
                              slo=evaluator)
    report = generator.run(episodes=args.episodes,
                           max_decisions=args.decisions)
    telemetry_rows = generator.telemetry.snapshot()
    if args.telemetry_dir:
        base = os.path.join(args.telemetry_dir,
                            f"{snapshot.name}-{report.scenario}")
        path = generator.telemetry.export_jsonl(
            base + ".jsonl", run_label=snapshot.ref)
        prom = generator.telemetry.export_prometheus_file(
            base + ".prom")
        print(f"telemetry written to {path} and {prom}",
              file=sys.stderr)
    if args.as_json:
        payload = {"snapshot": snapshot.ref,
                   "method": snapshot.method,
                   "report": report.row()}
        if report_telemetry:
            payload["telemetry"] = telemetry_rows
        if evaluator is not None:
            from repro.obs.monitor import frame_payload

            payload["slo"] = frame_payload(evaluator)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"== {'serve' if report_telemetry else 'loadgen'} "
          f"{report.scenario} ==")
    print(f"  snapshot          {snapshot.ref} ({snapshot.method})")
    print(f"  slices            {report.slices}")
    print(f"  decisions         {report.decisions} "
          f"({report.episodes} episode(s))")
    print(f"  throughput        {report.decisions_per_sec:,.0f} "
          "decisions/s")
    print(f"  decision latency  p50 {report.p50_latency_ms:.3f} ms   "
          f"p99 {report.p99_latency_ms:.3f} ms")
    print(f"  SLA violation     {100.0 * report.violation_rate:.1f}% "
          "of (episode, slice)")
    print(f"  fallback          {100.0 * report.fallback_rate:.1f}% "
          "of decisions")
    print(f"  mean usage        {100.0 * report.mean_usage:.1f}%")
    print(f"  digest            {report.decision_digest[:16]}")
    if report_telemetry:
        print("  -- telemetry --")
        for row in telemetry_rows:
            cells = "  ".join(f"{k}={v:.3f}" if isinstance(v, float)
                              else f"{k}={v}"
                              for k, v in row.items()
                              if k not in ("metric", "type"))
            print(f"  {row['metric']:<22} {cells}")
    if evaluator is not None:
        from repro.obs.monitor import format_open_incidents, \
            format_statuses

        print("  -- slo --")
        for line in format_statuses(evaluator.statuses()).splitlines():
            print(f"  {line}")
        print(f"  {format_open_incidents(evaluator.timeline)}")
    return 0


def _scenarios_bench(args) -> int:
    """``scenarios bench``: scalar vs vector engine slot throughput.

    Builds a ``--batch``-world batch per catalog scenario (short
    ``--slots`` horizon), drives both engines under a fixed allocation
    policy, and prints world-slots/s, decisions/s and the speedup.
    The two engines share one kernel path, so this measures batching
    alone -- and doubles as a quick live parity check, since mismatched
    totals abort the bench.
    """
    import dataclasses as _dc
    import time

    import numpy as np

    from repro import scenarios as scenario_registry
    from repro.config import NUM_ACTIONS, TrafficConfig
    from repro.engine.policies import ConstantBatchPolicy
    from repro.experiments.harness import make_simulators

    if args.batch < 1 or args.slots < 2:
        raise SystemExit("--batch must be >= 1 and --slots >= 2")
    names = ([args.scenario] if args.scenario
             else sorted(scenario_registry.names()))
    unknown = [n for n in names if n not in scenario_registry.names()]
    if unknown:
        raise SystemExit(f"unknown scenario(s): {', '.join(unknown)} "
                         f"(try 'python -m repro scenarios')")
    policy = ConstantBatchPolicy(np.full(NUM_ACTIONS, 0.25))
    rows = []
    for name in names:
        spec = scenario_registry.get(name)
        traffic = (spec.traffic_cfg if spec.traffic_cfg is not None
                   else TrafficConfig())
        spec = _dc.replace(spec, traffic_cfg=_dc.replace(
            traffic, slots_per_episode=args.slots))
        cfg = spec.build_config()

        def timed(engine):
            from repro.experiments.harness import run_episodes

            sims = make_simulators(cfg, spec, count=args.batch)
            start = time.perf_counter()
            totals = run_episodes(sims, policy, episodes=1,
                                  engine=engine)
            return time.perf_counter() - start, totals

        scalar_s, scalar_totals = timed("scalar")
        vector_s, vector_totals = timed("vector")
        if scalar_totals != vector_totals:
            raise SystemExit(
                f"engine parity violation on scenario {name!r}: "
                "scalar and vector totals differ -- this is a bug, "
                "please report it")
        world_slots = args.batch * args.slots
        decisions = sum(len(episode[0]) for episode in scalar_totals) \
            * args.slots
        row = {
            "scenario": name,
            "worlds": args.batch,
            "slots": args.slots,
            "scalar_world_slots_per_s": world_slots / scalar_s,
            "vector_world_slots_per_s": world_slots / vector_s,
            "vector_decisions_per_s": decisions / vector_s,
            "speedup": scalar_s / vector_s,
        }
        if getattr(args, "fast", False):
            # float32 tier: timed separately, never parity-gated.
            fast_s, _ = timed("vector-fast")
            row["fast_world_slots_per_s"] = world_slots / fast_s
            row["fast_speedup"] = scalar_s / fast_s
        rows.append(row)
    if args.as_json:
        print(json.dumps(rows, indent=2))
        return 0
    print(f"{'scenario':<18} {'worlds':>6} {'scalar w-slots/s':>17} "
          f"{'vector w-slots/s':>17} {'speedup':>8}")
    for row in rows:
        line = (f"{row['scenario']:<18} {row['worlds']:>6} "
                f"{row['scalar_world_slots_per_s']:>17,.0f} "
                f"{row['vector_world_slots_per_s']:>17,.0f} "
                f"{row['speedup']:>7.1f}x")
        if "fast_speedup" in row:
            line += f"  (fast {row['fast_speedup']:.1f}x)"
        print(line)
    mean = sum(row["speedup"] for row in rows) / len(rows)
    print(f"{len(rows)} scenario(s), mean speedup {mean:.1f}x "
          f"at B={args.batch} (identical results on both engines)")
    return 0


def _fleet_json(report, complete: bool = True) -> str:
    """Machine-readable fleet report payload."""
    return json.dumps({
        "complete": complete,
        "report": report.row(),
        "scenarios": [dataclasses.asdict(row)
                      for row in report.scenarios],
        "stages": [dataclasses.asdict(row)
                   for row in report.stages],
        "outliers": [dataclasses.asdict(row)
                     for row in report.outliers],
    }, indent=2)


def _run_fleet(args) -> int:
    """The ``fleet run`` / ``fleet report`` subcommands."""
    from repro.fleet import (
        FleetSloBreach,
        FleetSpec,
        format_report,
        load_checkpoint,
        report_from_checkpoint,
        run_fleet,
    )

    if args.fleet_command == "report":
        try:
            checkpoint = load_checkpoint(args.checkpoint)
        except OSError as exc:
            raise SystemExit(f"cannot read checkpoint: {exc}")
        except ValueError as exc:
            raise SystemExit(str(exc))
        report = report_from_checkpoint(checkpoint)
        if not checkpoint.complete:
            print(f"note: checkpoint holds {len(checkpoint.results)}/"
                  f"{checkpoint.shards} shard(s); this report is "
                  "partial (finish with 'fleet run --resume')",
                  file=sys.stderr)
        print(_fleet_json(report, complete=checkpoint.complete)
              if args.as_json else format_report(report))
        return 0

    from repro import scenarios as scenario_registry

    scenario_names = None
    if args.scenarios is not None:
        scenario_names = tuple(
            name.strip() for name in args.scenarios.split(",")
            if name.strip())
        if not scenario_names:
            # an explicitly passed empty list (e.g. an unset shell
            # variable) must not silently become the full matrix
            raise SystemExit("--scenarios was given but names no "
                             "scenario (try 'python -m repro "
                             "scenarios', or drop the flag for the "
                             "robustness matrix)")
        unknown = [name for name in scenario_names
                   if name not in scenario_registry.names()]
        if unknown:
            raise SystemExit(f"unknown scenario(s): "
                             f"{', '.join(unknown)} "
                             f"(try 'python -m repro scenarios')")
    if args.resume and not args.checkpoint:
        raise SystemExit("--resume needs --checkpoint (there is "
                         "nothing to resume from without one)")
    slo_spec = None
    if args.slo is not None:
        from repro.obs.cli import load_slo_spec

        slo_spec = load_slo_spec(args.slo)
    elif args.slo_timeline or args.fail_fast:
        raise SystemExit("--slo-timeline/--fail-fast need --slo (pass "
                         "--slo default for the stock contract)")
    if args.diagnose and not args.checkpoint:
        raise SystemExit("--diagnose needs --checkpoint (the "
                         "diagnosis replays the checkpoint's shards)")
    try:
        spec = FleetSpec(name=args.name, cells=args.cells,
                         scenarios=scenario_names or (),
                         slices=args.slices, episodes=args.episodes,
                         slots=args.slots, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc))
    snapshot = _load_serving_snapshot(args.store_dir, args.snapshot)
    shards = parse_workers(args.shards, option="--shards")
    if args.trace_dir is not None:
        # the env variable is how shard worker processes inherit the
        # trace session; the coordinator joins it here too
        from repro.obs.trace import ENV_TRACE_DIR, configure_from_env

        os.environ[ENV_TRACE_DIR] = args.trace_dir
        configure_from_env(label="coordinator")
    try:
        report = run_fleet(
            spec, args.store_dir, snapshot_ref=snapshot.ref,
            shards=shards, checkpoint_path=args.checkpoint,
            resume=args.resume,
            progress=lambda line: print(line, file=sys.stderr),
            snapshot=snapshot, engine=args.engine,
            slo=slo_spec, slo_timeline=args.slo_timeline,
            fail_fast=args.fail_fast)
    except FleetSloBreach as exc:
        print(f"SLO BREACH: {exc}", file=sys.stderr)
        if args.slo_timeline:
            print(f"incident timeline: {args.slo_timeline} (inspect "
                  "with 'python -m repro obs incidents')",
                  file=sys.stderr)
        return 4
    except ValueError as exc:
        raise SystemExit(str(exc))
    except OSError as exc:
        # checkpoint I/O (reading an old one or writing the new one):
        # unwritable directory, path through a file, EACCES...
        raise SystemExit(f"checkpoint I/O failed: {exc}")
    if slo_spec is not None and args.slo_timeline:
        from repro.obs.slo import IncidentTimeline

        timeline = IncidentTimeline.load(args.slo_timeline)
        print(f"slo timeline: {len(timeline.records)} record(s), "
              f"digest {timeline.digest()[:16]} -> "
              f"{args.slo_timeline}", file=sys.stderr)
    if args.trace_dir is not None:
        from repro.obs.trace import flush as trace_flush

        trace_flush()
        print(f"trace spans in {args.trace_dir} (roll up with "
              f"'python -m repro obs report {args.trace_dir}')",
              file=sys.stderr)
    diagnosis = None
    if args.diagnose:
        from repro.fleet import load_checkpoint as _load_ckpt
        from repro.obs.diagnose import diagnose_fleet
        from repro.obs.slo import default_slo_spec

        checkpoint = _load_ckpt(args.checkpoint)
        diagnosis = diagnose_fleet(
            checkpoint.results.values(),
            slo_spec if slo_spec is not None else default_slo_spec(),
            fleet=spec.name,
            snapshot_ref=checkpoint.snapshot_ref,
            snapshot_digest=checkpoint.snapshot_digest)
    if args.as_json:
        payload = json.loads(_fleet_json(report))
        if diagnosis is not None:
            from repro.runtime.serialization import to_jsonable

            payload["diagnosis"] = {"digest": diagnosis.digest(),
                                    "report": to_jsonable(diagnosis)}
        print(json.dumps(payload, indent=2))
    else:
        print(format_report(report))
        if diagnosis is not None:
            from repro.obs.diagnose import format_report as \
                format_diagnosis

            print()
            print(format_diagnosis(diagnosis))
    return 0


def _parse_fuzz_methods(text: str) -> tuple:
    methods = tuple(name.strip() for name in text.split(",")
                    if name.strip())
    if not methods:
        raise SystemExit("--methods names no method (expected a "
                         f"comma-separated subset of "
                         f"{','.join(TRAIN_METHODS)})")
    unknown = [m for m in methods if m not in TRAIN_METHODS]
    if unknown:
        raise SystemExit(f"unknown method(s): {', '.join(unknown)} "
                         f"(expected a subset of "
                         f"{','.join(TRAIN_METHODS)})")
    return methods


def _run_fuzz(args) -> int:
    """The ``fuzz run`` / ``fuzz shrink`` / ``fuzz sweep`` subcommands.

    ``run`` exits non-zero when the oracle reports an engine invariant
    breach (a bug, unlike SLA violations, which are findings); the CI
    smoke job leans on that.
    """
    from repro.experiments.fuzz import (
        build_method_policies,
        fuzz_sweep,
        run_fuzz,
        shrink_violation,
    )
    from repro.experiments.robustness import METHOD_LABELS
    from repro.scenarios.fuzz import generate_spec, spec_digest

    if args.fuzz_command == "shrink":
        policies = build_method_policies(
            methods=(args.method,), scale=args.scale,
            snapshot_store=args.store_dir)
        policy = policies[METHOD_LABELS[args.method]][0]
        spec = generate_spec(args.seed, args.world)
        try:
            shrunk, evals = shrink_violation(
                spec, policy, max_evals=args.max_evals)
        except ValueError as exc:
            raise SystemExit(
                f"{exc} (find violating worlds with 'python -m repro "
                f"fuzz run --seed {args.seed} --methods "
                f"{args.method}')")
        digest = spec_digest(shrunk)
        slots = (shrunk.traffic_cfg.slots_per_episode
                 if shrunk.traffic_cfg is not None else None)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(to_jsonable(shrunk), fh, indent=2)
        if args.as_json:
            print(json.dumps({
                "seed": args.seed, "world": args.world,
                "method": args.method, "evals": evals,
                "digest": digest, "slices": len(shrunk.slices),
                "events": len(shrunk.events), "slots": slots,
                "spec": to_jsonable(shrunk),
            }, indent=2))
            return 0
        print(f"== fuzz shrink seed={args.seed} world={args.world} "
              f"({args.method}) ==")
        print(f"  before  {len(spec.slices)} slice(s), "
              f"{len(spec.events)} event(s)")
        print(f"  after   {len(shrunk.slices)} slice(s), "
              f"{len(shrunk.events)} event(s), {slots} slot(s) "
              f"in {evals} evaluation(s)")
        print(f"  digest  {digest}")
        if args.out:
            print(f"  spec written to {args.out}")
        return 0

    configure_shared_cache(None if args.no_cache else args.cache_dir)
    methods = _parse_fuzz_methods(args.methods)
    if args.fuzz_command == "sweep":
        rows = fuzz_sweep(scale=args.scale, seed=args.seed,
                          count=args.count, methods=methods,
                          snapshot_store=args.store_dir,
                          batch=args.batch, out_dir=args.out)
        if args.as_json:
            print(json.dumps(to_jsonable(rows), indent=2))
        else:
            _print_result("fuzz_sweep", rows)
            if args.out:
                print(f"  artefacts written to {args.out}/")
        return 0

    result = run_fuzz(seed=args.seed, count=args.count,
                      methods=methods, batch=args.batch,
                      engine=args.engine,
                      check_parity=not args.no_parity,
                      scale=args.scale,
                      snapshot_store=args.store_dir,
                      use_cache=not args.no_cache)
    breaches = 0
    if args.as_json:
        print(json.dumps(to_jsonable(result), indent=2))
        breaches = sum(m["summary"]["breaches"]
                       for m in result["methods"].values())
        return 1 if breaches else 0
    print(f"== fuzz run seed={result['seed']} "
          f"count={result['count']} engine={result['engine']} ==")
    print(f"  corpus digest {result['corpus_digest']}")
    for label, method_result in result["methods"].items():
        summary = method_result["summary"]
        breaches += summary["breaches"]
        print(f"  {label:<12} violating worlds "
              f"{summary['violating_worlds']}/{summary['worlds']}  "
              f"violation {summary['violation_pct']}%  "
              f"usage {summary['usage_pct']}%  "
              f"breaches {summary['breaches']}")
        for row in method_result["worlds"]:
            if row["violations"]:
                print(f"    {row['scenario']} [{row['family']}] "
                      f"violates {', '.join(row['violations'])}")
            for breach in row["breaches"]:
                print(f"    {row['scenario']} BREACH "
                      f"{breach['kind']}: {breach['detail']}")
    if breaches:
        print(f"{breaches} engine invariant breach(es) -- this is a "
              "bug; shrink with 'python -m repro fuzz shrink'",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    # REPRO_TRACE_DIR turns on span tracing for any subcommand; a
    # no-op (and zero per-span cost) when the variable is unset.
    from repro.obs.trace import configure_from_env

    configure_from_env(label="cli")

    if args.command == "obs":
        return run_obs(args)

    if args.command == "list":
        print(f"{'artefact':<10} {'units':<8} description")
        for spec in ARTEFACTS.values():
            units = "fan-out" if spec.kind == "fanout" else "1 figure"
            print(f"{spec.name:<10} {units:<8} {spec.description}")
        return 0

    if args.command == "scenarios":
        if args.scenarios_command == "bench":
            return _scenarios_bench(args)
        from repro import scenarios as scenario_registry

        rows = []
        for spec in scenario_registry.all_specs():
            rows.append({
                "name": spec.name,
                "description": spec.description,
                "slices": len(spec.slices) if spec.slices else 3,
                "traffic": (type(spec.traffic).__name__
                            if spec.traffic is not None else "diurnal"),
                "events": len(spec.events),
                "seed": spec.seed,
            })
        if args.as_json:
            print(json.dumps(rows, indent=2))
            return 0
        print(f"{'scenario':<18} {'slices':<7} {'traffic':<18} "
              f"{'events':<7} description")
        for row in rows:
            print(f"{row['name']:<18} {row['slices']:<7} "
                  f"{row['traffic']:<18} {row['events']:<7} "
                  f"{row['description']}")
        print(f"{len(rows)} scenario(s) registered")
        return 0

    if args.command == "cache":
        cache = configure_shared_cache(args.cache_dir)
        if args.action == "clear":
            size = len(cache)
            cache.clear()
            print(f"cleared {size} cached result(s) from "
                  f"{args.cache_dir}")
        elif args.action == "prune":
            if args.max_size is None:
                raise SystemExit("cache prune requires --max-size")
            stats = cache.prune(parse_size(args.max_size))
            print(f"{args.cache_dir}: pruned {stats['removed']} "
                  f"entry(ies), kept {stats['kept']} "
                  f"({stats['bytes_before']} -> "
                  f"{stats['bytes_after']} bytes)")
        else:
            print(f"{args.cache_dir}: {len(cache)} cached result(s), "
                  f"{cache.disk_usage()} bytes on disk")
        return 0

    if args.command == "train":
        from repro.serve import PolicyStore, train_snapshot

        from repro import scenarios as scenario_registry

        if args.scenario not in scenario_registry.names():
            raise SystemExit(f"unknown scenario {args.scenario!r} "
                             f"(try 'python -m repro scenarios')")
        store = (PolicyStore(args.store_dir)
                 if args.save is not None else None)
        snapshot = train_snapshot(
            args.method, scenario=args.scenario, scale=args.scale,
            seed=args.seed, name=(args.save or None), store=store)
        if store is not None:
            print(f"saved snapshot {snapshot.ref} "
                  f"({snapshot.method} on {snapshot.scenario}, "
                  f"digest {snapshot.digest[:12]}) to "
                  f"{args.store_dir}")
        else:
            print(f"trained {snapshot.method} on {snapshot.scenario} "
                  "(not saved; pass --save to snapshot it)")
        return 0

    if args.command in ("serve", "loadgen"):
        return _run_serving(args,
                            report_telemetry=args.command == "serve")

    if args.command == "fleet":
        return _run_fleet(args)

    if args.command == "fuzz":
        return _run_fuzz(args)

    names = resolve_artefacts(args.artefacts)
    if args.scenario is not None:
        from repro import scenarios as scenario_registry

        if args.scenario not in scenario_registry.names():
            raise SystemExit(
                f"unknown scenario {args.scenario!r} "
                f"(try 'python -m repro scenarios')")
        # Fail before any unit executes, not mid-sweep: every selected
        # artefact must be scenario-aware.
        incompatible = [n for n in names if not supports_scenario(n)]
        if incompatible:
            raise SystemExit(
                "--scenario is not supported by: "
                f"{', '.join(incompatible)}")

    if args.list_units:
        planner = ParallelRunner(workers=1, collect_only=True,
                                 use_cache=False,
                                 seed_override=args.seed)
        for name in names:
            try:
                run_artefact(name, planner, args.scale,
                             scenario=args.scenario)
            except SystemExit:
                raise
            except Exception as exc:
                # stub results may not satisfy every generator's
                # assembly step; the units submitted so far still list
                print(f"note: {name} decomposition incomplete ({exc})",
                      file=sys.stderr)
        _print_units(planner.collected)
        return 0

    cache = configure_shared_cache(
        None if args.no_cache else args.cache_dir)
    runner = ParallelRunner(workers=parse_workers(args.workers),
                            cache=cache,
                            use_cache=not args.no_cache,
                            seed_override=args.seed)
    outputs = {}
    try:
        for name in names:
            outputs[name] = run_artefact(name, runner, args.scale,
                                         scenario=args.scenario)
    finally:
        runner.close()
    if args.as_json:
        print(json.dumps(to_jsonable(outputs), indent=2))
        # keep stdout parseable: summary goes to stderr in JSON mode
        print(f"run summary: {runner.summary.line()}",
              file=sys.stderr)
    else:
        for name, result in outputs.items():
            _print_result(name, result)
        print(f"run summary: {runner.summary.line()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
