"""``python -m repro`` -- list and run the paper's artefacts.

Subcommands
-----------
``list``
    Show every runnable artefact (tables 1-4, figures 3-19, the
    robustness matrix) and how it decomposes into experiment units.
``scenarios``
    Show every registered scenario (slice population, traffic model,
    event timeline) from :mod:`repro.scenarios`.
``run ARTEFACT [ARTEFACT ...]``
    Regenerate artefacts through the shared
    :class:`~repro.runtime.runner.ParallelRunner`: ``--workers`` fans
    units out over processes, ``--scale`` shortens the training
    schedules, and results are served from the on-disk cache
    (``--cache-dir``, default ``.repro_cache``) whenever the same
    config/seed/code version was computed before.  ``run all`` sweeps
    everything.  ``--scenario`` re-targets scenario-aware artefacts at
    a named workload, ``--seed`` overrides every method unit's seed,
    and ``--list-units`` prints the unit decomposition (with cache
    keys) instead of executing.
``cache``
    Inspect (``info``) or drop (``clear``) the on-disk result cache.

Examples
--------
::

    python -m repro list
    python -m repro scenarios
    python -m repro run table1 --workers 4 --scale 0.1
    python -m repro run robustness --scale 0.05 --workers 2
    python -m repro run table1 --scenario flash_crowd --seed 7
    python -m repro run table1 --list-units
    python -m repro run fig13 fig16 --json
    python -m repro cache clear
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.runtime.cache import configure_shared_cache
from repro.runtime.runner import ParallelRunner, default_workers
from repro.runtime.serialization import to_jsonable

DEFAULT_CACHE_DIR = ".repro_cache"
DEFAULT_SCALE = 0.1


@dataclass(frozen=True)
class Artefact:
    """One runnable paper artefact and how to regenerate it."""

    name: str
    description: str
    #: "fanout" generators take (scale, runner) and decompose into
    #: method units; "figure" artefacts run as one whole-figure unit.
    kind: str
    scaled: bool = True


ARTEFACTS: Dict[str, Artefact] = {a.name: a for a in (
    Artefact("table1", "test usage/violation of all four methods",
             "fanout"),
    Artefact("table2", "online averages of the switching variants",
             "fanout"),
    Artefact("table3", "action-modification methods", "fanout"),
    Artefact("table4", "OnSlicing on 4G LTE vs 5G NR (fixed MCS 9)",
             "fanout"),
    Artefact("fig3", "unsafe fixed-penalty DRL vs the baseline",
             "fanout"),
    Artefact("fig5", "slice rates under RDM vs vanilla", "figure",
             scaled=False),
    Artefact("fig6", "retransmission probability vs MCS offset",
             "figure", scaled=False),
    Artefact("fig9", "usage-vs-violation learning trajectories",
             "fanout"),
    Artefact("fig10", "offline imitation usage curves", "figure",
             scaled=False),
    Artefact("fig11", "per-slice online curves", "fanout"),
    Artefact("fig12", "proactive switching under a traffic anomaly",
             "figure", scaled=False),
    Artefact("fig13", "violation curves of switching variants",
             "fanout"),
    Artefact("fig14", "usage under fixed coordinating parameters",
             "figure", scaled=False),
    Artefact("fig15", "per-resource converged allocations", "figure"),
    Artefact("fig16", "ping-delay CDF, LTE vs NR", "figure",
             scaled=False),
    Artefact("fig17", "slice performance CDF, LTE vs NR", "figure",
             scaled=False),
    Artefact("fig18", "MAR user scale-up", "figure"),
    Artefact("fig19", "coordination rounds vs slice count", "figure",
             scaled=False),
    Artefact("robustness", "all four methods across the scenario "
             "stress matrix", "fanout"),
)}


def _generator(name: str) -> Callable[..., Any]:
    if name == "robustness":
        from repro.experiments.robustness import robustness

        return robustness
    from repro.experiments import figures, tables

    module = tables if name.startswith("table") else figures
    return getattr(module, name)


def supports_scenario(name: str) -> bool:
    """Whether an artefact's generator takes a ``scenario`` keyword."""
    if ARTEFACTS[name].kind != "fanout":
        return False
    return "scenario" in inspect.signature(_generator(name)).parameters


def run_artefact(name: str, runner: ParallelRunner, scale: float,
                 scenario: Optional[str] = None) -> Any:
    spec = ARTEFACTS[name]
    if scenario is not None and not supports_scenario(name):
        raise SystemExit(
            f"artefact {name!r} does not accept --scenario")
    if spec.kind == "fanout":
        kwargs: Dict[str, Any] = {"scale": scale, "runner": runner}
        if scenario is not None:
            kwargs["scenario"] = scenario
        return _generator(name)(**kwargs)
    kwargs = {"scale": scale} if spec.scaled else {}
    return runner.run_figure(name, **kwargs)


def _print_units(units: List[Any]) -> None:
    """Print a recorded unit decomposition (``run --list-units``)."""
    from repro.runtime.units import unit_cache_key

    print(f"{'method':<12} {'variant':<12} {'scenario':<18} "
          f"{'seed':<6} {'key':<14} params")
    for unit in units:
        params = " ".join(f"{k}={v}" for k, v in unit.params) or "-"
        key = unit_cache_key(unit)[:12]
        print(f"{unit.method:<12} {unit.variant:<12} "
              f"{unit.scenario:<18} {unit.seed:<6} {key:<14} {params}")
    print(f"{len(units)} unit(s)")


def _print_result(name: str, result: Any) -> None:
    print(f"== {name} ==")
    if isinstance(result, dict) and result and all(
            isinstance(v, dict) and "method" in v
            for v in result.values()):
        for row in result.values():  # a table: aligned metric rows
            cells = "  ".join(f"{k}={v}" for k, v in row.items()
                              if k != "method")
            print(f"  {row['method']:<24} {cells}")
    elif isinstance(result, dict):
        for key, value in result.items():
            text = repr(value)
            if len(text) > 60:
                text = f"{text[:57]}..."
            print(f"  {key}: {text}")
    else:
        print(f"  {result!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list runnable artefacts")

    sub.add_parser("scenarios", help="list registered scenarios")

    run = sub.add_parser("run", help="regenerate artefacts")
    run.add_argument("artefacts", nargs="+", metavar="ARTEFACT",
                     help="table1..table4, fig3..fig19, robustness, "
                          "or 'all'")
    run.add_argument("--workers", default="1",
                     help="worker processes, or 'auto' (default: 1)")
    run.add_argument("--scale", type=float, default=DEFAULT_SCALE,
                     help="schedule scale in (0, 1]; 1.0 approximates "
                          f"the paper (default: {DEFAULT_SCALE})")
    run.add_argument("--scenario", default=None, metavar="NAME",
                     help="re-target scenario-aware artefacts at a "
                          "registered scenario (see 'scenarios')")
    run.add_argument("--seed", type=int, default=None,
                     help="override the seed of every learning unit "
                          "(onslicing/onrl)")
    run.add_argument("--list-units", action="store_true",
                     dest="list_units",
                     help="print the unit decomposition (with cache "
                          "keys) instead of executing")
    run.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                     help=f"result cache (default: {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="recompute everything, bypassing the cache")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print results as JSON instead of text")

    cache = sub.add_parser("cache", help="inspect/clear the cache")
    cache.add_argument("action", choices=("info", "clear"))
    cache.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    return parser


def resolve_artefacts(names: List[str]) -> List[str]:
    if names == ["all"]:
        return list(ARTEFACTS)
    unknown = [n for n in names if n not in ARTEFACTS]
    if unknown:
        raise SystemExit(
            f"unknown artefact(s): {', '.join(unknown)} "
            f"(try 'python -m repro list')")
    return names


def parse_workers(value: str, option: str = "--workers") -> int:
    """Parse a worker-count setting; ``option`` names the flag or
    environment variable being parsed so errors blame the right knob."""
    if value == "auto":
        return default_workers()
    try:
        workers = int(value)
    except ValueError:
        raise SystemExit(f"{option} must be an integer or 'auto', "
                         f"got {value!r}")
    if workers < 1:
        raise SystemExit(f"{option} must be >= 1")
    return workers


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "list":
        print(f"{'artefact':<10} {'units':<8} description")
        for spec in ARTEFACTS.values():
            units = "fan-out" if spec.kind == "fanout" else "1 figure"
            print(f"{spec.name:<10} {units:<8} {spec.description}")
        return 0

    if args.command == "scenarios":
        from repro import scenarios as scenario_registry

        print(f"{'scenario':<18} {'slices':<7} {'traffic':<18} "
              f"{'events':<7} description")
        for spec in scenario_registry.all_specs():
            slices = len(spec.slices) if spec.slices else 3
            traffic = (type(spec.traffic).__name__
                       if spec.traffic is not None else "diurnal")
            print(f"{spec.name:<18} {slices:<7} {traffic:<18} "
                  f"{len(spec.events):<7} {spec.description}")
        print(f"{len(scenario_registry.names())} scenario(s) "
              "registered")
        return 0

    if args.command == "cache":
        cache = configure_shared_cache(args.cache_dir)
        if args.action == "clear":
            size = len(cache)
            cache.clear()
            print(f"cleared {size} cached result(s) from "
                  f"{args.cache_dir}")
        else:
            print(f"{args.cache_dir}: {len(cache)} cached result(s)")
        return 0

    names = resolve_artefacts(args.artefacts)
    if args.scenario is not None:
        from repro import scenarios as scenario_registry

        if args.scenario not in scenario_registry.names():
            raise SystemExit(
                f"unknown scenario {args.scenario!r} "
                f"(try 'python -m repro scenarios')")
        # Fail before any unit executes, not mid-sweep: every selected
        # artefact must be scenario-aware.
        incompatible = [n for n in names if not supports_scenario(n)]
        if incompatible:
            raise SystemExit(
                "--scenario is not supported by: "
                f"{', '.join(incompatible)}")

    if args.list_units:
        planner = ParallelRunner(workers=1, collect_only=True,
                                 use_cache=False,
                                 seed_override=args.seed)
        for name in names:
            try:
                run_artefact(name, planner, args.scale,
                             scenario=args.scenario)
            except SystemExit:
                raise
            except Exception as exc:
                # stub results may not satisfy every generator's
                # assembly step; the units submitted so far still list
                print(f"note: {name} decomposition incomplete ({exc})",
                      file=sys.stderr)
        _print_units(planner.collected)
        return 0

    cache = configure_shared_cache(
        None if args.no_cache else args.cache_dir)
    runner = ParallelRunner(workers=parse_workers(args.workers),
                            cache=cache,
                            use_cache=not args.no_cache,
                            seed_override=args.seed)
    outputs = {}
    try:
        for name in names:
            outputs[name] = run_artefact(name, runner, args.scale,
                                         scenario=args.scenario)
    finally:
        runner.close()
    if args.as_json:
        print(json.dumps(to_jsonable(outputs), indent=2))
        # keep stdout parseable: summary goes to stderr in JSON mode
        print(f"run summary: {runner.summary.line()}",
              file=sys.stderr)
    else:
        for name, result in outputs.items():
            _print_result(name, result)
        print(f"run summary: {runner.summary.line()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
