"""Declarative scenario descriptions.

A :class:`ScenarioSpec` is everything that turns the fixed paper
testbed into a *workload*: which slices populate the cell (spec
templates, scalable to N > 3), which traffic model drives them, which
network events fire mid-episode, and any infrastructure overrides.
Specs are frozen dataclasses -- hashable, comparable, and losslessly
serialisable through the runtime's tagged-JSON scheme (no pickle) --
and every stochastic element is realised from the experiment seed at
build time, never at declaration time.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import (
    ExperimentConfig,
    NetworkConfig,
    SliceSpec,
    TrafficConfig,
    slice_spec_for_app,
)
from repro.scenarios.events import NetworkEvent
from repro.scenarios.traffic_models import TrafficModel


@dataclass(frozen=True)
class SliceTemplate:
    """One slice of a scenario population, by app template.

    ``name`` defaults to ``{APP}{index}`` when the population is built,
    so ``(mar, hvs, rdc) * 2`` instantiates MAR1/HVS2/RDC3/MAR4/... .
    ``arrival_scale`` derates the template's peak arrival rate, keeping
    large populations within the fixed infrastructure's envelope.
    """

    app: str
    name: Optional[str] = None
    arrival_scale: float = 1.0

    def build(self, index: int) -> SliceSpec:
        name = self.name or f"{self.app.upper()}{index + 1}"
        return slice_spec_for_app(self.app, name=name,
                                  arrival_scale=self.arrival_scale)


def population(count: int, arrival_scale: Optional[float] = None
               ) -> Tuple[SliceTemplate, ...]:
    """A ``count``-slice population cycling mar/hvs/rdc templates.

    Without an explicit ``arrival_scale`` the per-slice load is
    derated by ``3 / count`` so the aggregate offered load stays near
    the paper's three-slice setup regardless of N.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    scale = arrival_scale if arrival_scale is not None \
        else min(3.0 / count, 1.0)
    apps = ("mar", "hvs", "rdc")
    return tuple(SliceTemplate(app=apps[i % 3], arrival_scale=scale)
                 for i in range(count))


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, declarative workload over the simulated testbed."""

    name: str
    description: str = ""
    #: Slice population; empty means the paper's MAR/HVS/RDC trio.
    slices: Tuple[SliceTemplate, ...] = ()
    #: Traffic model; ``None`` keeps the simulator's built-in diurnal
    #: synthesizer path (bit-for-bit the paper's traces).
    traffic: Optional[TrafficModel] = None
    #: Mid-episode network events, positioned by horizon fractions.
    events: Tuple[NetworkEvent, ...] = ()
    #: Infrastructure override (e.g. fixed-MCS RAN variants).
    network: Optional[NetworkConfig] = None
    #: Trace cadence/horizon override (e.g. short test episodes).
    traffic_cfg: Optional[TrafficConfig] = None
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")

    def build_config(self, seed: Optional[int] = None
                     ) -> ExperimentConfig:
        """Materialise the spec into a concrete experiment config."""
        kwargs = {"seed": self.seed if seed is None else seed}
        if self.network is not None:
            kwargs["network"] = self.network
        if self.traffic_cfg is not None:
            kwargs["traffic"] = self.traffic_cfg
        if self.slices:
            specs = tuple(t.build(i) for i, t in enumerate(self.slices))
            names = [s.name for s in specs]
            if len(set(names)) != len(names):
                raise ValueError(
                    f"duplicate slice names in population: {names}")
            kwargs["slices"] = specs
        return ExperimentConfig(**kwargs)

    def event_timeline(self, horizon: Optional[int] = None
                       ) -> Tuple[Dict, ...]:
        """The resolved event schedule as plain JSON-safe rows.

        Each row carries the event ``kind``, its concrete
        ``start_slot`` / ``end_slot`` under ``horizon`` (defaulting to
        the spec's own episode length), the fractional placement it
        was resolved from, and the event's remaining parameters under
        ``params``.  This is the shard-checkpoint / diagnosis view of
        "what was injected when" -- slot rounding goes through
        :func:`~repro.scenarios.events.slot_window` via the event
        methods, so it matches what the simulator executes exactly.
        """
        if horizon is None:
            traffic = self.traffic_cfg if self.traffic_cfg is not None \
                else TrafficConfig()
            horizon = traffic.slots_per_episode
        rows = []
        for event in self.events:
            params = {
                name: getattr(event, name)
                for name in sorted(
                    f.name for f in dataclasses.fields(event))
                if name not in ("at_fraction", "duration_fraction")
            }
            rows.append({
                "kind": event.kind,
                "start_slot": event.start_slot(horizon),
                "end_slot": event.end_slot(horizon),
                "at_fraction": event.at_fraction,
                "duration_fraction": event.duration_fraction,
                "params": params,
            })
        rows.sort(key=lambda row: (row["start_slot"], row["end_slot"],
                                   row["kind"]))
        return tuple(rows)

    def build_simulator(self, cfg: Optional[ExperimentConfig] = None,
                        rng=None):
        """A :class:`~repro.sim.env.ScenarioSimulator` driving this
        scenario's traffic model and event timeline.

        ``cfg`` overrides the spec-derived config (callers that already
        resolved one -- e.g. experiment units -- pass it back in so the
        two stay consistent).
        """
        from repro.sim.env import ScenarioSimulator

        cfg = cfg if cfg is not None else self.build_config()
        return ScenarioSimulator(cfg, rng=rng, traffic_model=self.traffic,
                                 events=self.events)


def first_episode_trace_digest(spec: ScenarioSpec,
                               seed: Optional[int] = None) -> str:
    """SHA-256 over the first episode's per-slice traffic envelopes.

    The digest pins what a scenario's workload *is*: any refactor of
    the traffic models, the synthesizer, or RNG plumbing that changes
    the traces a seed produces changes this digest.  The golden-digest
    regression test asserts it for every catalog scenario, so silent
    workload drift fails loudly instead of quietly skewing results.
    """
    cfg = spec.build_config(seed=seed)
    simulator = spec.build_simulator(
        cfg, rng=np.random.default_rng(cfg.seed))
    simulator.reset()
    digest = hashlib.sha256()
    for name, trace in sorted(simulator.traces().items()):
        digest.update(name.encode("utf-8"))
        digest.update(np.ascontiguousarray(
            trace, dtype=np.float64).tobytes())
    return digest.hexdigest()
