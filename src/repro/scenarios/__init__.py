"""Scenario engine: declarative workloads over the simulated testbed.

The paper evaluates OnSlicing on exactly one world -- three slices,
one diurnal trace, a static network.  This package turns that world
into a parameter:

* :mod:`repro.scenarios.spec` -- :class:`ScenarioSpec`, a frozen
  declarative description (slice population, traffic model, event
  timeline, network overrides) with ``build_config`` /
  ``build_simulator`` materialisers;
* :mod:`repro.scenarios.traffic_models` -- compositional envelope
  generators (diurnal, flash crowd, MMPP on/off, mix drift, file
  replay);
* :mod:`repro.scenarios.events` -- mid-episode network events (link
  degradation, latency surge, background load, slice churn) executed
  through hooks in :class:`~repro.sim.env.ScenarioSimulator`;
* :mod:`repro.scenarios.registry` -- :class:`ScenarioRegistry` and the
  default instance experiment units resolve through;
* :mod:`repro.scenarios.catalog` -- the built-in scenarios
  (``python -m repro scenarios`` lists them);
* :mod:`repro.scenarios.fuzz` -- seeded random composition of specs
  from the pieces above (``python -m repro fuzz`` drives it).

Everything here sits *below* the methods/experiments layers: it
imports only ``repro.config`` and ``repro.sim``.
"""

from repro.scenarios.events import (
    EVENT_TYPES,
    BackgroundLoadStep,
    LatencySurge,
    LinkDegradation,
    NetworkEvent,
    SliceArrival,
    SliceDeparture,
)
from repro.scenarios.fuzz import (
    FuzzSpace,
    corpus_digest,
    generate_corpus,
    generate_spec,
    scenario_family,
    spec_digest,
)
from repro.scenarios.registry import (
    DEFAULT_REGISTRY,
    ScenarioRegistry,
    all_specs,
    get,
    names,
    register,
    unregister,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    SliceTemplate,
    first_episode_trace_digest,
    population,
)
from repro.scenarios.traffic_models import (
    ENVELOPE_MAX,
    TRAFFIC_MODEL_TYPES,
    ConstantTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    MixDriftTraffic,
    OnOffTraffic,
    ScaledTraffic,
    TraceReplayTraffic,
    TrafficModel,
)

# Register the built-in catalog on import (idempotent per process).
from repro.scenarios import catalog as _catalog
from repro.scenarios.catalog import ROBUSTNESS_MATRIX

__all__ = [
    "DEFAULT_REGISTRY",
    "ENVELOPE_MAX",
    "EVENT_TYPES",
    "ROBUSTNESS_MATRIX",
    "TRAFFIC_MODEL_TYPES",
    "BackgroundLoadStep",
    "ConstantTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "FuzzSpace",
    "LatencySurge",
    "LinkDegradation",
    "MixDriftTraffic",
    "NetworkEvent",
    "OnOffTraffic",
    "ScaledTraffic",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SliceArrival",
    "SliceDeparture",
    "SliceTemplate",
    "TraceReplayTraffic",
    "TrafficModel",
    "all_specs",
    "corpus_digest",
    "first_episode_trace_digest",
    "generate_corpus",
    "generate_spec",
    "get",
    "names",
    "population",
    "register",
    "scenario_family",
    "spec_digest",
    "unregister",
]
