"""Scenario engine: declarative workloads over the simulated testbed.

The paper evaluates OnSlicing on exactly one world -- three slices,
one diurnal trace, a static network.  This package turns that world
into a parameter:

* :mod:`repro.scenarios.spec` -- :class:`ScenarioSpec`, a frozen
  declarative description (slice population, traffic model, event
  timeline, network overrides) with ``build_config`` /
  ``build_simulator`` materialisers;
* :mod:`repro.scenarios.traffic_models` -- compositional envelope
  generators (diurnal, flash crowd, MMPP on/off, mix drift, file
  replay);
* :mod:`repro.scenarios.events` -- mid-episode network events (link
  degradation, latency surge, background load, slice churn) executed
  through hooks in :class:`~repro.sim.env.ScenarioSimulator`;
* :mod:`repro.scenarios.registry` -- the global name -> spec registry
  experiment units resolve through;
* :mod:`repro.scenarios.catalog` -- the built-in scenarios
  (``python -m repro scenarios`` lists them).

Everything here sits *below* the methods/experiments layers: it
imports only ``repro.config`` and ``repro.sim``.
"""

from repro.scenarios.events import (
    EVENT_TYPES,
    BackgroundLoadStep,
    LatencySurge,
    LinkDegradation,
    NetworkEvent,
    SliceArrival,
    SliceDeparture,
)
from repro.scenarios.registry import (
    all_specs,
    get,
    names,
    register,
    unregister,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    SliceTemplate,
    first_episode_trace_digest,
    population,
)
from repro.scenarios.traffic_models import (
    ENVELOPE_MAX,
    TRAFFIC_MODEL_TYPES,
    ConstantTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    MixDriftTraffic,
    OnOffTraffic,
    ScaledTraffic,
    TraceReplayTraffic,
    TrafficModel,
)

# Register the built-in catalog on import (idempotent per process).
from repro.scenarios import catalog as _catalog
from repro.scenarios.catalog import ROBUSTNESS_MATRIX

__all__ = [
    "ENVELOPE_MAX",
    "EVENT_TYPES",
    "ROBUSTNESS_MATRIX",
    "TRAFFIC_MODEL_TYPES",
    "BackgroundLoadStep",
    "ConstantTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "LatencySurge",
    "LinkDegradation",
    "MixDriftTraffic",
    "NetworkEvent",
    "OnOffTraffic",
    "ScaledTraffic",
    "ScenarioSpec",
    "SliceArrival",
    "SliceDeparture",
    "SliceTemplate",
    "TraceReplayTraffic",
    "TrafficModel",
    "all_specs",
    "first_episode_trace_digest",
    "get",
    "names",
    "population",
    "register",
    "unregister",
]
