"""Seeded scenario fuzzing: random worlds from the compositional pieces.

The catalog holds eleven hand-written scenarios; this module generates
*thousands* by randomly composing the same pieces -- slice populations,
traffic models, :class:`~repro.scenarios.events.NetworkEvent`
timelines, horizon overrides, fixed-MCS network variants -- inside the
bounds of :class:`FuzzSpace`.  Every generated world is a plain
:class:`~repro.scenarios.spec.ScenarioSpec`: it runs through the same
engines, serialises through the same tagged-JSON scheme, and (once
shrunk) graduates into the same pinned catalog as a hand-written one.

Determinism contract
--------------------
World ``i`` of fuzz seed ``S`` is drawn from its *own* RNG stream,
``default_rng(SeedSequence((S, i)))``, so the corpus is prefix-stable:
``generate_corpus(S, 8)`` is exactly the first eight specs of
``generate_corpus(S, 100)``, independent of batch size, process, or
platform.  :func:`corpus_digest` pins that property in the
golden-digest suite.  All drawn floats are rounded to four decimals so
shrunk repros stay readable when committed as code.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.config import TrafficConfig
from repro.scenarios.events import (
    BackgroundLoadStep,
    LatencySurge,
    LinkDegradation,
    NetworkEvent,
    SliceArrival,
)
from repro.scenarios.spec import ScenarioSpec, population
from repro.scenarios.traffic_models import (
    ConstantTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    MixDriftTraffic,
    OnOffTraffic,
    ScaledTraffic,
    TrafficModel,
)

#: Apps a fuzzed churn slice may instantiate.
_CHURN_APPS = ("mar", "hvs", "rdc")

#: Traffic model family names drawn by the generator ("diurnal" means
#: ``traffic=None``, the simulator's built-in synthesizer path).
_TRAFFIC_FAMILIES = ("diurnal", "constant", "scaled", "flash_crowd",
                     "on_off", "mix_drift")


@dataclass(frozen=True)
class FuzzSpace:
    """Bounds of the fuzzed scenario space.

    The defaults stay inside ranges every compositional piece validates
    (see the ``__post_init__`` checks of the traffic models and
    events), so a generated spec always *builds*; whether it also meets
    its SLA is exactly what the fuzz oracle decides.
    ``load_factor_max > 1`` deliberately allows over-provisioned
    populations -- the interesting failures live there.
    """

    min_slices: int = 1
    max_slices: int = 9
    min_slots: int = 8
    max_slots: int = 32
    max_events: int = 4
    #: Per-slice arrival derate multiplier range, applied on top of the
    #: aggregate-preserving ``3 / count`` derate of :func:`population`.
    load_factor_min: float = 0.5
    load_factor_max: float = 1.6
    #: Probability that a generated world keeps the diurnal default
    #: instead of drawing another traffic family.
    p_diurnal: float = 0.25

    def __post_init__(self) -> None:
        if not 1 <= self.min_slices <= self.max_slices:
            raise ValueError("need 1 <= min_slices <= max_slices")
        if not 2 <= self.min_slots <= self.max_slots:
            raise ValueError("need 2 <= min_slots <= max_slots")
        if self.max_events < 0:
            raise ValueError("max_events must be >= 0")
        if not 0.0 < self.load_factor_min <= self.load_factor_max:
            raise ValueError("need 0 < load_factor_min <= "
                             "load_factor_max")
        if not 0.0 <= self.p_diurnal <= 1.0:
            raise ValueError("p_diurnal must be in [0, 1]")


def _round(value: float) -> float:
    """Four-decimal rounding: committed repros stay readable."""
    return round(float(value), 4)


def _draw_traffic(rng: np.random.Generator,
                  space: FuzzSpace) -> Optional[TrafficModel]:
    """One traffic model (or ``None`` for the diurnal default)."""
    if rng.uniform() < space.p_diurnal:
        return None
    family = _TRAFFIC_FAMILIES[1:][int(
        rng.integers(len(_TRAFFIC_FAMILIES) - 1))]
    if family == "constant":
        return ConstantTraffic(level=_round(rng.uniform(0.2, 1.0)))
    if family == "scaled":
        return ScaledTraffic(base=DiurnalTraffic(),
                             scale=_round(rng.uniform(0.5, 1.8)))
    if family == "flash_crowd":
        return FlashCrowdTraffic(
            base=DiurnalTraffic(),
            at_fraction=_round(rng.uniform(0.1, 0.8)),
            duration_fraction=_round(rng.uniform(0.05, 0.4)),
            magnitude=_round(rng.uniform(1.5, 4.0)))
    if family == "on_off":
        return OnOffTraffic(
            on_level=_round(rng.uniform(0.6, 1.0)),
            off_level=_round(rng.uniform(0.0, 0.3)),
            mean_on_slots=_round(rng.uniform(2.0, 12.0)),
            mean_off_slots=_round(rng.uniform(2.0, 12.0)))
    return MixDriftTraffic(base=DiurnalTraffic(),
                           drift=_round(rng.uniform(0.2, 1.2)))


def _draw_events(rng: np.random.Generator, space: FuzzSpace
                 ) -> Tuple[NetworkEvent, ...]:
    """A timeline of 0..max_events composable events.

    Churn arrivals get unique ``FZ<k>`` names, disjoint from the
    ``{APP}{index}`` population naming, so a generated spec never
    trips the simulator's arrival-collision guard.  Departures are
    implicit (an arrival expires at its window's end), matching how
    the shrinker wants timelines to stay independently droppable.
    """
    count = int(rng.integers(0, space.max_events + 1))
    events: List[NetworkEvent] = []
    for index in range(count):
        at = _round(rng.uniform(0.0, 1.0))
        duration = _round(rng.uniform(0.05, 0.6))
        kind = int(rng.integers(4))
        if kind == 0:
            events.append(LinkDegradation(
                at_fraction=at, duration_fraction=duration,
                capacity_scale=_round(rng.uniform(0.2, 0.9))))
        elif kind == 1:
            events.append(LatencySurge(
                at_fraction=at, duration_fraction=duration,
                extra_latency_ms=_round(rng.uniform(5.0, 60.0))))
        elif kind == 2:
            events.append(BackgroundLoadStep(
                at_fraction=at, duration_fraction=duration,
                load_fraction=_round(rng.uniform(0.1, 0.7))))
        else:
            events.append(SliceArrival(
                at_fraction=at, duration_fraction=duration,
                app=_CHURN_APPS[int(rng.integers(len(_CHURN_APPS)))],
                slice_name=f"FZ{index + 1}",
                arrival_scale=_round(rng.uniform(0.2, 0.8)),
                action_level=_round(rng.uniform(0.1, 0.4))))
    return tuple(events)


def generate_spec(seed: int, index: int,
                  space: Optional[FuzzSpace] = None) -> ScenarioSpec:
    """World ``index`` of fuzz seed ``seed`` (deterministic).

    The spec's own ``seed`` field is drawn from the same stream, so
    traffic realisation varies across worlds even when two worlds draw
    the same structure.
    """
    space = space if space is not None else FuzzSpace()
    rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
    slots = int(rng.integers(space.min_slots, space.max_slots + 1))
    count = int(rng.integers(space.min_slices, space.max_slices + 1))
    load = rng.uniform(space.load_factor_min, space.load_factor_max)
    scale = _round(min(load * min(3.0 / count, 1.0), 1.0))
    traffic = _draw_traffic(rng, space)
    events = _draw_events(rng, space)
    return ScenarioSpec(
        name=f"fuzz-s{seed}-w{index}",
        description=f"fuzzed world {index} of seed {seed}",
        slices=population(count, arrival_scale=scale),
        traffic=traffic,
        events=events,
        traffic_cfg=TrafficConfig(slots_per_episode=slots),
        seed=int(rng.integers(0, 2 ** 31 - 1)))


def generate_corpus(seed: int, count: int,
                    space: Optional[FuzzSpace] = None
                    ) -> Tuple[ScenarioSpec, ...]:
    """The first ``count`` worlds of fuzz seed ``seed`` (prefix-stable)."""
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(generate_spec(seed, index, space)
                 for index in range(count))


def spec_digest(spec: ScenarioSpec) -> str:
    """SHA-256 of a spec's canonical tagged-JSON form.

    This is the *identity* digest (what the spec is), complementing
    :func:`~repro.scenarios.spec.first_episode_trace_digest` (what
    workload it realises); the shrinker's determinism gate in CI pins
    the shrunk spec's identity with it.
    """
    # Lazy: repro.runtime.serialization imports this package.
    from repro.runtime.serialization import to_jsonable

    canonical = json.dumps(to_jsonable(spec), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def corpus_digest(specs) -> str:
    """SHA-256 over the spec digests of a generated corpus, in order."""
    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec_digest(spec).encode("ascii"))
    return digest.hexdigest()


def scenario_family(spec: ScenarioSpec) -> str:
    """Coarse family label ``<traffic>/<events>`` for sweep heatmaps.

    Traffic is the model class name (``diurnal`` for the built-in
    path); the event profile distinguishes fault-only timelines,
    churn-only timelines, and mixtures.
    """
    traffic = ("diurnal" if spec.traffic is None
               else type(spec.traffic).__name__)
    kinds = {getattr(event, "kind", "?") for event in spec.events}
    churn = {"slice_arrival", "slice_departure"}
    if not kinds:
        profile = "none"
    elif kinds <= churn:
        profile = "churn"
    elif kinds & churn:
        profile = "mixed"
    else:
        profile = "faults"
    return f"{traffic}/{profile}"
