"""Compositional traffic generators for scenario definitions.

A traffic model produces the per-slot *envelope* of one slice -- the
normalised arrival rate in ``[0, ENVELOPE_MAX]`` that the simulator
scales by the slice's ``max_arrival_rate`` and realises through the
Poisson arrival process.  Models are frozen dataclasses (so scenario
specs stay hashable and tagged-JSON serialisable) and draw every
random number from the Generator handed in by the caller, which the
simulator derives from the experiment seed: the determinism contract
of the repo holds for every scenario.

Models compose: :class:`FlashCrowdTraffic` and :class:`MixDriftTraffic`
wrap any base model, and :class:`ScaledTraffic` rescales one -- so
"a diurnal day with a flash crowd on the MAR slice whose mix drifts
toward video" is a plain expression over these classes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.config import TrafficConfig
from repro.scenarios.events import slot_window
from repro.sim.traffic import MAX_ENVELOPE as ENVELOPE_MAX
from repro.sim.traffic import TelecomItaliaSynthesizer


class TrafficModel:
    """Interface: per-slice envelope generation.

    ``envelope(slice_index, num_slots, day_index, cfg, rng)`` returns a
    float array of shape ``(num_slots,)``.  ``day_index`` counts reset
    episodes so consecutive episodes see consecutive days; ``rng`` is
    shared across the slices of one episode, so a model must draw a
    deterministic amount of randomness per call.
    """

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def _clip(self, trace: np.ndarray) -> np.ndarray:
        return np.clip(trace, 0.0, ENVELOPE_MAX)


@dataclass(frozen=True)
class DiurnalTraffic(TrafficModel):
    """The paper's Telecom-Italia-style diurnal day (the default)."""

    start_day_of_week: int = 0

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        synth = TelecomItaliaSynthesizer(cfg, rng=rng)
        day = (self.start_day_of_week + day_index) % 7
        return synth.generate(num_slots, day_of_week=day)


@dataclass(frozen=True)
class ConstantTraffic(TrafficModel):
    """A flat envelope -- useful as a base for event-driven scenarios."""

    level: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.level <= ENVELOPE_MAX:
            raise ValueError(f"level must be in [0, {ENVELOPE_MAX}]")

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        return np.full(num_slots, self.level)


@dataclass(frozen=True)
class ScaledTraffic(TrafficModel):
    """Multiply a base model's envelope by a constant factor."""

    base: TrafficModel = field(default_factory=DiurnalTraffic)
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        base = self.base.envelope(slice_index, num_slots, day_index,
                                  cfg, rng)
        return self._clip(base * self.scale)


@dataclass(frozen=True)
class FlashCrowdTraffic(TrafficModel):
    """A sudden crowd: the base envelope is multiplied by ``magnitude``
    inside a window of the episode (e.g. a stadium event).

    ``slice_indices`` limits the spike to some slices (``None`` = all);
    the window is positioned by fractions of the horizon like events.
    """

    base: TrafficModel = field(default_factory=DiurnalTraffic)
    at_fraction: float = 0.45
    duration_fraction: float = 0.15
    magnitude: float = 3.0
    slice_indices: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be in [0, 1]")
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError("duration_fraction must be in (0, 1]")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        trace = np.array(self.base.envelope(
            slice_index, num_slots, day_index, cfg, rng))
        if (self.slice_indices is not None
                and slice_index not in self.slice_indices):
            return self._clip(trace)
        start, stop = slot_window(self.at_fraction,
                                  self.duration_fraction, num_slots)
        trace[start:stop] *= self.magnitude
        return self._clip(trace)


@dataclass(frozen=True)
class OnOffTraffic(TrafficModel):
    """Bursty on/off envelope: a two-state Markov-modulated process.

    Sojourn times in each state are geometric with the given means (in
    slots) -- the slot-resolution analogue of an MMPP source.  Light
    log-normal jitter keeps the plateaus from being perfectly flat.
    """

    on_level: float = 1.0
    off_level: float = 0.1
    mean_on_slots: float = 8.0
    mean_off_slots: float = 12.0
    jitter_sigma: float = 0.08

    def __post_init__(self) -> None:
        if not 0.0 <= self.off_level <= self.on_level <= ENVELOPE_MAX:
            raise ValueError(
                "levels must satisfy 0 <= off <= on <= "
                f"{ENVELOPE_MAX}")
        if self.mean_on_slots < 1.0 or self.mean_off_slots < 1.0:
            raise ValueError("mean sojourn times must be >= 1 slot")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be >= 0")

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        p_leave_on = 1.0 / self.mean_on_slots
        p_leave_off = 1.0 / self.mean_off_slots
        # One uniform per slot keeps the rng budget fixed regardless of
        # the realised state sequence.
        flips = rng.uniform(size=num_slots)
        jitter = rng.lognormal(
            mean=-0.5 * self.jitter_sigma ** 2,
            sigma=self.jitter_sigma, size=num_slots) \
            if self.jitter_sigma > 0 else np.ones(num_slots)
        on = bool(flips[0] < 0.5)
        trace = np.empty(num_slots)
        for t in range(num_slots):
            trace[t] = self.on_level if on else self.off_level
            if flips[t] < (p_leave_on if on else p_leave_off):
                on = not on
        return self._clip(trace * jitter)


@dataclass(frozen=True)
class MixDriftTraffic(TrafficModel):
    """Traffic-mix drift: slice envelopes ramp in opposite directions
    over the episode, shifting which application dominates.

    Even slice indices ramp from 1 to ``1 + drift``; odd indices ramp
    from 1 to ``max(1 - drift, floor)``.  A drift of 0.8 roughly swaps
    the dominant slice by the end of the day.
    """

    base: TrafficModel = field(default_factory=DiurnalTraffic)
    drift: float = 0.8
    floor: float = 0.1

    def __post_init__(self) -> None:
        if self.drift < 0:
            raise ValueError("drift must be >= 0")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError("floor must be in [0, 1]")

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        trace = np.array(self.base.envelope(
            slice_index, num_slots, day_index, cfg, rng))
        progress = (np.arange(num_slots) / max(num_slots - 1, 1))
        if slice_index % 2 == 0:
            ramp = 1.0 + self.drift * progress
        else:
            ramp = np.maximum(1.0 - self.drift * progress, self.floor)
        return self._clip(trace * ramp)


#: Parsed replay traces, keyed by (path, column, mtime, size).
_REPLAY_CACHE: dict = {}


@dataclass(frozen=True)
class TraceReplayTraffic(TrafficModel):
    """Replay a measured trace from a file (``.npy``, ``.csv``, or
    ``.json`` holding a numeric array / list of rows).

    The trace is resampled to the episode length with linear
    interpolation and, when ``normalize`` is set, rescaled so its peak
    is 1.0.  ``column`` selects a column of 2-D inputs (e.g. one base
    station of a Telecom-Italia export); slices replay the same
    envelope -- wrap in :class:`ScaledTraffic` / compose per-slice
    scenarios for heterogeneous replays.
    """

    path: str = ""
    column: int = 0
    normalize: bool = True

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("path must name a trace file")

    def _load(self) -> np.ndarray:
        if not os.path.exists(self.path):
            raise FileNotFoundError(
                f"trace file not found: {self.path!r}")
        # One read per file version: envelope() runs once per slice per
        # episode, far too often to re-parse an immutable trace.
        stat = os.stat(self.path)
        key = (os.path.abspath(self.path), self.column,
               stat.st_mtime_ns, stat.st_size)
        cached = _REPLAY_CACHE.get(key)
        if cached is not None:
            return cached
        ext = os.path.splitext(self.path)[1].lower()
        if ext == ".npy":
            data = np.load(self.path, allow_pickle=False)
        elif ext == ".csv":
            data = np.loadtxt(self.path, delimiter=",", ndmin=1)
        elif ext == ".json":
            with open(self.path, "r", encoding="utf-8") as fh:
                data = np.asarray(json.load(fh), dtype=float)
        else:
            raise ValueError(
                f"unsupported trace format {ext!r} "
                "(expected .npy, .csv, or .json)")
        data = np.asarray(data, dtype=float)
        if data.ndim == 2:
            data = data[:, self.column]
        if data.ndim != 1 or data.size < 2:
            raise ValueError(
                "trace must be a 1-D series with >= 2 points")
        data.setflags(write=False)  # shared across instances
        _REPLAY_CACHE[key] = data
        return data

    def envelope(self, slice_index: int, num_slots: int,
                 day_index: int, cfg: TrafficConfig,
                 rng: np.random.Generator) -> np.ndarray:
        data = self._load()
        if self.normalize:
            peak = float(np.max(np.abs(data)))
            if peak > 0:
                data = data / peak
        src = np.linspace(0.0, 1.0, data.size)
        dst = np.linspace(0.0, 1.0, num_slots)
        return self._clip(np.interp(dst, src, data))


TRAFFIC_MODEL_TYPES = (DiurnalTraffic, ConstantTraffic, ScaledTraffic,
                       FlashCrowdTraffic, OnOffTraffic,
                       MixDriftTraffic, TraceReplayTraffic)
