"""Scenario registry: name -> :class:`ScenarioSpec` lookup.

:class:`ScenarioRegistry` is the container; the module-level functions
(``register`` / ``get`` / ``names`` / ...) delegate to one process-wide
default instance, which the catalog populates at import time and
experiment units resolve through.  Duplicate names are rejected loudly
-- silently overwriting a registered scenario would let two call sites
disagree about what a name means -- unless ``replace=True`` is passed
explicitly.

Experiment units carry the resolved spec (so user-registered scenarios
survive pickling into spawn-context workers) plus the name for
display, and the unit cache key hashes the spec's tagged-JSON form:
units built after editing a registered scenario never collide with
results cached under the old definition, even within one code version.

Tools that need an isolated namespace (the fuzzer's shrink loop, tests)
instantiate their own :class:`ScenarioRegistry` instead of mutating the
default one.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.scenarios.spec import ScenarioSpec


class ScenarioRegistry:
    """A mutable name -> spec mapping with duplicate protection."""

    def __init__(self) -> None:
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec,
                 replace: bool = False) -> ScenarioSpec:
        """Add a scenario (returns it for chaining).

        Raises :class:`ValueError` when ``spec.name`` is already
        registered and ``replace`` is not set -- never silently
        overwrites.
        """
        if not replace and spec.name in self._specs:
            raise ValueError(
                f"scenario {spec.name!r} is already registered; "
                "pass replace=True to override")
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> None:
        """Remove a scenario (mainly for tests); missing names no-op."""
        self._specs.pop(name, None)

    def get(self, name: str) -> ScenarioSpec:
        """Look a scenario up by name."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: "
                f"{', '.join(self.names())}") from None

    def names(self) -> Tuple[str, ...]:
        """Registered scenario names, in registration order."""
        return tuple(self._specs)

    def all_specs(self) -> Tuple[ScenarioSpec, ...]:
        return tuple(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)


#: The process-wide registry the catalog and experiment units share.
DEFAULT_REGISTRY = ScenarioRegistry()


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the default registry (returns it)."""
    return DEFAULT_REGISTRY.register(spec, replace=replace)


def unregister(name: str) -> None:
    """Remove a scenario from the default registry (mainly for tests)."""
    DEFAULT_REGISTRY.unregister(name)


def get(name: str) -> ScenarioSpec:
    """Look a scenario up in the default registry."""
    return DEFAULT_REGISTRY.get(name)


def names() -> Tuple[str, ...]:
    """Default-registry scenario names, in registration order."""
    return DEFAULT_REGISTRY.names()


def all_specs() -> Tuple[ScenarioSpec, ...]:
    return DEFAULT_REGISTRY.all_specs()
