"""Global scenario registry: ``register`` / ``get`` / ``names``.

The registry maps scenario names to :class:`ScenarioSpec` objects.
Experiment units carry the resolved spec (so user-registered scenarios
survive pickling into spawn-context workers) plus the name for
display, and the unit cache key hashes the spec's tagged-JSON form:
units built after editing a registered scenario never collide with
results cached under the old definition, even within one code version.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.scenarios.spec import ScenarioSpec

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (returns it for chaining)."""
    if not replace and spec.name in _REGISTRY:
        raise ValueError(
            f"scenario {spec.name!r} is already registered; "
            "pass replace=True to override")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a scenario (mainly for tests)."""
    _REGISTRY.pop(name, None)


def get(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: "
            f"{', '.join(names())}") from None


def names() -> Tuple[str, ...]:
    """Registered scenario names, in registration order."""
    return tuple(_REGISTRY)


def all_specs() -> Tuple[ScenarioSpec, ...]:
    return tuple(_REGISTRY.values())
