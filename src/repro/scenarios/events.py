"""Mid-episode network events (fault / churn injection).

An event is a frozen dataclass positioned on the episode timeline by
*fractions* of the horizon, so the same scenario stresses a 96-slot
day and a 12-slot test episode at the same relative moment.  Each
class carries a ``kind`` tag; :class:`~repro.sim.env.ScenarioSimulator`
dispatches on the tag (the sim layer never imports this module, which
keeps the dependency graph acyclic) and executes the effect through
the event hooks on :class:`~repro.sim.network.EndToEndNetwork` /
:class:`~repro.sim.transport.TransportFabric`.

Timeline semantics: an event *activates* at the step whose index equals
``start_slot(horizon)`` and *deactivates* at ``end_slot(horizon)``;
effects of simultaneously active events compose (capacity factors
multiply, latency surges add, background loads add).  Slice churn
events manage *background* slices: an arriving slice is driven by the
simulator with a fixed allocation and contends for every resource, but
is never reported to the learning agents -- so all four methods run
unmodified while the world shifts under them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Tuple


def slot_window(at_fraction: float, duration_fraction: float,
                horizon: int) -> Tuple[int, int]:
    """``(start, stop)`` slots of a fraction-positioned window.

    The one place fraction-to-slot rounding lives: the start is clamped
    inside the episode and the window spans at least one slot, for
    events and windowed traffic models alike.
    """
    start = min(int(round(at_fraction * horizon)), horizon - 1)
    stop = start + max(int(round(duration_fraction * horizon)), 1)
    return start, stop


@dataclass(frozen=True)
class NetworkEvent:
    """Base timeline entry: where on the episode it starts and ends."""

    kind: ClassVar[str] = "abstract"

    at_fraction: float = 0.5
    duration_fraction: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ValueError("at_fraction must be in [0, 1]")
        if self.duration_fraction < 0.0:
            raise ValueError("duration_fraction must be >= 0")

    def start_slot(self, horizon: int) -> int:
        """First slot (inclusive) at which the event is active."""
        return slot_window(self.at_fraction, self.duration_fraction,
                           horizon)[0]

    def end_slot(self, horizon: int) -> int:
        """First slot at which the event is no longer active."""
        return slot_window(self.at_fraction, self.duration_fraction,
                           horizon)[1]


@dataclass(frozen=True)
class LinkDegradation(NetworkEvent):
    """Transport link capacity drops to ``capacity_scale`` of nominal."""

    kind: ClassVar[str] = "link_degradation"

    capacity_scale: float = 0.4

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.capacity_scale <= 1.0:
            raise ValueError("capacity_scale must be in (0, 1]")


@dataclass(frozen=True)
class LatencySurge(NetworkEvent):
    """Extra forwarding latency on every transport path, in ms."""

    kind: ClassVar[str] = "latency_surge"

    extra_latency_ms: float = 25.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_latency_ms < 0:
            raise ValueError("extra_latency_ms must be >= 0")


@dataclass(frozen=True)
class BackgroundLoadStep(NetworkEvent):
    """Unmanaged cross-traffic loading every path by a capacity share."""

    kind: ClassVar[str] = "background_load"

    load_fraction: float = 0.4

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.load_fraction < 1.0:
            raise ValueError("load_fraction must be in [0, 1)")


@dataclass(frozen=True)
class SliceArrival(NetworkEvent):
    """A background slice attaches mid-episode and departs when the
    event's duration elapses (slice churn).

    The simulator provisions it end to end (SPGW-U pool, edge server,
    UEs), drives it with a constant ``action_level`` allocation and a
    flat traffic envelope, and removes it again at ``end_slot`` -- or
    at an explicit :class:`SliceDeparture` naming it.
    """

    kind: ClassVar[str] = "slice_arrival"

    app: str = "mar"
    slice_name: str = "churn"
    arrival_scale: float = 0.5
    action_level: float = 0.2

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.slice_name:
            raise ValueError("slice_name must be non-empty")
        if not 0.0 < self.action_level <= 1.0:
            raise ValueError("action_level must be in (0, 1]")


@dataclass(frozen=True)
class SliceDeparture(NetworkEvent):
    """Explicitly remove a background slice added by a prior
    :class:`SliceArrival` (duration is irrelevant: departures are
    instantaneous)."""

    kind: ClassVar[str] = "slice_departure"

    slice_name: str = "churn"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.slice_name:
            raise ValueError("slice_name must be non-empty")


EVENT_TYPES = (LinkDegradation, LatencySurge, BackgroundLoadStep,
               SliceArrival, SliceDeparture)
