"""Built-in scenarios.

Four mirror the paper's canonical configurations (so the legacy
factories in :mod:`repro.experiments.scenarios` and the experiment
units keep their exact configs); the rest open the non-stationary /
faulty regimes where safe *online* learning actually differs from the
offline baselines: flash crowds, bursty MMPP sources, traffic-mix
drift, transport faults, slice churn, and an N > 3 population.

``python -m repro scenarios`` lists this catalog; the ``robustness``
artefact sweeps all four methods over :data:`ROBUSTNESS_MATRIX`.
"""

from __future__ import annotations

import dataclasses

from repro.config import NetworkConfig, TrafficConfig, lte_ran_config, \
    nr_ran_config
from repro.scenarios.events import (
    BackgroundLoadStep,
    LatencySurge,
    LinkDegradation,
    SliceArrival,
)
from repro.scenarios.registry import register
from repro.scenarios.spec import ScenarioSpec, SliceTemplate, population
from repro.scenarios.traffic_models import (
    DiurnalTraffic,
    FlashCrowdTraffic,
    MixDriftTraffic,
    OnOffTraffic,
    ScaledTraffic,
)


def _fixed_mcs_network(ran_factory) -> NetworkConfig:
    return NetworkConfig(
        ran=dataclasses.replace(ran_factory(), fixed_mcs=9))


register(ScenarioSpec(
    name="default",
    description="paper Sec. 7.1: MAR/HVS/RDC on LTE, diurnal day"))

register(ScenarioSpec(
    name="lte_fixed_mcs",
    description="4G LTE with MCS pinned to 9 (Table 4 protocol)",
    network=_fixed_mcs_network(lte_ran_config)))

register(ScenarioSpec(
    name="nr_fixed_mcs",
    description="5G NSA (40 MHz / 106 PRB) with MCS pinned to 9",
    network=_fixed_mcs_network(nr_ran_config)))

register(ScenarioSpec(
    name="short_horizon",
    description="12-slot episode with the paper's shape (fast tests)",
    traffic_cfg=TrafficConfig(slots_per_episode=12)))

register(ScenarioSpec(
    name="flash_crowd",
    description="3x crowd spike on the MAR slice mid-morning",
    traffic=FlashCrowdTraffic(at_fraction=0.42, duration_fraction=0.12,
                              magnitude=3.0, slice_indices=(0,))))

register(ScenarioSpec(
    name="bursty",
    description="MMPP-style on/off sources instead of the diurnal day",
    traffic=OnOffTraffic(on_level=1.0, off_level=0.1,
                         mean_on_slots=8.0, mean_off_slots=12.0)))

register(ScenarioSpec(
    name="drift",
    description="traffic mix drifts across the day (MAR/RDC up, "
                "HVS down)",
    traffic=MixDriftTraffic(drift=0.8)))

register(ScenarioSpec(
    name="link_degradation",
    description="transport link drops to 35% capacity for 30% of the "
                "episode",
    events=(LinkDegradation(at_fraction=0.4, duration_fraction=0.3,
                            capacity_scale=0.35),)))

register(ScenarioSpec(
    name="latency_surge",
    description="+25 ms transport forwarding latency mid-episode",
    events=(LatencySurge(at_fraction=0.5, duration_fraction=0.25,
                         extra_latency_ms=25.0),)))

register(ScenarioSpec(
    name="transport_brownout",
    description="+60 ms transport forwarding latency for half the "
                "episode -- sustained degradation for burn-rate "
                "alerting (cf. latency_surge's short blip)",
    events=(LatencySurge(at_fraction=0.25, duration_fraction=0.5,
                         extra_latency_ms=60.0),)))

register(ScenarioSpec(
    name="slice_churn",
    description="a background MAR slice attaches mid-episode, "
                "contends, then departs",
    events=(SliceArrival(at_fraction=0.3, duration_fraction=0.4,
                         app="mar", slice_name="MAR-churn",
                         arrival_scale=0.6, action_level=0.25),
            BackgroundLoadStep(at_fraction=0.3, duration_fraction=0.4,
                               load_fraction=0.2))))

register(ScenarioSpec(
    name="six_slices",
    description="6-slice population (2x MAR/HVS/RDC at derated load)",
    slices=population(6)))

# Graduated fuzz repro: world 4 of fuzz seed 11, shrunk under
# Model_Based by repro.experiments.fuzz.shrink_violation (8 predicate
# evaluations: 2 slices -> 1, 2 events -> 0, 22 slots -> 6).  A single
# over-provisioned MAR slice on a scaled diurnal day is enough to push
# Model_Based past its SLA -- the minimal witness that the analytic
# model under-allocates under arrival-rate derating.  Reproduce with
# ``python -m repro fuzz shrink --seed 11 --world 4 --method
# model_based``.
register(ScenarioSpec(
    name="fuzz_repro",
    description="shrunk fuzz witness: one derated MAR slice violates "
                "Model_Based (seed 11, world 4)",
    slices=(SliceTemplate(app="mar", arrival_scale=0.7795),),
    traffic=ScaledTraffic(base=DiurnalTraffic(), scale=0.6882),
    traffic_cfg=TrafficConfig(slots_per_episode=6),
    seed=1191539496))


#: The scenario sweep of the ``robustness`` artefact: the paper's
#: baseline world plus every stress regime.
ROBUSTNESS_MATRIX = ("default", "flash_crowd", "bursty", "drift",
                     "link_degradation", "latency_surge",
                     "slice_churn", "six_slices")
