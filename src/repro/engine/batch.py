"""Batched episode engine: B worlds stepped in lockstep.

:class:`BatchSimulator` owns ``B`` independent
:class:`~repro.sim.env.ScenarioSimulator` worlds -- possibly
heterogeneous scenarios with different slice populations, horizons and
event timelines -- as struct-of-arrays state, and advances *all* of
them per slot through the vectorised kernels of
:mod:`repro.engine.kernels`.  The hot path is O(T) array ops instead
of O(B*T) Python iterations, which is where the fleet/serving layers'
single-process throughput comes from.

Determinism contract
--------------------
Each world keeps its *own* RNG (the simulator's), consumed in exactly
the scalar engine's order: event activation draws, then one
standard-normal block per channel (``ChannelProcess.step``), then one
Poisson draw per slice.  Array draws consume a ``numpy`` Generator
identically to the equivalent sequence of scalar draws, so a world
stepped inside a batch produces bit-identical traffic, channels,
rewards, costs and observations to the same world stepped alone --
``tests/test_engine.py`` pins this against the golden trace digests
for every catalog scenario.

Two costs are deliberately *not* paid per slot: per-slice
``SliceObservation``/``SlotReport`` object construction (results are
returned as stacked arrays; build objects only at the edges if you
need them) and container-runtime share mirroring (the kernels compute
allocations directly; a batch-driven world's ``ContainerRuntime``
bookkeeping is not refreshed each slot).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.config import NUM_ACTIONS
from repro.engine.arena import KernelArena
from repro.engine.kernels import (
    SliceRows,
    WorldConditions,
    concat_rows,
    evaluate_rows,
    rows_for_network,
)
from repro.obs.trace import trace
from repro.sim.env import ARRIVAL_WINDOW_S, STATE_DIM, ScenarioSimulator

#: Engine tiers a :class:`BatchSimulator` can run its kernels on.
#: ``vector`` is the default bit-exact float64 path on a persistent
#: :class:`~repro.engine.arena.KernelArena` (zero steady-state array
#: allocations); ``vector-compat`` is the historical allocate-per-call
#: driver (kept as the benchmark control and parity cross-check);
#: ``vector-fast`` is the opt-in float32 tier (numba-JIT queueing
#: kernels when numba is installed), tolerance-checked against the
#: float64 oracle and never digest-bearing.
BATCH_ENGINES = ("vector", "vector-compat", "vector-fast")

#: Per-world actions for one slot: a mapping ``slice name -> action``
#: (scalar-simulator style), an ``(S, 10)`` array in
#: ``sim.slice_names`` order, or ``None`` to skip the world this slot.
WorldActions = Optional[Union[Mapping[str, np.ndarray], np.ndarray]]


@dataclass
class BatchStepResult:
    """One lockstep slot's outcome across the stepped worlds.

    All arrays cover *managed* slice rows only (background churn
    slices are driven internally, exactly like the scalar engine), in
    world-major order; ``offsets[i]:offsets[i+1]`` are world
    ``worlds[i]``'s rows.
    """

    worlds: List[int]
    offsets: np.ndarray               # (len(worlds)+1,)
    names: List[List[str]]            # managed slice names per world
    observations: np.ndarray          # (R, STATE_DIM)
    rewards: np.ndarray               # (R,) = -usage, paper Eq. 9
    costs: np.ndarray                 # (R,) paper Eq. 10
    usages: np.ndarray                # (R,)
    #: (R,) simulated end-to-end latency in ms (transport + core +
    #: edge, summed in that order -- bit-identical to the scalar
    #: path's SlotReport components), the deterministic latency
    #: signal SLO evaluation runs on.
    latencies: np.ndarray
    dones: List[bool]                 # per stepped world

    def rows_of(self, world: int) -> slice:
        """Row range of one stepped world (by world index)."""
        i = self.worlds.index(world)
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))

    def totals_of(self, world: int) -> Dict[str, Dict[str, float]]:
        """Per-slice ``{"cost", "usage"}`` of one world this slot."""
        rows = self.rows_of(world)
        i = self.worlds.index(world)
        return {
            name: {"cost": float(self.costs[rows][j]),
                   "usage": float(self.usages[rows][j])}
            for j, name in enumerate(self.names[i])
        }


class _WorldState:
    """Cached layout of one world's current slice set."""

    def __init__(self, sim: ScenarioSimulator) -> None:
        self.sim = sim
        self.rebuild()

    def rebuild(self) -> None:
        sim = self.sim
        network = sim.network
        self.signature = tuple(network.slice_names)
        self.rows = rows_for_network(network, horizon=sim.horizon)
        self.users = network.cfg.users_per_slice
        self.names = list(network.slice_names)
        self.managed = np.asarray(
            [name not in sim._event_slices for name in self.names],
            dtype=bool)
        self.managed_names = [name for name in self.names
                              if name not in sim._event_slices]
        self.max_arrival = self.rows.max_arrival
        self.cost_threshold = self.rows.cost_threshold[self.managed]
        self.horizon_cost = (sim.horizon
                             * self.rows.cost_threshold[self.managed])
        # Traffic envelopes in network row order (managed traces from
        # the episode's generation, churn slices pinned at 1.0).
        self.traces = np.stack([sim._traces[name]
                                for name in self.names])
        # Background churn slices play their fixed action every slot.
        self.event_actions = {
            name: np.asarray(action, dtype=float)
            for name, action in sim._event_slices.items()}
        # Poisson intensities for every (slice, slot) of the episode,
        # precomputed so the hot loop only slices a column.  Bit-equal
        # to the historical per-slot (envelope * max_arrival) *
        # ARRIVAL_WINDOW_S: the same elementwise products, evaluated
        # for all slots at once.
        self.lam_table = ((self.traces * self.max_arrival[:, None])
                          * ARRIVAL_WINDOW_S)
        # Managed cumulative episode cost, aligned with managed rows
        # (carried over from the simulator on churn rebuilds).
        self.cum_cost = np.asarray(
            [sim._cum_cost[name] for name in self.managed_names])

    def actions_matrix(self, actions: WorldActions,
                       out: Optional[np.ndarray] = None) -> np.ndarray:
        """Joint (S, NUM_ACTIONS) matrix in network row order.

        ``out`` receives the rows in place (the batch engine hands a
        view of its reused step matrix); values are identical either
        way.
        """
        matrix = (np.empty((len(self.names), NUM_ACTIONS))
                  if out is None else out)
        if isinstance(actions, np.ndarray):
            provided = np.asarray(actions, dtype=float)
            if provided.shape != (len(self.managed_names), NUM_ACTIONS):
                raise ValueError(
                    f"actions must have shape "
                    f"({len(self.managed_names)}, {NUM_ACTIONS}), "
                    f"got {provided.shape}")
            cursor = 0
            for i, name in enumerate(self.names):
                if self.managed[i]:
                    matrix[i] = provided[cursor]
                    cursor += 1
                else:
                    matrix[i] = self.event_actions[name]
            return matrix
        for i, name in enumerate(self.names):
            if self.managed[i]:
                arr = np.asarray(actions[name], dtype=float)
                if arr.shape != (NUM_ACTIONS,):
                    raise ValueError(
                        f"action must have shape ({NUM_ACTIONS},), "
                        f"got {arr.shape}")
                matrix[i] = arr
            else:
                matrix[i] = self.event_actions[name]
        return matrix


class BatchSimulator:
    """Vectorised lockstep driver over B scalar simulator worlds."""

    def __init__(self, simulators: Sequence[ScenarioSimulator],
                 engine: str = "vector") -> None:
        if not simulators:
            raise ValueError("need at least one world")
        if engine not in BATCH_ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected "
                             f"one of {BATCH_ENGINES}")
        self.sims: List[ScenarioSimulator] = list(simulators)
        self.engine = engine
        if engine == "vector":
            self._arena: Optional[KernelArena] = KernelArena()
        elif engine == "vector-fast":
            from repro.engine.fastpath import make_fast_arena
            self._arena = make_fast_arena()
        else:                       # vector-compat: allocate per call
            self._arena = None
        #: vector-compat reproduces the pre-arena engine faithfully:
        #: per-channel stepping/gathering and per-slot staging
        #: allocations, so it doubles as the benchmark's pre-PR
        #: reference.  Bits are identical either way.
        self._compat = engine == "vector-compat"
        # Fleet-stacked channel state (all worlds, one AR(1) update
        # per slot); rebuilt whenever any world's bank changes.
        self._fleet = None
        self._fleet_key: object = None
        self._states: List[Optional[_WorldState]] = [None] * len(
            self.sims)
        self._bundle_key = None
        self._bundle: Optional[SliceRows] = None
        # Reused per-step staging buffers (rebuilt on layout changes).
        self._cond: Optional[WorldConditions] = None
        self._matrix: Optional[np.ndarray] = None
        self._rates: Optional[np.ndarray] = None
        self._cqi: Optional[np.ndarray] = None
        self._margin: Optional[np.ndarray] = None

    # ---- episode lifecycle ------------------------------------------

    @property
    def num_worlds(self) -> int:
        return len(self.sims)

    @property
    def dones(self) -> List[bool]:
        return [sim.done for sim in self.sims]

    def slice_names(self, world: int) -> List[str]:
        return list(self.sims[world].slice_names)

    def reset(self) -> np.ndarray:
        """Reset every world; returns the stacked initial observations
        (managed rows, world-major)."""
        rows = [self.reset_world(b) for b in range(self.num_worlds)]
        return np.concatenate(rows, axis=0)

    def reset_world(self, world: int) -> np.ndarray:
        """Reset one world (its own RNG stream; bit-identical to a
        scalar ``sim.reset()``) and return its initial observations."""
        sim = self.sims[world]
        observations = sim.reset()
        self._states[world] = _WorldState(sim)
        names = self._states[world].managed_names
        out = np.empty((len(names), STATE_DIM))
        for i, name in enumerate(names):
            observations[name].vector(out=out[i])
        return out

    def observation_offsets(self,
                            worlds: Optional[Sequence[int]] = None
                            ) -> np.ndarray:
        """Managed-row offsets for a world subset (default: all)."""
        worlds = range(self.num_worlds) if worlds is None else worlds
        sizes = [len(self._require_state(b).managed_names)
                 for b in worlds]
        return np.concatenate([[0], np.cumsum(sizes)])

    def _require_state(self, world: int) -> _WorldState:
        state = self._states[world]
        if state is None:
            raise RuntimeError(
                f"world {world} was never reset; call reset() or "
                "reset_world() first")
        return state

    # ---- lockstep stepping ------------------------------------------

    def step(self, actions: Sequence[WorldActions]) -> BatchStepResult:
        """Advance every world with a non-``None`` action set by one
        slot, all through one kernel evaluation."""
        if len(actions) != self.num_worlds:
            raise ValueError(
                f"need one action set per world ({self.num_worlds}), "
                f"got {len(actions)}")
        stepping = [b for b, a in enumerate(actions) if a is not None]
        if not stepping:
            raise ValueError("no world to step (all actions None)")

        with trace("engine.step"):
            # 1. events + churn (may consume world RNG; may change
            #    layout)
            with trace("engine.events"):
                states: List[_WorldState] = []
                for b in stepping:
                    sim = self.sims[b]
                    if sim.done:
                        raise RuntimeError(
                            f"world {b}: episode finished; call "
                            "reset_world()")
                    state = self._require_state(b)
                    sim.apply_events()
                    if tuple(sim.network.slice_names) \
                            != state.signature:
                        state.rebuild()
                    states.append(state)

            # 2. channels (one standard-normal block per world,
            #    exactly the scalar step_channels stream; the fleet
            #    bank fuses all worlds' AR(1) updates into one)
            with trace("engine.channels"):
                fleet = None if self._compat else self._fleet_bank()
                if fleet is not None:
                    fleet.step_worlds(stepping)
                elif self._compat:
                    # historical per-channel loop (same bits, same
                    # RNG stream, pre-PR Python cost)
                    for b in stepping:
                        for channel in (self.sims[b].network
                                        .channels.values()):
                            channel.step()
                else:
                    for b in stepping:
                        self.sims[b].network.step_channels()

            # 3. realised arrivals (one Poisson array draw per world
            #    == the scalar per-slice draw sequence)
            with trace("engine.arrivals"):
                total = sum(len(state.names) for state in states)
                if self._compat:
                    rates = np.empty(total)  # pre-PR: fresh per slot
                else:
                    if self._rates is None \
                            or self._rates.shape[0] != total:
                        self._rates = np.empty(total)
                    rates = self._rates
                row = 0
                for state in states:
                    sim = state.sim
                    counts = sim._rng.poisson(
                        state.lam_table[:, sim._slot])
                    hi = row + len(state.names)
                    np.divide(counts, ARRIVAL_WINDOW_S,
                              out=rates[row:hi])
                    row = hi

            # 4. one kernel evaluation over every row of every world
            with trace("engine.kernel"):
                bundle = self._bundle_for(stepping, states)
                if self._compat:
                    matrix = np.empty((total, NUM_ACTIONS))
                else:
                    if self._matrix is None \
                            or self._matrix.shape[0] != total:
                        self._matrix = np.empty((total, NUM_ACTIONS))
                    matrix = self._matrix
                row = 0
                for b, state in zip(stepping, states):
                    hi = row + len(state.names)
                    state.actions_matrix(actions[b],
                                         out=matrix[row:hi])
                    row = hi
                cqi, margin = self._gather_channels(states)
                fabrics = [state.sim.network.fabric
                           for state in states]
                if self._compat:
                    cond = WorldConditions.from_fabrics(fabrics)
                else:
                    if self._cond is None \
                            or self._cond.capacity_scale.shape[0] \
                            != len(fabrics):
                        self._cond = WorldConditions.nominal(
                            len(fabrics))
                    cond = self._cond.refresh(fabrics)
                out = evaluate_rows(bundle, cond, matrix, rates, cqi,
                                    margin, arena=self._arena)

            # 5. state write-back + stacked managed-row results
            with trace("engine.commit"):
                return self._commit(stepping, states, bundle, out,
                                    rates)

    def _bundle_for(self, stepping: List[int],
                    states: List[_WorldState]) -> SliceRows:
        # id(rows) keys the cache: rebuilds (churn, resets) swap the
        # rows object even when the slice-name signature is unchanged.
        key = tuple((b, id(state.rows))
                    for b, state in zip(stepping, states))
        if key != self._bundle_key:
            self._bundle = concat_rows([state.rows for state in states])
            self._bundle_key = key
        return self._bundle

    def _fleet_bank(self):
        """The all-worlds stacked channel bank (or ``None``).

        Keyed on the per-world bank identities, so slice churn or a
        non-bankable world anywhere in the fleet drops straight back
        to the per-network path.
        """
        from repro.sim.channel import FleetChannelBank

        banks = [sim.network.channel_bank() for sim in self.sims]
        key = tuple(id(bank) for bank in banks)
        if key != self._fleet_key:
            self._fleet = FleetChannelBank.adopt(
                banks, [sim.network._rng for sim in self.sims])
            self._fleet_key = key
        return self._fleet

    def _gather_channels(self, states: List[_WorldState]):
        umax = max(state.users for state in states)
        total = sum(len(state.names) for state in states)
        if self._compat:
            # pre-PR behaviour: fresh buffers, per-channel copies
            cqi = np.ones((total, umax), dtype=np.intp)
            margin = np.zeros((total, umax))
            row = 0
            for state in states:
                u = state.users
                for channel in state.sim.network.channels.values():
                    cqi[row, :u] = channel.cqi
                    margin[row, :u] = channel.margins_db
                    row += 1
            return cqi, margin
        fleet = self._fleet
        if fleet is not None and len(states) == len(self.sims) \
                and fleet.cqi.shape == (total, umax):
            # Whole fleet stepping and uniform user counts: the fleet
            # block *is* the gather layout -- no per-world copies.
            if self._margin is None \
                    or self._margin.shape != (total, umax):
                self._margin = np.zeros((total, umax))
            np.subtract(fleet.snr_db, fleet.mean_snr_db,
                        out=self._margin)
            return fleet.cqi, self._margin
        if self._cqi is None or self._cqi.shape != (total, umax):
            # Padding lanes (beyond each row's user count) are
            # initialised once and never read unmasked by the kernels.
            self._cqi = np.ones((total, umax), dtype=np.intp)
            self._margin = np.zeros((total, umax))
        cqi, margin = self._cqi, self._margin
        row = 0
        for state in states:
            u = state.users
            bank = state.sim.network.channel_bank()
            if bank is not None:
                hi = row + len(state.names)
                cqi[row:hi, :u] = bank.cqi
                np.subtract(bank.snr_db, bank.mean_snr_db,
                            out=margin[row:hi, :u])
                row = hi
            else:
                for channel in state.sim.network.channels.values():
                    cqi[row, :u] = channel.cqi
                    margin[row, :u] = channel.margins_db
                    row += 1
        return cqi, margin

    def _commit(self, stepping: List[int], states: List[_WorldState],
                bundle: SliceRows, out: Dict[str, np.ndarray],
                rates: np.ndarray) -> BatchStepResult:
        managed = np.concatenate([state.managed for state in states])
        costs = out["cost"][managed]
        usages = out["usage"][managed]
        latencies = (out["transport_latency_ms"]
                     + out["core_latency_ms"]
                     + out["edge_latency_ms"])[managed]
        obs = np.empty((int(managed.sum()), STATE_DIM))

        sizes = [int(state.managed.sum()) for state in states]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        row_all = 0
        dones: List[bool] = []
        for i, state in enumerate(states):
            sim = state.sim
            world_rows = slice(row_all, row_all + len(state.names))
            row_all += len(state.names)
            lo, hi = offsets[i], offsets[i + 1]
            world_rates = rates[world_rows][state.managed]

            # transport loads mirror the scalar fabric state
            fabric = sim.network.fabric
            fabric.set_loads(out["path_loads"][i, :fabric.num_paths])

            sim._slot += 1
            state.cum_cost = state.cum_cost + costs[lo:hi]
            for j, name in enumerate(state.managed_names):
                sim._cum_cost[name] = float(state.cum_cost[j])
            sim._last_rates = {
                name: float(world_rates[j])
                for j, name in enumerate(state.managed_names)}
            dones.append(sim.done)

            block = obs[lo:hi]
            block[:, 0] = sim._slot / sim.horizon
            block[:, 1] = world_rates \
                / state.max_arrival[state.managed]
            block[:, 2] = out["channel_quality"][world_rows][
                state.managed]
            block[:, 3] = out["radio_usage"][world_rows][state.managed]
            block[:, 4] = out["workload"][world_rows][state.managed]
            block[:, 5] = usages[lo:hi]
            block[:, 6] = costs[lo:hi]
            block[:, 7] = state.cost_threshold
            block[:, 8] = state.cum_cost / state.horizon_cost

        return BatchStepResult(
            worlds=list(stepping),
            offsets=offsets,
            names=[state.managed_names for state in states],
            observations=obs,
            rewards=-usages,
            costs=costs,
            usages=usages,
            latencies=latencies,
            dones=dones,
        )
