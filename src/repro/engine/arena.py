"""Slot-arena allocator: reusable temporaries for the engine kernels.

Profiling the vector engine (``repro obs profile`` with ``alloc``)
showed steady-state slot evaluation spending a large share of its
time in numpy array construction: every ``evaluate_rows`` call built
~40 fresh temporaries (decode masks, per-direction radio buffers,
queueing intermediates, app-model scratch), none of which outlive the
call.  :class:`KernelArena` removes that cost: it owns one reusable
buffer per (shape, dtype, request-index) triple and hands the same
arrays back on every call, so a warmed arena serves a slot evaluation
with **zero heap array allocations** (pinned by
``tests/test_engine_alloc.py``).

Lifecycle
---------
An arena is keyed by the caller's *row layout* (however the caller
identifies it -- the batch engine uses the identity of its concatenated
:class:`~repro.engine.kernels.SliceRows` bundle, the scalar network
uses its cached rows object).  Each kernel pass starts with
:meth:`begin`:

* same key as the previous pass -> every buffer cursor rewinds and the
  pass reuses the warmed buffers (the steady state);
* new key (slice churn rebuilt the rows, a reset swapped worlds, the
  first call ever) -> the pools are dropped and the next pass
  re-populates them, allocating once.

Within one pass, :meth:`take` hands out buffers in request order.  The
kernels are straight-line array code -- the sequence of ``take`` calls
is identical on every pass over the same layout -- so request index
``i`` of shape ``s`` always receives the same array.  Buffers are
*never* zeroed between passes: kernels fully overwrite every element
they read (the same discipline ``np.empty`` requires), which the
parity suite enforces by comparing against the scalar engine
bit-for-bit.

Precision tiers
---------------
``dtype`` fixes the arena's default buffer dtype: ``float64`` is the
digest-bearing parity path, ``float32`` backs the opt-in
``vector-fast`` engine.  :meth:`rows_view` supplies the matching cast
of a :class:`~repro.engine.kernels.SliceRows` bundle's float constants
(cached per bundle), so the fast path casts static row data once per
layout instead of once per slot.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Dict, List, Optional, Tuple

import numpy as np


class KernelArena:
    """Layout-keyed pool of reusable kernel temporaries."""

    def __init__(self, dtype=np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self._key: object = None
        # (shape, dtype) -> list of preallocated buffers
        self._pools: Dict[Tuple[tuple, np.dtype], List[np.ndarray]] = {}
        # (shape, dtype) -> next handout index within the current pass
        self._cursors: Dict[Tuple[tuple, np.dtype], int] = {}
        # id(rows) -> dtype-cast SliceRows mirror (fast path)
        self._rows_views: Dict[int, object] = {}
        # name -> derived static value (row-constant arrays etc.)
        self._statics: Dict[object, object] = {}
        #: Number of times the pools were dropped (layout changes).
        self.rebuilds = 0
        #: Buffers handed out since the last rebuild.
        self.served = 0

    # ---- pass lifecycle ----------------------------------------------

    def begin(self, key: object) -> None:
        """Open one kernel pass over the layout identified by ``key``.

        Rewinds every buffer cursor; a key change drops the pools so
        stale-shaped buffers can never leak across layouts.
        """
        if key != self._key:
            self._pools = {}
            self._rows_views = {}
            self._statics = {}
            self._key = key
            self.rebuilds += 1
            self.served = 0
        cursors = self._cursors
        if cursors:
            for pool_key in cursors:
                cursors[pool_key] = 0

    def take(self, shape, dtype=None) -> np.ndarray:
        """Hand out the next reusable buffer of ``shape``/``dtype``.

        Contents are undefined (``np.empty`` semantics): the caller
        must overwrite every element it reads.
        """
        if isinstance(shape, int):
            shape = (shape,)
        else:
            shape = tuple(shape)
        pool_key = (shape, self.dtype if dtype is None
                    else np.dtype(dtype))
        pool = self._pools.get(pool_key)
        if pool is None:
            pool = self._pools[pool_key] = []
            self._cursors[pool_key] = 0
        index = self._cursors.get(pool_key, 0)
        self._cursors[pool_key] = index + 1
        if index == len(pool):
            pool.append(np.empty(shape, dtype=pool_key[1]))
        self.served += 1
        return pool[index]

    def static(self, name: object, builder):
        """Derived row-constant, built once per layout.

        Kernels use this for values that depend only on the static
        :class:`~repro.engine.kernels.SliceRows` (float casts of
        integer columns, per-row masks, ``1 - overhead``): ``builder``
        runs on the first pass after a layout change and the result is
        reused verbatim until the next :meth:`begin` key change.
        Callers must treat the value as read-only.
        """
        value = self._statics.get(name)
        if value is None:
            value = self._statics[name] = builder()
        return value

    # ---- static-constant casts (fast path) ---------------------------

    def rows_view(self, rows):
        """``rows`` with float constants cast to the arena dtype.

        Returns ``rows`` itself on the float64 arena (no copy); on a
        float32 arena the cast mirror is built once per rows object
        and cached until the layout key changes.
        """
        if self.dtype == np.float64:
            return rows
        cached = self._rows_views.get(id(rows))
        if cached is None:
            cached = _cast_rows(rows, self.dtype)
            self._rows_views[id(rows)] = cached
        return cached


def _cast_rows(rows, dtype: np.dtype):
    """Shallow :class:`SliceRows` copy with float arrays cast."""
    values = {}
    for spec in fields(rows):
        value = getattr(rows, spec.name)
        if isinstance(value, np.ndarray) \
                and value.dtype == np.float64:
            value = value.astype(dtype)
        values[spec.name] = value
    return type(rows)(**values)


#: Process-default transient arena used when a caller passes
#: ``arena=None``: layoutless (every ``begin`` drops the pools), so it
#: reproduces the historical allocate-per-call behaviour -- this is
#: what the ``vector-compat`` reference engine runs on.
class TransientArena(KernelArena):
    """An arena that never reuses: fresh buffers every pass."""

    def begin(self, key: object) -> None:  # noqa: D102 (see class doc)
        self._pools = {}
        self._rows_views = {}
        self._statics = {}
        self._cursors = {}
        self._key = key
        self.rebuilds += 1

    def rows_view(self, rows):
        if self.dtype == np.float64:
            return rows
        return _cast_rows(rows, self.dtype)


__all__ = ["KernelArena", "TransientArena"]
