"""Batched policies: stacked observations in, stacked actions out.

The :class:`BatchPolicy` protocol is the engine-side counterpart of
the per-slice ``act``/``act_vector`` interfaces: a policy maps an
``(R, STATE_DIM)`` observation matrix (plus per-row slice metadata) to
an ``(R, NUM_ACTIONS)`` action matrix in one shot.  The paper's
comparison policies vectorise directly:

* the rule-based Baseline is a per-traffic-bin table -- one
  ``searchsorted`` over the traffic column plus a row gather;
* Model_Based's programs have closed forms (the SLSQP solve of the
  scalar path just recovers them), evaluated here as array math;
* OnRL / the actor-critic run one ``MLP.predict_batch`` forward pass.

:func:`project_actions_batch` applies the paper's projection
(Sec. 4) per world across a whole batch, and :class:`VecOnRLAgent`
runs one OnRL learner over B parallel worlds with per-world rollout
buffers (the standard vectorised-env pattern).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Protocol, Sequence

import numpy as np

from repro.config import NUM_ACTIONS, action_index
from repro.rl.buffer import RolloutBuffer, Transition
from repro.sim.network import CONSTRAINED_RESOURCES

#: Constrained action columns in CONSTRAINED_RESOURCES order.
_KIND_COLUMNS = np.fromiter(CONSTRAINED_RESOURCES.values(),
                            dtype=np.intp)


class BatchPolicy(Protocol):
    """Maps stacked observations to stacked actions.

    ``slice_names`` gives the per-row slice identity (same length as
    ``states``); implementations that are slice-agnostic may ignore
    it.
    """

    def act_batch(self, states: np.ndarray,
                  slice_names: Sequence[str]) -> np.ndarray:
        ...


class ConstantBatchPolicy:
    """Every slice plays one fixed allocation (background/bench load)."""

    def __init__(self, action: np.ndarray) -> None:
        action = np.asarray(action, dtype=float)
        if action.shape != (NUM_ACTIONS,):
            raise ValueError(f"action must have {NUM_ACTIONS} dims")
        self.action = action

    def act_batch(self, states: np.ndarray,
                  slice_names: Sequence[str]) -> np.ndarray:
        return np.broadcast_to(self.action,
                               (len(states), NUM_ACTIONS)).copy()


class RuleBasedBatchPolicy:
    """Vectorised pi_b: per-traffic-bin table lookups for all rows.

    ``policies`` maps slice names to fitted
    :class:`~repro.baselines.rule_based.RuleBasedPolicy` tables;
    unmatched names fall back to any policy of the same leading app
    prefix, else the first table (mirroring how population scenarios
    cycle the three fitted apps).
    """

    def __init__(self, policies: Mapping[str, object]) -> None:
        if not policies:
            raise ValueError("need at least one fitted policy")
        self.policies = dict(policies)
        self._by_app: Dict[str, object] = {}
        for policy in self.policies.values():
            self._by_app.setdefault(policy.app, policy)
        self._fallback = next(iter(self.policies.values()))
        #: id(policy) -> stacked (bins, NUM_ACTIONS) action table.
        self._tables = {id(policy): np.stack(policy.actions)
                        for policy in self.policies.values()}

    def _resolve(self, name: str):
        policy = self.policies.get(name)
        if policy is not None:
            return policy
        app = name[:3].lower()
        return self._by_app.get(app, self._fallback)

    def act_batch(self, states: np.ndarray,
                  slice_names: Sequence[str]) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        actions = np.empty((len(states), NUM_ACTIONS))
        traffic = np.maximum(states[:, 1], 0.0)
        groups: Dict[int, List[int]] = {}
        resolved = [self._resolve(name) for name in slice_names]
        for row, policy in enumerate(resolved):
            groups.setdefault(id(policy), []).append(row)
        for rows in groups.values():
            policy = resolved[rows[0]]
            idx = np.searchsorted(policy.bin_edges, traffic[rows],
                                  side="left")
            idx = np.minimum(idx, len(policy.actions) - 1)
            actions[rows] = self._tables[id(policy)][idx]
        return actions


class ModelBasedBatchPolicy:
    """Vectorised Model_Based: the papers' closed-form programs.

    The scalar :class:`~repro.baselines.model_based.ModelBasedPolicy`
    runs a one-variable SLSQP per MAR request whose optimum has the
    closed form ``U_u = f*s / (R * (P - l_s))``; this policy evaluates
    the closed forms directly for every row, so a 50-slice cell costs
    one pass of array math instead of 50 solver invocations.  Within
    solver tolerance it matches the scalar method; it is a distinct
    (faster, tighter) implementation, not a bit-exact replay.
    """

    def __init__(self, policies: Mapping[str, object]) -> None:
        if not policies:
            raise ValueError("need at least one analytic policy")
        self.policies = dict(policies)
        sample = next(iter(self.policies.values()))
        self._by_app = {}
        for policy in self.policies.values():
            self._by_app.setdefault(policy.spec.app, policy)
        self._fallback = sample

    def _resolve(self, name: str):
        policy = self.policies.get(name)
        if policy is not None:
            return policy
        return self._by_app.get(name[:3].lower(), self._fallback)

    def act_batch(self, states: np.ndarray,
                  slice_names: Sequence[str]) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        actions = np.empty((len(states), NUM_ACTIONS))
        for row, name in enumerate(slice_names):
            policy = self._resolve(name)
            cfg = policy.cfg
            spec = policy.spec
            rate = states[row, 1] * spec.max_arrival_rate
            f = rate * cfg.provisioning_margin
            if spec.app == "mar":
                from repro.baselines.model_based import \
                    _mb_default_action

                action = _mb_default_action("mar")
                budget = spec.sla.target - cfg.static_latency_ms
                u_u = (f * spec.uplink_payload_bits * 1e3
                       / (policy._nominal_ul_bps * budget))
                action[action_index("uplink_bandwidth")] = float(
                    np.clip(u_u, 0.02, 1.0))
                action[action_index("transport_bandwidth")] = float(
                    np.clip(f * spec.uplink_payload_bits
                            / policy._link_bps
                            * cfg.provisioning_margin, 0.01, 1.0))
            elif spec.app == "hvs":
                from repro.baselines.model_based import \
                    _mb_default_action

                action = _mb_default_action("hvs")
                demand = (f * spec.sla.target
                          * spec.downlink_payload_bits)
                action[action_index("downlink_bandwidth")] = float(
                    np.clip(demand / policy._nominal_dl_bps,
                            0.05, 1.0))
                action[action_index("transport_bandwidth")] = float(
                    np.clip(demand / policy._link_bps
                            * cfg.provisioning_margin, 0.01, 1.0))
            else:
                action = policy._solve_rdc(rate)
            actions[row] = action
        return actions


class ActorCriticBatchPolicy:
    """Deterministic pi_theta over a stacked batch (one forward)."""

    def __init__(self, models: Mapping[str, object]) -> None:
        if not models:
            raise ValueError("need at least one model")
        self.models = dict(models)
        self._fallback = next(iter(self.models.values()))

    def act_batch(self, states: np.ndarray,
                  slice_names: Sequence[str]) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        actions = np.empty((len(states), NUM_ACTIONS))
        groups: Dict[str, List[int]] = {}
        for row, name in enumerate(slice_names):
            key = name if name in self.models else "*"
            groups.setdefault(key, []).append(row)
        for key, rows in groups.items():
            model = self.models.get(key, self._fallback)
            actions[rows] = model.mean_actions(states[rows])
        return actions


def project_actions_batch(actions: np.ndarray,
                          offsets: np.ndarray,
                          capacity: float = 1.0) -> np.ndarray:
    """Per-world proportional projection over a stacked action matrix.

    ``offsets[i]:offsets[i+1]`` delimit world ``i``'s rows; for every
    constrained resource kind whose within-world total exceeds
    ``capacity``, that world's entries scale by ``capacity / total``
    (the paper's projection, Sec. 4), all other dimensions untouched.
    Returns a new matrix.
    """
    projected = np.asarray(actions, dtype=float).copy()
    requested = projected[:, _KIND_COLUMNS]
    world_of = np.repeat(np.arange(len(offsets) - 1),
                         np.diff(offsets))
    totals = np.zeros((len(offsets) - 1, len(_KIND_COLUMNS)))
    np.add.at(totals, world_of, requested)
    over = totals > capacity
    scale = np.where(over & (totals > 0),
                     capacity / np.where(totals > 0, totals, 1.0),
                     1.0)
    projected[:, _KIND_COLUMNS] = requested * scale[world_of]
    return projected


class VecOnRLAgent:
    """One OnRL learner driving B parallel worlds.

    Wraps a scalar :class:`~repro.baselines.onrl.OnRLAgent`: the
    actor/critic forwards run batched over the worlds
    (``MLP.predict_batch``), while each world keeps its own
    :class:`~repro.rl.buffer.RolloutBuffer` so GAE stays per-episode
    correct.  PPO updates trigger at episode boundaries once the
    worlds' combined finalised transitions reach the scalar agent's
    update threshold.
    """

    def __init__(self, agent, num_envs: int) -> None:
        if num_envs < 1:
            raise ValueError("num_envs must be >= 1")
        self.agent = agent
        self.num_envs = num_envs
        ppo = agent.cfg.ppo
        self.buffers = [RolloutBuffer(gamma=ppo.gamma,
                                      gae_lambda=ppo.gae_lambda)
                        for _ in range(num_envs)]
        self._pending: Optional[Dict[str, np.ndarray]] = None
        self.updates_run = 0

    def act_many(self, states: np.ndarray,
                 deterministic: bool = False) -> np.ndarray:
        """Batched act across worlds; stages transitions for
        :meth:`observe_many`."""
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2 or states.shape[0] != self.num_envs:
            raise ValueError(
                f"need one state row per world: expected "
                f"({self.num_envs}, state_dim), got {states.shape}")
        model = self.agent.model
        means = model.actor.predict_batch(states)
        if deterministic:
            actions = np.clip(means, 0.0, 1.0)
        else:
            actions = model.dist.sample(means, model._rng)
        log_probs = model.dist.log_prob(means, actions)
        values = model.critic.predict_batch(states)[:, 0]
        self._pending = {"states": states, "actions": actions,
                         "log_probs": log_probs, "values": values}
        return actions

    def discard_pending(self) -> None:
        self._pending = None

    def observe_many(self, rewards: np.ndarray,
                     costs: np.ndarray) -> None:
        """Record every world's outcome (reward shaping included)."""
        if self._pending is None:
            raise RuntimeError("observe_many() called before act_many()")
        pending = self._pending
        self._pending = None
        shaped = (np.asarray(rewards, dtype=float)
                  - self.agent.cfg.penalty_weight
                  * np.asarray(costs, dtype=float))
        for b, buffer in enumerate(self.buffers):
            buffer.add(Transition(
                state=pending["states"][b],
                action=pending["actions"][b],
                reward=float(shaped[b]), cost=float(costs[b]),
                value=float(pending["values"][b]),
                log_prob=float(pending["log_probs"][b])))

    def end_episodes(self) -> None:
        for buffer in self.buffers:
            buffer.end_episode(bootstrap_value=0.0)

    def maybe_update(self) -> Optional[Dict[str, float]]:
        """One PPO update over the merged worlds, when enough data."""
        total = sum(len(buffer) for buffer in self.buffers)
        if total < self.agent.cfg.update_threshold:
            return None
        batches = [buffer.get(normalize_advantages=False)
                   for buffer in self.buffers if len(buffer)]
        merged = {key: np.concatenate([batch[key]
                                       for batch in batches])
                  for key in batches[0]}
        advantages = merged["advantages"]
        if len(advantages) > 1:
            merged["advantages"] = (advantages - advantages.mean()) / (
                advantages.std() + 1e-8)
        stats = self.agent.trainer.update(merged)
        for buffer in self.buffers:
            buffer.clear()
        self.updates_run += 1
        self.agent.updates_run += 1
        return stats
