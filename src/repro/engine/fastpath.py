"""Opt-in fast tier for the vector engine (``--engine vector-fast``).

The float64 arena path (the ``vector`` engine) is the bit-exact parity
oracle: every golden trace digest is pinned against it and it is the
only digest-bearing configuration.  This module supplies the *fast*
tier layered on top of the same kernels:

* **float32 arithmetic** -- :func:`make_fast_arena` returns a
  :class:`~repro.engine.arena.KernelArena` whose default dtype is
  ``float32``.  The kernels allocate every temporary through the
  arena, cast their inputs via ``_cast_in`` and read static row
  constants through :meth:`KernelArena.rows_view`, so a single dtype
  switch moves the whole slot evaluation to single precision (half the
  memory traffic on the wide ``(R, U)`` stages).
* **optional numba JIT** -- when :mod:`numba` is importable, the M/M/1
  + knee queueing chain (seven ufunc passes over the same buffer) is
  collapsed into one compiled loop and attached to the arena as
  ``arena.jit``; ``repro.engine.kernels._queueing_rows`` consults that
  hook.  numba is **not** a dependency: without it the fast tier is
  plain float32 numpy, and the numba-specific tests are skip-marked.

Accuracy contract: the fast tier agrees with float64 within the
tolerances pinned by ``tests/test_engine_fast.py`` (relative ~1e-4 on
finite latencies/satisfactions over the full scenario catalog and the
fuzz corpus).  It must never be used to (re)generate golden digests --
``EXPERIMENTS.md`` documents the policy.
"""

from __future__ import annotations

import numpy as np

from repro.engine.arena import KernelArena
from repro.sim.queueing import RHO_KNEE

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default container path
    numba = None
    HAVE_NUMBA = False


#: Accuracy contract of the fast tier against the float64 oracle,
#: applied to per-slot costs/usages and their episode means: a fast
#: value ``x`` matches an oracle value ``y`` when
#: ``|x - y| <= FAST_RTOL * |y| + FAST_ATOL``.  float32 carries ~7
#: significant digits; the slot kernels chain a few dozen ufuncs, so
#: ~1e-4 relative error is the expected scale and these bounds leave
#: an order of magnitude of headroom.  Pinned over the full scenario
#: catalog and the fuzz corpus by ``tests/test_engine_fast.py`` and
#: enforced by the fuzz oracle's tolerance mode
#: (:func:`repro.experiments.fuzz.run_fuzz_batch` with
#: ``engine="vector-fast"``).
FAST_RTOL = 5e-3
FAST_ATOL = 2e-3


_QUEUEING_JIT = None


def _build_queueing_jit():
    """Compile the fused M/M/1 + knee loop (numba required)."""
    knee = float(RHO_KNEE)
    hi = 1.0 / (1.0 - knee)
    slope = hi * hi

    @numba.njit(cache=False, fastmath=False)
    def queueing(service_ms, rho, out):  # pragma: no cover - jit body
        for i in range(out.size):
            r = rho[i]
            if r < 0.0:
                r = 0.0
            s = service_ms[i]
            if r < knee:
                out[i] = s / (1.0 - r)
            else:
                out[i] = s * hi + s * slope * (r - knee)

    return queueing


def queueing_jit():
    """The compiled queueing kernel, built once (``None`` sans numba)."""
    global _QUEUEING_JIT
    if not HAVE_NUMBA:
        return None
    if _QUEUEING_JIT is None:
        _QUEUEING_JIT = _build_queueing_jit()
    return _QUEUEING_JIT


def make_fast_arena() -> KernelArena:
    """Arena backing the ``vector-fast`` engine tier.

    float32 buffers; when numba is available the fused queueing kernel
    rides along as ``arena.jit`` (consumed by ``_queueing_rows``).
    Falls back to pure float32 numpy otherwise -- ``vector-fast``
    always works.
    """
    arena = KernelArena(np.float32)
    jit = queueing_jit()
    if jit is not None:
        arena.jit = jit
    return arena


__all__ = ["FAST_ATOL", "FAST_RTOL", "HAVE_NUMBA",
           "make_fast_arena", "queueing_jit"]
