"""Vectorised slot kernels: the paper's MDP as flat array math.

This module is the numeric core of the batched engine.  It evaluates
one configuration slot for ``R`` (world, slice) *rows* at once -- the
per-slice scalar pipeline of :mod:`repro.sim.network`,
:mod:`repro.sim.ran`, :mod:`repro.sim.phy`, :mod:`repro.sim.apps`,
:mod:`repro.sim.queueing` and the container/core/edge models, extracted
into numpy kernels.  A row bundle may hold one world's slices (the
scalar :class:`~repro.sim.env.ScenarioSimulator`, which routes its
``step`` through these kernels with ``R = S``) or every slice of every
world in a :class:`~repro.engine.batch.BatchSimulator` (``R = sum_b
S_b``).

Parity contract
---------------
Every kernel replicates the *operation order* of the historical scalar
code (association of sums/products, clip bounds, branch structure,
reduction order for the small per-slice user populations), so a row
evaluated alone is bit-identical to the same row evaluated inside a
larger batch: numpy elementwise ufuncs are value-deterministic
regardless of array length, and the only cross-row reductions
(transport path loads) accumulate with ``np.add.at`` in row order --
the same order the scalar loop reserved meters in.  The engine parity
suite (``tests/test_engine.py``) asserts this bit-exactness against
the scalar simulator for every catalog scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.config import (
    MAX_MCS_OFFSET,
    NUM_ACTIONS,
    USAGE_ACTION_INDICES,
)
from repro.obs.profile import begin as _profile_begin
from repro.sim.phy import MCS_TABLE, NUM_CQI, NUM_MCS
from repro.sim.queueing import RHO_KNEE

#: MCS spectral-efficiency table as an array (same values as the
#: scalar lookups in :mod:`repro.sim.phy`).
_MCS_EFF = np.asarray(MCS_TABLE, dtype=np.float64)

#: Usage-counted action columns (paper Eq. 9).
_USAGE_COLS = np.asarray(USAGE_ACTION_INDICES, dtype=np.intp)

#: Consumable-share floor (mirrors SliceAllocation.MIN_SHARE).
_MIN_SHARE = 0.01

#: Application codes used by the row layout.
APP_CODES: Dict[str, int] = {"mar": 0, "hvs": 1, "rdc": 2}


def queueing_latency_rows(service_ms: np.ndarray,
                          rho: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.sim.queueing.queueing_latency_ms`.

    M/M/1 below the knee utilisation, the linear finite-buffer overload
    regime above it -- branch structure and float association exactly
    as the scalar function.
    """
    rho = np.maximum(rho, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        below = service_ms / (1.0 - rho)
        knee = service_ms / (1.0 - RHO_KNEE)
        slope = service_ms / (1.0 - RHO_KNEE) ** 2
        above = knee + slope * (rho - RHO_KNEE)
    return np.where(rho < RHO_KNEE, below, above)


@dataclass
class SliceRows:
    """Static per-row constants for a set of (world, slice) rows.

    Built once per world from its :class:`~repro.sim.network
    .EndToEndNetwork` (and rebuilt only on slice churn), then
    concatenated across worlds by the batch engine.  All arrays are
    length ``R`` except the per-world tables noted below.
    """

    # -- identity ------------------------------------------------------
    names: List[str]                  # row slice names, world-major
    metrics: List[str]                # SLA metric name per row
    world: np.ndarray                 # (R,) world index of each row
    num_worlds: int

    # -- slice/application constants ----------------------------------
    app: np.ndarray                   # (R,) APP_CODES
    max_arrival: np.ndarray
    ul_bits: np.ndarray
    dl_bits: np.ndarray
    sum_bits: np.ndarray              # ul_bits + dl_bits (pre-added)
    compute_units: np.ndarray
    sla_target: np.ndarray
    cost_threshold: np.ndarray
    lower_better: np.ndarray          # (R,) bool

    # -- RAN / PHY (row-expanded world constants) ----------------------
    ul_prbs_total: np.ndarray
    dl_prbs_total: np.ndarray
    prb_bandwidth_hz: np.ndarray
    uplink_fraction: np.ndarray
    downlink_fraction: np.ndarray
    overhead: np.ndarray
    fixed_mcs: np.ndarray             # (R,) int (-1: link adaptation)
    ran_base_latency_ms: np.ndarray
    base_retx_ul: np.ndarray
    base_retx_dl: np.ndarray
    decay_ul: np.ndarray
    decay_dl: np.ndarray

    # -- transport -----------------------------------------------------
    link_capacity_bps: np.ndarray     # (R,)
    hop_latency_ms: np.ndarray        # (R,)
    num_paths: np.ndarray             # (R,) int
    path_hops: np.ndarray             # (W, Pmax) int, padded per world
    link_capacity_w: np.ndarray       # (W,)

    # -- core / edge ---------------------------------------------------
    sgwu_capacity_pps: np.ndarray
    num_sgwu: np.ndarray              # (R,) int
    core_base_latency_ms: np.ndarray
    mean_packet_bits: np.ndarray
    edge_capacity_ups: np.ndarray
    total_ram_gb: np.ndarray
    ram_gb_per_ups: np.ndarray

    # -- channel population -------------------------------------------
    users: np.ndarray                 # (R,) int users per row's slice
    horizon: np.ndarray               # (R,) int episode horizon

    @property
    def num_rows(self) -> int:
        return len(self.names)


def rows_for_network(network, horizon: int,
                     world: int = 0) -> SliceRows:
    """Build the static row constants of one world's current slices.

    ``network`` is an :class:`~repro.sim.network.EndToEndNetwork`;
    rows follow ``network.slice_names`` order (managed and background
    churn slices alike -- the caller masks, exactly as the scalar
    simulator reports only managed slices).
    """
    cfg = network.cfg
    phy = network.cell.phy
    names = list(network.slice_names)
    specs = [network.slices[name] for name in names]
    n = len(names)

    def const(value, dtype=np.float64):
        return np.full(n, value, dtype=dtype)

    hops = np.asarray(
        [network.fabric.path_hops(k)
         for k in range(network.fabric.num_paths)], dtype=np.intp)
    return SliceRows(
        names=names,
        metrics=[spec.sla.metric for spec in specs],
        world=np.full(n, world, dtype=np.intp),
        num_worlds=world + 1,
        app=np.asarray([APP_CODES[spec.app] for spec in specs],
                       dtype=np.intp),
        max_arrival=np.asarray([spec.max_arrival_rate
                                for spec in specs]),
        ul_bits=np.asarray([spec.uplink_payload_bits
                            for spec in specs]),
        dl_bits=np.asarray([spec.downlink_payload_bits
                            for spec in specs]),
        sum_bits=np.asarray([spec.uplink_payload_bits
                             + spec.downlink_payload_bits
                             for spec in specs]),
        compute_units=np.asarray([spec.compute_units
                                  for spec in specs]),
        sla_target=np.asarray([spec.sla.target for spec in specs]),
        cost_threshold=np.asarray([spec.sla.cost_threshold
                                   for spec in specs]),
        lower_better=np.asarray([spec.sla.lower_is_better
                                 for spec in specs], dtype=bool),
        ul_prbs_total=const(network.cell.uplink_prbs),
        dl_prbs_total=const(network.cell.downlink_prbs),
        prb_bandwidth_hz=const(cfg.ran.prb_bandwidth_hz),
        uplink_fraction=const(cfg.ran.uplink_fraction),
        downlink_fraction=const(cfg.ran.downlink_fraction),
        overhead=const(cfg.ran.overhead),
        fixed_mcs=const(cfg.ran.fixed_mcs, dtype=np.intp),
        ran_base_latency_ms=const(cfg.ran.base_latency_ms),
        base_retx_ul=const(phy.base_retx_ul),
        base_retx_dl=const(phy.base_retx_dl),
        decay_ul=const(phy.uplink_bler_decay),
        decay_dl=const(phy.downlink_bler_decay),
        link_capacity_bps=const(cfg.transport.link_capacity_bps),
        hop_latency_ms=const(cfg.transport.hop_latency_ms),
        num_paths=const(network.fabric.num_paths, dtype=np.intp),
        path_hops=hops[None, :],
        link_capacity_w=np.asarray([cfg.transport.link_capacity_bps]),
        sgwu_capacity_pps=const(cfg.core.sgwu_capacity_pps),
        num_sgwu=const(cfg.core.num_sgwu_per_slice, dtype=np.intp),
        core_base_latency_ms=const(cfg.core.base_latency_ms),
        mean_packet_bits=const(cfg.core.mean_packet_bits),
        edge_capacity_ups=const(cfg.edge.compute_capacity_ups),
        total_ram_gb=const(cfg.edge.total_ram_gb),
        ram_gb_per_ups=const(cfg.edge.ram_gb_per_ups),
        users=const(cfg.users_per_slice, dtype=np.intp),
        horizon=const(horizon, dtype=np.intp),
    )


def concat_rows(parts: Sequence[SliceRows]) -> SliceRows:
    """Concatenate per-world row bundles into one multi-world bundle.

    World indices are renumbered 0..W-1 in ``parts`` order; the
    per-world path-hops tables are padded to the widest path count.
    """
    if not parts:
        raise ValueError("need at least one world")
    pmax = max(part.path_hops.shape[1] for part in parts)
    hop_tables = []
    for part in parts:
        table = part.path_hops
        if table.shape[1] < pmax:
            pad = np.zeros((table.shape[0], pmax - table.shape[1]),
                           dtype=table.dtype)
            table = np.concatenate([table, pad], axis=1)
        hop_tables.append(table)
    world = np.concatenate([
        np.full(part.num_rows, index, dtype=np.intp)
        for index, part in enumerate(parts)])

    def cat(field):
        return np.concatenate([getattr(part, field) for part in parts])

    return SliceRows(
        names=[name for part in parts for name in part.names],
        metrics=[m for part in parts for m in part.metrics],
        world=world,
        num_worlds=len(parts),
        app=cat("app"),
        max_arrival=cat("max_arrival"),
        ul_bits=cat("ul_bits"),
        dl_bits=cat("dl_bits"),
        sum_bits=cat("sum_bits"),
        compute_units=cat("compute_units"),
        sla_target=cat("sla_target"),
        cost_threshold=cat("cost_threshold"),
        lower_better=cat("lower_better"),
        ul_prbs_total=cat("ul_prbs_total"),
        dl_prbs_total=cat("dl_prbs_total"),
        prb_bandwidth_hz=cat("prb_bandwidth_hz"),
        uplink_fraction=cat("uplink_fraction"),
        downlink_fraction=cat("downlink_fraction"),
        overhead=cat("overhead"),
        fixed_mcs=cat("fixed_mcs"),
        ran_base_latency_ms=cat("ran_base_latency_ms"),
        base_retx_ul=cat("base_retx_ul"),
        base_retx_dl=cat("base_retx_dl"),
        decay_ul=cat("decay_ul"),
        decay_dl=cat("decay_dl"),
        link_capacity_bps=cat("link_capacity_bps"),
        hop_latency_ms=cat("hop_latency_ms"),
        num_paths=cat("num_paths"),
        path_hops=np.concatenate(hop_tables, axis=0),
        link_capacity_w=cat("link_capacity_w"),
        sgwu_capacity_pps=cat("sgwu_capacity_pps"),
        num_sgwu=cat("num_sgwu"),
        core_base_latency_ms=cat("core_base_latency_ms"),
        mean_packet_bits=cat("mean_packet_bits"),
        edge_capacity_ups=cat("edge_capacity_ups"),
        total_ram_gb=cat("total_ram_gb"),
        ram_gb_per_ups=cat("ram_gb_per_ups"),
        users=cat("users"),
        horizon=cat("horizon"),
    )


@dataclass
class WorldConditions:
    """Per-world transport fault-injection state for one slot."""

    capacity_scale: np.ndarray          # (W,)
    extra_latency_ms: np.ndarray        # (W,)
    background_load_fraction: np.ndarray  # (W,)

    @classmethod
    def nominal(cls, num_worlds: int) -> "WorldConditions":
        return cls(capacity_scale=np.ones(num_worlds),
                   extra_latency_ms=np.zeros(num_worlds),
                   background_load_fraction=np.zeros(num_worlds))

    @classmethod
    def from_fabrics(cls, fabrics) -> "WorldConditions":
        return cls(
            capacity_scale=np.asarray(
                [fabric.capacity_scale for fabric in fabrics]),
            extra_latency_ms=np.asarray(
                [fabric.extra_latency_ms for fabric in fabrics]),
            background_load_fraction=np.asarray(
                [fabric.background_load_fraction for fabric in fabrics]))


def _seq_user_sum(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Sum over the user axis in strict left-to-right order.

    Mirrors the scalar per-user ``+=`` accumulation; masked (padded)
    entries contribute exactly 0.0, which is addition-neutral for the
    non-negative quantities summed here.
    """
    total = np.zeros(values.shape[0])
    for j in range(values.shape[1]):
        total = total + np.where(mask[:, j], values[:, j], 0.0)
    return total


def evaluate_rows(rows: SliceRows, cond: WorldConditions,
                  actions: np.ndarray, rates: np.ndarray,
                  cqi: np.ndarray, margin_db: np.ndarray
                  ) -> Dict[str, np.ndarray]:
    """Evaluate one configuration slot for every row at once.

    Parameters
    ----------
    rows / cond:
        Static row constants and this slot's per-world transport
        conditions.
    actions:
        ``(R, NUM_ACTIONS)`` raw caller actions (pre-clip, as handed to
        the scalar ``evaluate_slot`` -- Eq. 9 usage is computed on the
        raw values, allocation decoding clips internally).
    rates:
        ``(R,)`` realised arrivals/s.
    cqi / margin_db:
        ``(R, Umax)`` per-user CQI and channel margin (current SNR
        minus per-user mean), padded past ``rows.users`` per row.

    Returns a dict of ``(R,)`` arrays (plus the ``(W, Pmax)`` transport
    ``path_loads`` for state write-back) covering every
    :class:`~repro.sim.network.SlotReport` field.

    Profiling: when a :class:`~repro.obs.profile.KernelProfiler` is
    active (and samples this call), each kernel-stage boundary below
    records a lap -- wall time and, optionally, net allocations -- so
    ``repro obs profile`` can attribute slot cost per kernel.  The
    laps never touch the arrays, so the parity contract is unaffected;
    when profiling is off the hook is one module-global read.
    """
    lap = _profile_begin()
    raw = np.asarray(actions, dtype=np.float64)
    if raw.shape != (rows.num_rows, NUM_ACTIONS):
        raise ValueError(
            f"actions must have shape ({rows.num_rows}, {NUM_ACTIONS})"
            f", got {raw.shape}")
    arr = np.clip(raw, 0.0, 1.0)

    # ---- action decode (SliceAllocation.from_action) -----------------
    ul_bw = np.maximum(arr[:, 0], _MIN_SHARE)
    dl_bw = np.maximum(arr[:, 3], _MIN_SHARE)
    ul_off = np.rint(arr[:, 1] * MAX_MCS_OFFSET).astype(np.intp)
    dl_off = np.rint(arr[:, 4] * MAX_MCS_OFFSET).astype(np.intp)
    ul_sched = np.clip(arr[:, 2] * 3, 0, 2).astype(np.intp)
    dl_sched = np.clip(arr[:, 5] * 3, 0, 2).astype(np.intp)
    tn_bw = np.maximum(arr[:, 6], _MIN_SHARE)
    tn_path = np.clip(arr[:, 7] * rows.num_paths, 0,
                      rows.num_paths - 1).astype(np.intp)
    cpu = np.maximum(arr[:, 8], _MIN_SHARE)
    ram = np.maximum(arr[:, 9], _MIN_SHARE)

    user_mask = (np.arange(cqi.shape[1])[None, :]
                 < rows.users[:, None])
    if lap is not None:
        lap.lap("decode")

    # ---- RAN capacities (RadioCell.slice_capacity, vectorised) -------
    ul = _radio_direction(rows, ul_bw, ul_off, ul_sched, cqi,
                          margin_db, user_mask, uplink=True)
    dl = _radio_direction(rows, dl_bw, dl_off, dl_sched, cqi,
                          margin_db, user_mask, uplink=False)
    if lap is not None:
        lap.lap("radio")

    # ---- transport (TransportFabric reserve + evaluate) --------------
    eff_cap_w = rows.link_capacity_w * cond.capacity_scale
    eff_cap = eff_cap_w[rows.world]
    loads = (cond.background_load_fraction
             * eff_cap_w)[:, None] * np.ones(
                 (1, rows.path_hops.shape[1]))
    np.add.at(loads, (rows.world, tn_path), tn_bw * eff_cap)
    offered_bps = rates * rows.sum_bits
    tn_cap = np.clip(tn_bw, 0.0, 1.0) * eff_cap
    utilization = np.minimum(loads[rows.world, tn_path] / eff_cap,
                             0.99)
    queueing_ms = (rows.hop_latency_ms * utilization
                   / (1.0 - utilization))
    hops = rows.path_hops[rows.world, tn_path]
    tn_latency = (hops * rows.hop_latency_ms + queueing_ms
                  + cond.extra_latency_ms[rows.world])
    tn_latency = np.where((tn_cap <= 0) & (offered_bps > 0),
                          np.inf, tn_latency)
    if lap is not None:
        lap.lap("transport")

    # ---- core (CoreNetwork.set_slice_resources + evaluate) -----------
    per_cpu = np.clip(cpu, 0.0, 1.0) / rows.num_sgwu
    cpu_total = np.zeros(rows.num_rows)
    for j in range(int(rows.num_sgwu.max())):
        cpu_total = cpu_total + np.where(j < rows.num_sgwu,
                                         per_cpu, 0.0)
    core_mu = cpu_total * rows.sgwu_capacity_pps
    core_lam = offered_bps / rows.mean_packet_bits
    with np.errstate(divide="ignore", invalid="ignore"):
        core_util = np.where(core_mu > 0, core_lam / core_mu,
                             np.where(core_lam > 0, 1.0, 0.0))
        core_latency = np.where(
            core_mu > 0,
            rows.core_base_latency_ms
            + queueing_latency_rows(1e3 / np.where(core_mu > 0,
                                                   core_mu, 1.0),
                                    core_util),
            np.inf)
    core_pps = np.where(core_mu > 0, core_mu, 0.0)
    core_util_capped = np.minimum(core_util, 1.0)
    if lap is not None:
        lap.lap("core")

    # ---- edge (EdgeServerPool.set_resources + evaluate) --------------
    edge_cpu = np.clip(cpu, 0.0, 1.0)
    edge_ram_gb = np.clip(ram, 0.0, 1.0) * rows.total_ram_gb
    work_rate = (rates * rows.compute_units) * 1.0
    edge_mu = edge_cpu * rows.edge_capacity_ups
    required_ram = work_rate * rows.ram_gb_per_ups
    with np.errstate(divide="ignore", invalid="ignore"):
        ram_penalty = np.where(
            (required_ram > 0) & (edge_ram_gb < required_ram),
            np.maximum(edge_ram_gb / np.where(required_ram > 0,
                                              required_ram, 1.0),
                       0.1),
            1.0)
    edge_mu_eff = edge_mu * ram_penalty
    with np.errstate(divide="ignore", invalid="ignore"):
        edge_util = np.where(edge_mu_eff > 0,
                             work_rate / np.where(edge_mu_eff > 0,
                                                  edge_mu_eff, 1.0),
                             np.where(work_rate > 0, 1.0, 0.0))
        edge_latency = np.where(
            edge_mu_eff > 0,
            queueing_latency_rows(
                1e3 / np.where(edge_mu_eff > 0, edge_mu_eff, 1.0)
                * 1.0,
                edge_util),
            np.where(work_rate > 0, np.inf, 0.0))
    edge_util_capped = np.minimum(edge_util, 1.0)
    if lap is not None:
        lap.lap("edge")

    # ---- applications (repro.sim.apps, vectorised per app) -----------
    value, satisfaction = _evaluate_apps(
        rows, rates, ul["capacity"], dl["capacity"], ul["retx"],
        dl["retx"], tn_cap, tn_latency, core_latency, core_pps,
        edge_latency)
    cost = 1.0 - satisfaction
    if lap is not None:
        lap.lap("apps")

    # ---- usage + state features --------------------------------------
    usage = np.zeros(rows.num_rows)
    for col in _USAGE_COLS:
        usage = usage + raw[:, col]
    usage = usage / len(_USAGE_COLS)
    radio_usage = 0.5 * (ul_bw + dl_bw)
    workload = 0.5 * (core_util_capped + edge_util_capped)
    cqi_sum = _seq_user_sum(cqi.astype(np.float64), user_mask)
    channel_quality = (cqi_sum / rows.users) / NUM_CQI
    if lap is not None:
        lap.lap("state")

    return {
        "value": value,
        "satisfaction": satisfaction,
        "cost": cost,
        "usage": usage,
        "radio_usage": radio_usage,
        "workload": workload,
        "ul_capacity_bps": ul["capacity"],
        "dl_capacity_bps": dl["capacity"],
        "ul_retx": ul["retx"],
        "dl_retx": dl["retx"],
        "transport_latency_ms": tn_latency,
        "transport_rate_bps": tn_cap,
        "core_latency_ms": core_latency,
        "edge_latency_ms": edge_latency,
        "channel_quality": channel_quality,
        "path_loads": loads,
    }


def _radio_direction(rows: SliceRows, share: np.ndarray,
                     mcs_offset: np.ndarray, scheduler: np.ndarray,
                     cqi: np.ndarray, margin_db: np.ndarray,
                     user_mask: np.ndarray,
                     uplink: bool) -> Dict[str, np.ndarray]:
    """One direction of ``RadioCell.slice_capacity`` for all rows."""
    total = rows.ul_prbs_total if uplink else rows.dl_prbs_total
    duty = rows.uplink_fraction if uplink else rows.downlink_fraction
    base_retx = rows.base_retx_ul if uplink else rows.base_retx_dl
    decay = rows.decay_ul if uplink else rows.decay_dl

    prbs = np.rint(np.clip(share, 0.0, 1.0) * total)
    prbs = np.where((share > 1e-3) & (prbs == 0), 1.0, prbs)

    # per-user effective MCS and first-transmission error probability
    vanilla = np.clip(2 * cqi - 2, 0, NUM_MCS - 1)
    base_mcs = np.where(rows.fixed_mcs[:, None] >= 0,
                        rows.fixed_mcs[:, None], vanilla)
    mcs = np.clip(base_mcs - mcs_offset[:, None], 0, NUM_MCS - 1)
    eff = _MCS_EFF[mcs]
    retx = (base_retx[:, None]
            * np.power(decay[:, None],
                       mcs_offset[:, None].astype(np.float64)))
    retx = retx * np.power(10.0, -margin_db / 6.0)
    retx = np.clip(retx, 1e-9, 0.99)
    goodput = eff * (1.0 - retx) / (1.0 + retx)

    retx_mean = _seq_user_sum(retx, user_mask) / rows.users
    good_sum = _seq_user_sum(goodput, user_mask)
    mean_eff = good_sum / rows.users
    best_eff = np.where(user_mask, goodput, -np.inf).max(axis=1)
    agg = np.where(
        scheduler == 0, mean_eff,
        np.where(scheduler == 2,
                 0.9 * best_eff + 0.1 * mean_eff,
                 0.6 * best_eff + 0.4 * mean_eff))
    capacity = (prbs * rows.prb_bandwidth_hz * duty * agg
                * (1.0 - rows.overhead))
    return {"capacity": capacity, "retx": retx_mean, "prbs": prbs}


def _mm1_rows(payload_bits: np.ndarray, capacity_bps: np.ndarray,
              demand_bps: np.ndarray) -> np.ndarray:
    """Vectorised ``repro.sim.apps._mm1_latency_ms``."""
    safe_cap = np.where(capacity_bps > 0, capacity_bps, 1.0)
    rho = demand_bps / safe_cap
    service_ms = payload_bits / safe_cap * 1e3
    latency = queueing_latency_rows(service_ms, rho)
    return np.where(capacity_bps > 0, latency, np.inf)


def _satisfaction_rows(rows: SliceRows,
                       measured: np.ndarray) -> np.ndarray:
    """Vectorised ``repro.sim.apps._satisfaction`` (both orientations)."""
    target = rows.sla_target
    safe = np.where(measured > 0, measured, 1.0)
    with np.errstate(invalid="ignore"):
        lower_ratio = np.where(
            measured <= 0, 1.0,
            np.where(np.isfinite(measured), target / safe, 0.0))
        higher_ratio = measured / target
    ratio = np.where(rows.lower_better, lower_ratio, higher_ratio)
    return np.clip(ratio, 0.0, 1.0)


def _evaluate_apps(rows: SliceRows, rates: np.ndarray,
                   ul_cap: np.ndarray, dl_cap: np.ndarray,
                   ul_retx: np.ndarray, dl_retx: np.ndarray,
                   tn_rate: np.ndarray, tn_latency: np.ndarray,
                   core_latency: np.ndarray, core_pps: np.ndarray,
                   edge_latency: np.ndarray):
    """Dispatch the per-app performance models over all rows at once."""
    value = np.zeros(rows.num_rows)

    # MAR: round-trip frame latency ------------------------------------
    ul_demand = rates * rows.ul_bits
    dl_demand = rates * rows.dl_bits
    effective_ul = np.where(tn_rate > 0,
                            np.minimum(ul_cap, tn_rate), 0.0)
    ul_ms = _mm1_rows(rows.ul_bits, effective_ul, ul_demand)
    dl_ms = _mm1_rows(rows.dl_bits, dl_cap, dl_demand)
    harq_ms = 8.0 * (ul_retx + dl_retx)
    mar_latency = (rows.ran_base_latency_ms + ul_ms + dl_ms + harq_ms
                   + tn_latency + core_latency + edge_latency)

    # HVS: delivered FPS -----------------------------------------------
    target_fps = rows.sla_target
    hvs_demand = (rates * target_fps) * rows.dl_bits
    core_bps = core_pps * rows.mean_packet_bits
    supply = np.minimum(np.minimum(dl_cap, tn_rate), core_bps)
    safe_demand = np.where(hvs_demand > 0, hvs_demand, 1.0)
    hvs_fps = target_fps * np.minimum(supply / safe_demand, 1.0)
    hvs_fps = hvs_fps * (1.0 - 0.5 * dl_retx)
    hvs_fps = np.where(hvs_demand <= 0, target_fps, hvs_fps)

    # RDC: radio transmission reliability ------------------------------
    msg_bps = rates * rows.ul_bits
    radio_ok = (1.0 - ul_retx) * (1.0 - dl_retx)
    safe_msg = np.where(msg_bps > 0, msg_bps, 1.0)
    ul_carried = np.where(msg_bps > 0,
                          np.minimum(ul_cap / safe_msg, 1.0), 1.0)
    dl_carried = np.where(msg_bps > 0,
                          np.minimum(dl_cap / safe_msg, 1.0), 1.0)
    reliability = radio_ok * ul_carried * dl_carried

    value = np.where(rows.app == APP_CODES["mar"], mar_latency, value)
    value = np.where(rows.app == APP_CODES["hvs"], hvs_fps, value)
    value = np.where(rows.app == APP_CODES["rdc"], reliability, value)
    satisfaction = _satisfaction_rows(rows, value)
    return value, satisfaction
