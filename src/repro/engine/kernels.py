"""Vectorised slot kernels: the paper's MDP as flat array math.

This module is the numeric core of the batched engine.  It evaluates
one configuration slot for ``R`` (world, slice) *rows* at once -- the
per-slice scalar pipeline of :mod:`repro.sim.network`,
:mod:`repro.sim.ran`, :mod:`repro.sim.phy`, :mod:`repro.sim.apps`,
:mod:`repro.sim.queueing` and the container/core/edge models, extracted
into numpy kernels.  A row bundle may hold one world's slices (the
scalar :class:`~repro.sim.env.ScenarioSimulator`, which routes its
``step`` through these kernels with ``R = S``) or every slice of every
world in a :class:`~repro.engine.batch.BatchSimulator` (``R = sum_b
S_b``).

Parity contract
---------------
Every kernel replicates the *operation order* of the historical scalar
code (association of sums/products, clip bounds, branch structure,
reduction order for the small per-slice user populations), so a row
evaluated alone is bit-identical to the same row evaluated inside a
larger batch: numpy elementwise ufuncs are value-deterministic
regardless of array length, and the only cross-row reductions
(transport path loads) accumulate with ``np.add.at`` in row order --
the same order the scalar loop reserved meters in.  The engine parity
suite (``tests/test_engine.py``) asserts this bit-exactness against
the scalar simulator for every catalog scenario.

Arena discipline
~~~~~~~~~~~~~~~~
Every temporary is drawn from a :class:`~repro.engine.arena
.KernelArena` and written through ``out=`` ufunc arguments, so a
warmed arena serves the whole pass with zero heap array allocations
(``tests/test_engine_alloc.py``).  None of this changes any computed
bit, because the rewrites are limited to:

* **out= placement.** An elementwise ufunc produces the same bits no
  matter which buffer receives the result; chains like
  ``eff * (1 - retx) / (1 + retx)`` keep their exact association and
  merely reuse buffers between steps.
* **Selection, not arithmetic.** ``np.where(c, a, b)`` becomes
  ``copyto(out, b); copyto(out, a, where=c)`` -- a pure element
  selection, identical for every value including ``inf``/``nan``.
* **Masked strict-order sums.** The scalar-mirroring left-to-right
  accumulations (user axis, SGW-U instances) replace ``+ np.where(m,
  v, 0.0)`` with ``np.add(acc, v, out=acc, where=m)``.  Skipping a
  masked lane is bit-identical to adding ``0.0`` here: accumulators
  start at ``+0.0`` and every summand is non-negative, so ``acc +
  0.0 == acc`` exactly (no ``-0.0`` can arise).
* **Masked max.** ``np.where(mask, goodput, -inf).max(axis=1)``
  becomes ``np.max(goodput, axis=1, initial=-inf, where=mask)`` --
  the same elements enter the same max reduction (goodput is always
  finite: retx is clipped to ``[1e-9, 0.99]``).
* **Gathers.** Fancy-indexed lookups (MCS table, per-world scalars,
  path loads/hops) become ``np.take(..., out=)`` over the identical
  flat row-major indices.

Fusions
~~~~~~~
The fused chains below eliminate redundant *passes*, never reassociate
a float expression; each is bit-exact for the stated reason:

* ``-margin_db / 6.0`` is computed as ``margin_db / -6.0`` (IEEE sign
  manipulation is exact: both equal ``-(margin_db / 6.0)`` bitwise).
* The per-user retx margin factor ``10 ** (-margin_db / 6)`` and the
  MCS base table (``clip(2*cqi - 2)`` overridden by ``fixed_mcs``)
  are direction-independent, so they are computed once and shared by
  the uplink and downlink radio passes (the historical code evaluated
  the identical expression twice).
* ``msg_bps`` in the RDC model reuses the MAR ``ul_demand`` buffer:
  both are exactly ``rates * ul_bits``.
* Multiplications by the literal ``1.0`` (edge ``work_rate * 1.0``,
  edge service time ``* 1.0``, and the ``* np.ones((1, P))``
  broadcast in the transport load seed) are dropped: ``x * 1.0 == x``
  bitwise for every float, so the seed is a broadcast copy.
* Row constants derived from static :class:`SliceRows` fields
  (``1 - overhead``, float casts of the integer ``users`` /
  ``num_paths`` / ``num_sgwu`` columns, app masks, padded-user masks)
  are cached per layout via :meth:`KernelArena.static`; integer ->
  float64/float32 casts of these small counts are exact, and numpy
  performs the identical promotion inside the historical mixed-dtype
  expressions.

Precision tiers: a float64 arena (the default, and the only
digest-bearing configuration) reproduces the scalar pipeline
bit-for-bit; a float32 arena evaluates the same operation sequence in
single precision for the opt-in ``vector-fast`` engine, with
:meth:`KernelArena.rows_view` supplying cast row constants.  The fast
tier's agreement with the float64 oracle is tolerance-checked, never
digest-pinned (``tests/test_engine_fast.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import (
    MAX_MCS_OFFSET,
    NUM_ACTIONS,
    USAGE_ACTION_INDICES,
)
from repro.engine.arena import KernelArena
from repro.obs.profile import begin as _profile_begin
from repro.sim.phy import MCS_TABLE, NUM_CQI, NUM_MCS
from repro.sim.queueing import RHO_KNEE

#: MCS spectral-efficiency table as an array (same values as the
#: scalar lookups in :mod:`repro.sim.phy`).
_MCS_EFF = np.asarray(MCS_TABLE, dtype=np.float64)
_MCS_EFF_F32 = _MCS_EFF.astype(np.float32)

#: Usage-counted action columns (paper Eq. 9).
_USAGE_COLS = np.asarray(USAGE_ACTION_INDICES, dtype=np.intp)

#: Consumable-share floor (mirrors SliceAllocation.MIN_SHARE).
_MIN_SHARE = 0.01

#: Application codes used by the row layout.
APP_CODES: Dict[str, int] = {"mar": 0, "hvs": 1, "rdc": 2}

#: Monotonic SliceRows layout tokens (arena cache keys -- unlike
#: ``id()``, never reused after churn frees a bundle).
_ROWS_UIDS = itertools.count(1)


def _queueing_rows(service_ms: np.ndarray, rho: np.ndarray,
                   a: KernelArena) -> np.ndarray:
    """Arena form of :func:`queueing_latency_rows` (same bits).

    When the arena carries a compiled queueing kernel (the numba tier
    of ``vector-fast``, see :mod:`repro.engine.fastpath`) the seven
    ufunc passes collapse into one fused loop; that hook only exists
    on non-digest-bearing float32 arenas.
    """
    shape = rho.shape
    jit = getattr(a, "jit", None)
    if jit is not None and service_ms.shape == shape \
            and service_ms.flags.c_contiguous and rho.flags.c_contiguous:
        out = a.take(shape)
        jit(service_ms.ravel(), rho.ravel(), out.ravel())
        return out
    r = a.take(shape)
    np.maximum(rho, 0.0, out=r)
    with np.errstate(divide="ignore", invalid="ignore"):
        d = a.take(shape)
        np.subtract(1.0, r, out=d)
        below = a.take(shape)
        np.divide(service_ms, d, out=below)
        knee = a.take(shape)
        np.divide(service_ms, (1.0 - RHO_KNEE), out=knee)
        slope = a.take(shape)
        np.divide(service_ms, (1.0 - RHO_KNEE) ** 2, out=slope)
        np.subtract(r, RHO_KNEE, out=d)
        np.multiply(slope, d, out=d)
        np.add(knee, d, out=d)                       # above
    bk = a.take(shape, bool)
    np.less(r, RHO_KNEE, out=bk)
    out = a.take(shape)
    np.copyto(out, d)
    np.copyto(out, below, where=bk)
    return out


def queueing_latency_rows(service_ms: np.ndarray,
                          rho: np.ndarray) -> np.ndarray:
    """Vectorised :func:`repro.sim.queueing.queueing_latency_ms`.

    M/M/1 below the knee utilisation, the linear finite-buffer overload
    regime above it -- branch structure and float association exactly
    as the scalar function.
    """
    service_ms = np.asarray(service_ms, dtype=np.float64)
    rho = np.asarray(rho, dtype=np.float64)
    arena = KernelArena()
    arena.begin(("queueing_latency_rows", rho.shape))
    return _queueing_rows(service_ms, rho, arena)


@dataclass
class SliceRows:
    """Static per-row constants for a set of (world, slice) rows.

    Built once per world from its :class:`~repro.sim.network
    .EndToEndNetwork` (and rebuilt only on slice churn), then
    concatenated across worlds by the batch engine.  All arrays are
    length ``R`` except the per-world tables noted below.
    """

    # -- identity ------------------------------------------------------
    names: List[str]                  # row slice names, world-major
    metrics: List[str]                # SLA metric name per row
    world: np.ndarray                 # (R,) world index of each row
    num_worlds: int

    # -- slice/application constants ----------------------------------
    app: np.ndarray                   # (R,) APP_CODES
    max_arrival: np.ndarray
    ul_bits: np.ndarray
    dl_bits: np.ndarray
    sum_bits: np.ndarray              # ul_bits + dl_bits (pre-added)
    compute_units: np.ndarray
    sla_target: np.ndarray
    cost_threshold: np.ndarray
    lower_better: np.ndarray          # (R,) bool

    # -- RAN / PHY (row-expanded world constants) ----------------------
    ul_prbs_total: np.ndarray
    dl_prbs_total: np.ndarray
    prb_bandwidth_hz: np.ndarray
    uplink_fraction: np.ndarray
    downlink_fraction: np.ndarray
    overhead: np.ndarray
    fixed_mcs: np.ndarray             # (R,) int (-1: link adaptation)
    ran_base_latency_ms: np.ndarray
    base_retx_ul: np.ndarray
    base_retx_dl: np.ndarray
    decay_ul: np.ndarray
    decay_dl: np.ndarray

    # -- transport -----------------------------------------------------
    link_capacity_bps: np.ndarray     # (R,)
    hop_latency_ms: np.ndarray        # (R,)
    num_paths: np.ndarray             # (R,) int
    path_hops: np.ndarray             # (W, Pmax) int, padded per world
    link_capacity_w: np.ndarray       # (W,)

    # -- core / edge ---------------------------------------------------
    sgwu_capacity_pps: np.ndarray
    num_sgwu: np.ndarray              # (R,) int
    core_base_latency_ms: np.ndarray
    mean_packet_bits: np.ndarray
    edge_capacity_ups: np.ndarray
    total_ram_gb: np.ndarray
    ram_gb_per_ups: np.ndarray

    # -- channel population -------------------------------------------
    users: np.ndarray                 # (R,) int users per row's slice
    horizon: np.ndarray               # (R,) int episode horizon

    #: Unique layout token; :func:`evaluate_rows` keys its arena on
    #: this, so churn-rebuilt bundles always reset the buffer pools.
    uid: int = field(default_factory=lambda: next(_ROWS_UIDS))

    @property
    def num_rows(self) -> int:
        return len(self.names)


def rows_for_network(network, horizon: int,
                     world: int = 0) -> SliceRows:
    """Build the static row constants of one world's current slices.

    ``network`` is an :class:`~repro.sim.network.EndToEndNetwork`;
    rows follow ``network.slice_names`` order (managed and background
    churn slices alike -- the caller masks, exactly as the scalar
    simulator reports only managed slices).
    """
    cfg = network.cfg
    phy = network.cell.phy
    names = list(network.slice_names)
    specs = [network.slices[name] for name in names]
    n = len(names)

    def const(value, dtype=np.float64):
        return np.full(n, value, dtype=dtype)

    hops = np.asarray(
        [network.fabric.path_hops(k)
         for k in range(network.fabric.num_paths)], dtype=np.intp)
    return SliceRows(
        names=names,
        metrics=[spec.sla.metric for spec in specs],
        world=np.full(n, world, dtype=np.intp),
        num_worlds=world + 1,
        app=np.asarray([APP_CODES[spec.app] for spec in specs],
                       dtype=np.intp),
        max_arrival=np.asarray([spec.max_arrival_rate
                                for spec in specs]),
        ul_bits=np.asarray([spec.uplink_payload_bits
                            for spec in specs]),
        dl_bits=np.asarray([spec.downlink_payload_bits
                            for spec in specs]),
        sum_bits=np.asarray([spec.uplink_payload_bits
                             + spec.downlink_payload_bits
                             for spec in specs]),
        compute_units=np.asarray([spec.compute_units
                                  for spec in specs]),
        sla_target=np.asarray([spec.sla.target for spec in specs]),
        cost_threshold=np.asarray([spec.sla.cost_threshold
                                   for spec in specs]),
        lower_better=np.asarray([spec.sla.lower_is_better
                                 for spec in specs], dtype=bool),
        ul_prbs_total=const(network.cell.uplink_prbs),
        dl_prbs_total=const(network.cell.downlink_prbs),
        prb_bandwidth_hz=const(cfg.ran.prb_bandwidth_hz),
        uplink_fraction=const(cfg.ran.uplink_fraction),
        downlink_fraction=const(cfg.ran.downlink_fraction),
        overhead=const(cfg.ran.overhead),
        fixed_mcs=const(cfg.ran.fixed_mcs, dtype=np.intp),
        ran_base_latency_ms=const(cfg.ran.base_latency_ms),
        base_retx_ul=const(phy.base_retx_ul),
        base_retx_dl=const(phy.base_retx_dl),
        decay_ul=const(phy.uplink_bler_decay),
        decay_dl=const(phy.downlink_bler_decay),
        link_capacity_bps=const(cfg.transport.link_capacity_bps),
        hop_latency_ms=const(cfg.transport.hop_latency_ms),
        num_paths=const(network.fabric.num_paths, dtype=np.intp),
        path_hops=hops[None, :],
        link_capacity_w=np.asarray([cfg.transport.link_capacity_bps]),
        sgwu_capacity_pps=const(cfg.core.sgwu_capacity_pps),
        num_sgwu=const(cfg.core.num_sgwu_per_slice, dtype=np.intp),
        core_base_latency_ms=const(cfg.core.base_latency_ms),
        mean_packet_bits=const(cfg.core.mean_packet_bits),
        edge_capacity_ups=const(cfg.edge.compute_capacity_ups),
        total_ram_gb=const(cfg.edge.total_ram_gb),
        ram_gb_per_ups=const(cfg.edge.ram_gb_per_ups),
        users=const(cfg.users_per_slice, dtype=np.intp),
        horizon=const(horizon, dtype=np.intp),
    )


def concat_rows(parts: Sequence[SliceRows]) -> SliceRows:
    """Concatenate per-world row bundles into one multi-world bundle.

    World indices are renumbered 0..W-1 in ``parts`` order; the
    per-world path-hops tables are padded to the widest path count.
    """
    if not parts:
        raise ValueError("need at least one world")
    pmax = max(part.path_hops.shape[1] for part in parts)
    hop_tables = []
    for part in parts:
        table = part.path_hops
        if table.shape[1] < pmax:
            pad = np.zeros((table.shape[0], pmax - table.shape[1]),
                           dtype=table.dtype)
            table = np.concatenate([table, pad], axis=1)
        hop_tables.append(table)
    world = np.concatenate([
        np.full(part.num_rows, index, dtype=np.intp)
        for index, part in enumerate(parts)])

    def cat(field):
        return np.concatenate([getattr(part, field) for part in parts])

    return SliceRows(
        names=[name for part in parts for name in part.names],
        metrics=[m for part in parts for m in part.metrics],
        world=world,
        num_worlds=len(parts),
        app=cat("app"),
        max_arrival=cat("max_arrival"),
        ul_bits=cat("ul_bits"),
        dl_bits=cat("dl_bits"),
        sum_bits=cat("sum_bits"),
        compute_units=cat("compute_units"),
        sla_target=cat("sla_target"),
        cost_threshold=cat("cost_threshold"),
        lower_better=cat("lower_better"),
        ul_prbs_total=cat("ul_prbs_total"),
        dl_prbs_total=cat("dl_prbs_total"),
        prb_bandwidth_hz=cat("prb_bandwidth_hz"),
        uplink_fraction=cat("uplink_fraction"),
        downlink_fraction=cat("downlink_fraction"),
        overhead=cat("overhead"),
        fixed_mcs=cat("fixed_mcs"),
        ran_base_latency_ms=cat("ran_base_latency_ms"),
        base_retx_ul=cat("base_retx_ul"),
        base_retx_dl=cat("base_retx_dl"),
        decay_ul=cat("decay_ul"),
        decay_dl=cat("decay_dl"),
        link_capacity_bps=cat("link_capacity_bps"),
        hop_latency_ms=cat("hop_latency_ms"),
        num_paths=cat("num_paths"),
        path_hops=np.concatenate(hop_tables, axis=0),
        link_capacity_w=cat("link_capacity_w"),
        sgwu_capacity_pps=cat("sgwu_capacity_pps"),
        num_sgwu=cat("num_sgwu"),
        core_base_latency_ms=cat("core_base_latency_ms"),
        mean_packet_bits=cat("mean_packet_bits"),
        edge_capacity_ups=cat("edge_capacity_ups"),
        total_ram_gb=cat("total_ram_gb"),
        ram_gb_per_ups=cat("ram_gb_per_ups"),
        users=cat("users"),
        horizon=cat("horizon"),
    )


@dataclass
class WorldConditions:
    """Per-world transport fault-injection state for one slot."""

    capacity_scale: np.ndarray          # (W,)
    extra_latency_ms: np.ndarray        # (W,)
    background_load_fraction: np.ndarray  # (W,)

    @classmethod
    def nominal(cls, num_worlds: int) -> "WorldConditions":
        return cls(capacity_scale=np.ones(num_worlds),
                   extra_latency_ms=np.zeros(num_worlds),
                   background_load_fraction=np.zeros(num_worlds))

    @classmethod
    def from_fabrics(cls, fabrics) -> "WorldConditions":
        return cls(
            capacity_scale=np.asarray(
                [fabric.capacity_scale for fabric in fabrics]),
            extra_latency_ms=np.asarray(
                [fabric.extra_latency_ms for fabric in fabrics]),
            background_load_fraction=np.asarray(
                [fabric.background_load_fraction for fabric in fabrics]))

    def refresh(self, fabrics) -> "WorldConditions":
        """Re-read the fabrics into the existing buffers (no allocs).

        Scalar element stores only, so a per-slot caller (the batch
        engine's hot loop) can keep one instance alive instead of
        rebuilding three arrays every slot.
        """
        capacity = self.capacity_scale
        extra = self.extra_latency_ms
        background = self.background_load_fraction
        for index, fabric in enumerate(fabrics):
            capacity[index] = fabric.capacity_scale
            extra[index] = fabric.extra_latency_ms
            background[index] = fabric.background_load_fraction
        return self


def _user_sum_into(values: np.ndarray, mask: np.ndarray,
                   out: np.ndarray) -> np.ndarray:
    """Sum over the user axis in strict left-to-right order.

    Mirrors the scalar per-user ``+=`` accumulation; masked (padded)
    lanes are skipped, which is bit-identical to the historical
    ``+ np.where(mask, values, 0.0)`` because the accumulator starts
    at ``+0.0`` and every summand is non-negative.
    """
    out.fill(0.0)
    for j in range(values.shape[1]):
        np.add(out, values[:, j], out=out, where=mask[:, j])
    return out


def _statics_for(rows: SliceRows, a: KernelArena, num_users: int):
    """Layout-constant derived arrays, built once per arena key."""
    dt = a.dtype

    def s(name, builder):
        return a.static(name, builder)

    pmax = rows.path_hops.shape[1]
    return {
        "user_mask": s("user_mask", lambda: (
            np.arange(num_users)[None, :] < rows.users[:, None])),
        "users_f": s("users_f", lambda: rows.users.astype(dt)),
        "num_paths_f": s("num_paths_f",
                         lambda: rows.num_paths.astype(dt)),
        "paths_hi": s("paths_hi",
                      lambda: (rows.num_paths - 1).astype(dt)),
        "num_sgwu_f": s("num_sgwu_f",
                        lambda: rows.num_sgwu.astype(dt)),
        "max_sgwu": s("max_sgwu", lambda: int(rows.num_sgwu.max())),
        "sgwu_masks": s("sgwu_masks", lambda: [
            j < rows.num_sgwu
            for j in range(int(rows.num_sgwu.max()))]),
        "fixed_on": s("fixed_on",
                      lambda: rows.fixed_mcs[:, None] >= 0),
        "one_minus_overhead": s("one_minus_overhead",
                                lambda: 1.0 - rows.overhead),
        "hops_flat": s("hops_flat", lambda: np.ascontiguousarray(
            rows.path_hops).ravel()),
        "row_flat_base": s("row_flat_base",
                           lambda: rows.world * pmax),
        "app_masks": s("app_masks", lambda: {
            app: rows.app == code for app, code in APP_CODES.items()}),
    }


def _cast_in(value: np.ndarray, a: KernelArena) -> np.ndarray:
    """``value`` in the arena dtype (no copy when it already is)."""
    if value.dtype == a.dtype:
        return value
    out = a.take(value.shape)
    out[...] = value
    return out


def evaluate_rows(rows: SliceRows, cond: WorldConditions,
                  actions: np.ndarray, rates: np.ndarray,
                  cqi: np.ndarray, margin_db: np.ndarray,
                  arena: Optional[KernelArena] = None
                  ) -> Dict[str, np.ndarray]:
    """Evaluate one configuration slot for every row at once.

    Parameters
    ----------
    rows / cond:
        Static row constants and this slot's per-world transport
        conditions.
    actions:
        ``(R, NUM_ACTIONS)`` raw caller actions (pre-clip, as handed to
        the scalar ``evaluate_slot`` -- Eq. 9 usage is computed on the
        raw values, allocation decoding clips internally).
    rates:
        ``(R,)`` realised arrivals/s.
    cqi / margin_db:
        ``(R, Umax)`` per-user CQI and channel margin (current SNR
        minus per-user mean), padded past ``rows.users`` per row.
    arena:
        Persistent :class:`~repro.engine.arena.KernelArena` for
        steady-state zero-allocation evaluation; ``None`` builds a
        transient arena for this call (the historical
        allocate-per-call behaviour, kept for the ``vector-compat``
        reference engine and one-shot callers).  The returned arrays
        are **owned by the arena**: read/copy them before the next
        pass on the same arena overwrites them.

    Returns a dict of ``(R,)`` arrays (plus the ``(W, Pmax)`` transport
    ``path_loads`` for state write-back) covering every
    :class:`~repro.sim.network.SlotReport` field.

    Profiling: when a :class:`~repro.obs.profile.KernelProfiler` is
    active (and samples this call), each kernel-stage boundary below
    records a lap -- wall time and, optionally, net allocations -- so
    ``repro obs profile`` can attribute slot cost per kernel.  The
    laps never touch the arrays, so the parity contract is unaffected;
    when profiling is off the hook is one module-global read.
    """
    lap = _profile_begin()
    a = arena if arena is not None else KernelArena()
    num_rows = rows.num_rows
    num_users = cqi.shape[1]
    a.begin((rows.uid, num_rows, num_users))
    dt = a.dtype
    rows = a.rows_view(rows)
    st = _statics_for(rows, a, num_users)
    R = num_rows

    actions = np.asarray(actions)
    if actions.shape != (R, NUM_ACTIONS):
        raise ValueError(
            f"actions must have shape ({R}, {NUM_ACTIONS})"
            f", got {actions.shape}")
    raw = _cast_in(actions, a)
    rates = _cast_in(np.asarray(rates), a)
    margin_db = _cast_in(np.asarray(margin_db), a)
    cap_scale = _cast_in(cond.capacity_scale, a)
    extra_lat = _cast_in(cond.extra_latency_ms, a)
    bg_load = _cast_in(cond.background_load_fraction, a)

    arr = a.take((R, NUM_ACTIONS))
    np.clip(raw, 0.0, 1.0, out=arr)

    # ---- action decode (SliceAllocation.from_action) -----------------
    ul_bw = a.take(R)
    np.maximum(arr[:, 0], _MIN_SHARE, out=ul_bw)
    dl_bw = a.take(R)
    np.maximum(arr[:, 3], _MIN_SHARE, out=dl_bw)

    def _int_decode(column, scale, lo, hi):
        f = a.take(R)
        np.multiply(column, scale, out=f)
        if lo is None:
            np.rint(f, out=f)
        else:
            np.clip(f, lo, hi, out=f)
        out = a.take(R, np.intp)
        out[...] = f                       # trunc cast, == .astype
        return out

    ul_off = _int_decode(arr[:, 1], MAX_MCS_OFFSET, None, None)
    dl_off = _int_decode(arr[:, 4], MAX_MCS_OFFSET, None, None)
    ul_sched = _int_decode(arr[:, 2], 3, 0, 2)
    dl_sched = _int_decode(arr[:, 5], 3, 0, 2)
    tn_bw = a.take(R)
    np.maximum(arr[:, 6], _MIN_SHARE, out=tn_bw)
    tn_path = _int_decode(arr[:, 7], st["num_paths_f"], 0,
                          st["paths_hi"])
    cpu = a.take(R)
    np.maximum(arr[:, 8], _MIN_SHARE, out=cpu)
    ram = a.take(R)
    np.maximum(arr[:, 9], _MIN_SHARE, out=ram)

    user_mask = st["user_mask"]
    if lap is not None:
        lap.lap("decode")

    # ---- RAN capacities (RadioCell.slice_capacity, vectorised) -------
    # direction-shared terms (see Fusions): margin factor and base MCS
    margin_pow = a.take((R, num_users))
    np.divide(margin_db, -6.0, out=margin_pow)
    np.power(10.0, margin_pow, out=margin_pow)
    base_mcs = a.take((R, num_users), np.intp)
    np.multiply(cqi, 2, out=base_mcs)
    np.subtract(base_mcs, 2, out=base_mcs)
    np.clip(base_mcs, 0, NUM_MCS - 1, out=base_mcs)      # vanilla
    np.copyto(base_mcs, rows.fixed_mcs[:, None],
              where=st["fixed_on"])
    ul = _radio_direction(rows, st, ul_bw, ul_off, ul_sched,
                          base_mcs, margin_pow, user_mask,
                          uplink=True, a=a)
    dl = _radio_direction(rows, st, dl_bw, dl_off, dl_sched,
                          base_mcs, margin_pow, user_mask,
                          uplink=False, a=a)
    if lap is not None:
        lap.lap("radio")

    # ---- transport (TransportFabric reserve + evaluate) --------------
    num_worlds = rows.link_capacity_w.shape[0]
    pmax = rows.path_hops.shape[1]
    eff_cap_w = a.take(num_worlds)
    np.multiply(rows.link_capacity_w, cap_scale, out=eff_cap_w)
    eff_cap = a.take(R)
    np.take(eff_cap_w, rows.world, out=eff_cap)
    seed = a.take(num_worlds)
    np.multiply(bg_load, eff_cap_w, out=seed)
    loads = a.take((num_worlds, pmax))
    np.copyto(loads, seed[:, None])
    reserve = a.take(R)
    np.multiply(tn_bw, eff_cap, out=reserve)
    np.add.at(loads, (rows.world, tn_path), reserve)
    offered_bps = a.take(R)
    np.multiply(rates, rows.sum_bits, out=offered_bps)
    tn_cap = a.take(R)
    np.clip(tn_bw, 0.0, 1.0, out=tn_cap)
    np.multiply(tn_cap, eff_cap, out=tn_cap)
    row_flat = a.take(R, np.intp)
    np.add(st["row_flat_base"], tn_path, out=row_flat)
    utilization = a.take(R)
    np.take(loads.ravel(), row_flat, out=utilization)
    np.divide(utilization, eff_cap, out=utilization)
    np.minimum(utilization, 0.99, out=utilization)
    queueing_ms = a.take(R)
    np.multiply(rows.hop_latency_ms, utilization, out=queueing_ms)
    head = a.take(R)
    np.subtract(1.0, utilization, out=head)
    np.divide(queueing_ms, head, out=queueing_ms)
    hops_i = a.take(R, np.intp)
    np.take(st["hops_flat"], row_flat, out=hops_i)
    hops = a.take(R)
    hops[...] = hops_i
    tn_latency = a.take(R)
    np.multiply(hops, rows.hop_latency_ms, out=tn_latency)
    np.add(tn_latency, queueing_ms, out=tn_latency)
    extra = a.take(R)
    np.take(extra_lat, rows.world, out=extra)
    np.add(tn_latency, extra, out=tn_latency)
    dead = a.take(R, bool)
    np.less_equal(tn_cap, 0, out=dead)
    offering = a.take(R, bool)
    np.greater(offered_bps, 0, out=offering)
    np.logical_and(dead, offering, out=dead)
    np.copyto(tn_latency, np.inf, where=dead)
    if lap is not None:
        lap.lap("transport")

    # ---- core (CoreNetwork.set_slice_resources + evaluate) -----------
    per_cpu = a.take(R)
    np.clip(cpu, 0.0, 1.0, out=per_cpu)
    np.divide(per_cpu, st["num_sgwu_f"], out=per_cpu)
    cpu_total = a.take(R)
    cpu_total.fill(0.0)
    for mask in st["sgwu_masks"]:
        np.add(cpu_total, per_cpu, out=cpu_total, where=mask)
    core_mu = a.take(R)
    np.multiply(cpu_total, rows.sgwu_capacity_pps, out=core_mu)
    core_lam = a.take(R)
    np.divide(offered_bps, rows.mean_packet_bits, out=core_lam)
    has_mu = a.take(R, bool)
    np.greater(core_mu, 0, out=has_mu)
    has_lam = a.take(R, bool)
    np.greater(core_lam, 0, out=has_lam)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = a.take(R)
        np.divide(core_lam, core_mu, out=ratio)
        core_util = a.take(R)
        core_util.fill(0.0)
        np.copyto(core_util, 1.0, where=has_lam)
        np.copyto(core_util, ratio, where=has_mu)
        safe_mu = a.take(R)
        safe_mu.fill(1.0)
        np.copyto(safe_mu, core_mu, where=has_mu)
        service = a.take(R)
        np.divide(1e3, safe_mu, out=service)
        queued = _queueing_rows(service, core_util, a)
        core_latency = a.take(R)
        np.add(rows.core_base_latency_ms, queued, out=core_latency)
        finite = a.take(R)
        np.copyto(finite, core_latency)
        core_latency.fill(np.inf)
        np.copyto(core_latency, finite, where=has_mu)
    core_pps = a.take(R)
    core_pps.fill(0.0)
    np.copyto(core_pps, core_mu, where=has_mu)
    core_util_capped = a.take(R)
    np.minimum(core_util, 1.0, out=core_util_capped)
    if lap is not None:
        lap.lap("core")

    # ---- edge (EdgeServerPool.set_resources + evaluate) --------------
    edge_cpu = a.take(R)
    np.clip(cpu, 0.0, 1.0, out=edge_cpu)
    edge_ram_gb = a.take(R)
    np.clip(ram, 0.0, 1.0, out=edge_ram_gb)
    np.multiply(edge_ram_gb, rows.total_ram_gb, out=edge_ram_gb)
    work_rate = a.take(R)
    np.multiply(rates, rows.compute_units, out=work_rate)
    edge_mu = a.take(R)
    np.multiply(edge_cpu, rows.edge_capacity_ups, out=edge_mu)
    required_ram = a.take(R)
    np.multiply(work_rate, rows.ram_gb_per_ups, out=required_ram)
    needs_ram = a.take(R, bool)
    np.greater(required_ram, 0, out=needs_ram)
    short = a.take(R, bool)
    np.less(edge_ram_gb, required_ram, out=short)
    np.logical_and(needs_ram, short, out=short)
    with np.errstate(divide="ignore", invalid="ignore"):
        safe_ram = a.take(R)
        safe_ram.fill(1.0)
        np.copyto(safe_ram, required_ram, where=needs_ram)
        penalty_val = a.take(R)
        np.divide(edge_ram_gb, safe_ram, out=penalty_val)
        np.maximum(penalty_val, 0.1, out=penalty_val)
        ram_penalty = a.take(R)
        ram_penalty.fill(1.0)
        np.copyto(ram_penalty, penalty_val, where=short)
    edge_mu_eff = a.take(R)
    np.multiply(edge_mu, ram_penalty, out=edge_mu_eff)
    has_eff = a.take(R, bool)
    np.greater(edge_mu_eff, 0, out=has_eff)
    has_work = a.take(R, bool)
    np.greater(work_rate, 0, out=has_work)
    with np.errstate(divide="ignore", invalid="ignore"):
        safe_eff = a.take(R)
        safe_eff.fill(1.0)
        np.copyto(safe_eff, edge_mu_eff, where=has_eff)
        eratio = a.take(R)
        np.divide(work_rate, safe_eff, out=eratio)
        edge_util = a.take(R)
        edge_util.fill(0.0)
        np.copyto(edge_util, 1.0, where=has_work)
        np.copyto(edge_util, eratio, where=has_eff)
        eservice = a.take(R)
        np.divide(1e3, safe_eff, out=eservice)
        equeued = _queueing_rows(eservice, edge_util, a)
        edge_latency = a.take(R)
        edge_latency.fill(0.0)
        np.copyto(edge_latency, np.inf, where=has_work)
        np.copyto(edge_latency, equeued, where=has_eff)
    edge_util_capped = a.take(R)
    np.minimum(edge_util, 1.0, out=edge_util_capped)
    if lap is not None:
        lap.lap("edge")

    # ---- applications (repro.sim.apps, vectorised per app) -----------
    value, satisfaction = _evaluate_apps(
        rows, st, rates, ul["capacity"], dl["capacity"], ul["retx"],
        dl["retx"], tn_cap, tn_latency, core_latency, core_pps,
        edge_latency, a)
    cost = a.take(R)
    np.subtract(1.0, satisfaction, out=cost)
    if lap is not None:
        lap.lap("apps")

    # ---- usage + state features --------------------------------------
    usage = a.take(R)
    usage.fill(0.0)
    for col in _USAGE_COLS:
        np.add(usage, raw[:, col], out=usage)
    np.divide(usage, len(_USAGE_COLS), out=usage)
    radio_usage = a.take(R)
    np.add(ul_bw, dl_bw, out=radio_usage)
    np.multiply(radio_usage, 0.5, out=radio_usage)
    workload = a.take(R)
    np.add(core_util_capped, edge_util_capped, out=workload)
    np.multiply(workload, 0.5, out=workload)
    cqi_f = a.take((R, num_users))
    cqi_f[...] = cqi
    cqi_sum = a.take(R)
    _user_sum_into(cqi_f, user_mask, cqi_sum)
    channel_quality = a.take(R)
    np.divide(cqi_sum, st["users_f"], out=channel_quality)
    np.divide(channel_quality, NUM_CQI, out=channel_quality)
    if lap is not None:
        lap.lap("state")

    return {
        "value": value,
        "satisfaction": satisfaction,
        "cost": cost,
        "usage": usage,
        "radio_usage": radio_usage,
        "workload": workload,
        "ul_capacity_bps": ul["capacity"],
        "dl_capacity_bps": dl["capacity"],
        "ul_retx": ul["retx"],
        "dl_retx": dl["retx"],
        "transport_latency_ms": tn_latency,
        "transport_rate_bps": tn_cap,
        "core_latency_ms": core_latency,
        "edge_latency_ms": edge_latency,
        "channel_quality": channel_quality,
        "path_loads": loads,
    }


def _radio_direction(rows: SliceRows, st, share: np.ndarray,
                     mcs_offset: np.ndarray, scheduler: np.ndarray,
                     base_mcs: np.ndarray, margin_pow: np.ndarray,
                     user_mask: np.ndarray, uplink: bool,
                     a: KernelArena) -> Dict[str, np.ndarray]:
    """One direction of ``RadioCell.slice_capacity`` for all rows.

    ``base_mcs`` and ``margin_pow`` are the direction-shared terms
    precomputed by :func:`evaluate_rows` (see the module Fusions
    section).
    """
    total = rows.ul_prbs_total if uplink else rows.dl_prbs_total
    duty = rows.uplink_fraction if uplink else rows.downlink_fraction
    base_retx = rows.base_retx_ul if uplink else rows.base_retx_dl
    decay = rows.decay_ul if uplink else rows.decay_dl
    num_rows, num_users = base_mcs.shape

    prbs = a.take(num_rows)
    np.clip(share, 0.0, 1.0, out=prbs)
    np.multiply(prbs, total, out=prbs)
    np.rint(prbs, out=prbs)
    tiny = a.take(num_rows, bool)
    np.greater(share, 1e-3, out=tiny)
    none = a.take(num_rows, bool)
    np.equal(prbs, 0, out=none)
    np.logical_and(tiny, none, out=tiny)
    np.copyto(prbs, 1.0, where=tiny)

    # per-user effective MCS and first-transmission error probability
    mcs = a.take((num_rows, num_users), np.intp)
    np.subtract(base_mcs, mcs_offset[:, None], out=mcs)
    np.clip(mcs, 0, NUM_MCS - 1, out=mcs)
    eff = a.take((num_rows, num_users))
    table = _MCS_EFF if a.dtype == np.float64 else _MCS_EFF_F32
    np.take(table, mcs, out=eff)
    off_f = a.take(num_rows)
    off_f[...] = mcs_offset
    retx_row = a.take(num_rows)
    np.power(decay, off_f, out=retx_row)
    np.multiply(base_retx, retx_row, out=retx_row)
    retx = a.take((num_rows, num_users))
    np.multiply(retx_row[:, None], margin_pow, out=retx)
    np.clip(retx, 1e-9, 0.99, out=retx)
    goodput = a.take((num_rows, num_users))
    np.subtract(1.0, retx, out=goodput)
    np.multiply(eff, goodput, out=goodput)
    shrink = a.take((num_rows, num_users))
    np.add(1.0, retx, out=shrink)
    np.divide(goodput, shrink, out=goodput)

    retx_mean = a.take(num_rows)
    _user_sum_into(retx, user_mask, retx_mean)
    np.divide(retx_mean, st["users_f"], out=retx_mean)
    mean_eff = a.take(num_rows)
    _user_sum_into(goodput, user_mask, mean_eff)
    np.divide(mean_eff, st["users_f"], out=mean_eff)
    best_eff = a.take(num_rows)
    np.max(goodput, axis=1, initial=-np.inf, where=user_mask,
           out=best_eff)
    mixed_hi = a.take(num_rows)
    np.multiply(0.9, best_eff, out=mixed_hi)
    part = a.take(num_rows)
    np.multiply(0.1, mean_eff, out=part)
    np.add(mixed_hi, part, out=mixed_hi)
    mixed_lo = a.take(num_rows)
    np.multiply(0.6, best_eff, out=mixed_lo)
    np.multiply(0.4, mean_eff, out=part)
    np.add(mixed_lo, part, out=mixed_lo)
    pick = a.take(num_rows, bool)
    np.equal(scheduler, 2, out=pick)
    agg = a.take(num_rows)
    np.copyto(agg, mixed_lo)
    np.copyto(agg, mixed_hi, where=pick)
    np.equal(scheduler, 0, out=pick)
    np.copyto(agg, mean_eff, where=pick)
    capacity = a.take(num_rows)
    np.multiply(prbs, rows.prb_bandwidth_hz, out=capacity)
    np.multiply(capacity, duty, out=capacity)
    np.multiply(capacity, agg, out=capacity)
    np.multiply(capacity, st["one_minus_overhead"], out=capacity)
    return {"capacity": capacity, "retx": retx_mean, "prbs": prbs}


def _mm1_rows(payload_bits: np.ndarray, capacity_bps: np.ndarray,
              demand_bps: np.ndarray, a: KernelArena) -> np.ndarray:
    """Vectorised ``repro.sim.apps._mm1_latency_ms``."""
    shape = capacity_bps.shape
    has_cap = a.take(shape, bool)
    np.greater(capacity_bps, 0, out=has_cap)
    safe_cap = a.take(shape)
    safe_cap.fill(1.0)
    np.copyto(safe_cap, capacity_bps, where=has_cap)
    rho = a.take(shape)
    np.divide(demand_bps, safe_cap, out=rho)
    service_ms = a.take(shape)
    np.divide(payload_bits, safe_cap, out=service_ms)
    np.multiply(service_ms, 1e3, out=service_ms)
    latency = _queueing_rows(service_ms, rho, a)
    out = a.take(shape)
    out.fill(np.inf)
    np.copyto(out, latency, where=has_cap)
    return out


def _satisfaction_rows(rows: SliceRows, measured: np.ndarray,
                       a: KernelArena) -> np.ndarray:
    """Vectorised ``repro.sim.apps._satisfaction`` (both orientations)."""
    shape = measured.shape
    target = rows.sla_target
    positive = a.take(shape, bool)
    np.greater(measured, 0, out=positive)
    safe = a.take(shape)
    safe.fill(1.0)
    np.copyto(safe, measured, where=positive)
    with np.errstate(invalid="ignore"):
        finite = a.take(shape, bool)
        np.isfinite(measured, out=finite)
        scaled = a.take(shape)
        np.divide(target, safe, out=scaled)
        lower_ratio = a.take(shape)
        lower_ratio.fill(0.0)
        np.copyto(lower_ratio, scaled, where=finite)
        idle = a.take(shape, bool)
        np.less_equal(measured, 0, out=idle)
        np.copyto(lower_ratio, 1.0, where=idle)
        higher_ratio = a.take(shape)
        np.divide(measured, target, out=higher_ratio)
    ratio = a.take(shape)
    np.copyto(ratio, higher_ratio)
    np.copyto(ratio, lower_ratio, where=rows.lower_better)
    np.clip(ratio, 0.0, 1.0, out=ratio)
    return ratio


def _evaluate_apps(rows: SliceRows, st, rates: np.ndarray,
                   ul_cap: np.ndarray, dl_cap: np.ndarray,
                   ul_retx: np.ndarray, dl_retx: np.ndarray,
                   tn_rate: np.ndarray, tn_latency: np.ndarray,
                   core_latency: np.ndarray, core_pps: np.ndarray,
                   edge_latency: np.ndarray, a: KernelArena):
    """Dispatch the per-app performance models over all rows at once."""
    num_rows = rows.num_rows

    # MAR: round-trip frame latency ------------------------------------
    ul_demand = a.take(num_rows)
    np.multiply(rates, rows.ul_bits, out=ul_demand)
    dl_demand = a.take(num_rows)
    np.multiply(rates, rows.dl_bits, out=dl_demand)
    carried = a.take(num_rows, bool)
    np.greater(tn_rate, 0, out=carried)
    capped = a.take(num_rows)
    np.minimum(ul_cap, tn_rate, out=capped)
    effective_ul = a.take(num_rows)
    effective_ul.fill(0.0)
    np.copyto(effective_ul, capped, where=carried)
    ul_ms = _mm1_rows(rows.ul_bits, effective_ul, ul_demand, a)
    dl_ms = _mm1_rows(rows.dl_bits, dl_cap, dl_demand, a)
    harq_ms = a.take(num_rows)
    np.add(ul_retx, dl_retx, out=harq_ms)
    np.multiply(8.0, harq_ms, out=harq_ms)
    mar_latency = a.take(num_rows)
    np.add(rows.ran_base_latency_ms, ul_ms, out=mar_latency)
    np.add(mar_latency, dl_ms, out=mar_latency)
    np.add(mar_latency, harq_ms, out=mar_latency)
    np.add(mar_latency, tn_latency, out=mar_latency)
    np.add(mar_latency, core_latency, out=mar_latency)
    np.add(mar_latency, edge_latency, out=mar_latency)

    # HVS: delivered FPS -----------------------------------------------
    target_fps = rows.sla_target
    hvs_demand = a.take(num_rows)
    np.multiply(rates, target_fps, out=hvs_demand)
    np.multiply(hvs_demand, rows.dl_bits, out=hvs_demand)
    core_bps = a.take(num_rows)
    np.multiply(core_pps, rows.mean_packet_bits, out=core_bps)
    supply = a.take(num_rows)
    np.minimum(dl_cap, tn_rate, out=supply)
    np.minimum(supply, core_bps, out=supply)
    wants = a.take(num_rows, bool)
    np.greater(hvs_demand, 0, out=wants)
    safe_demand = a.take(num_rows)
    safe_demand.fill(1.0)
    np.copyto(safe_demand, hvs_demand, where=wants)
    hvs_fps = a.take(num_rows)
    np.divide(supply, safe_demand, out=hvs_fps)
    np.minimum(hvs_fps, 1.0, out=hvs_fps)
    np.multiply(target_fps, hvs_fps, out=hvs_fps)
    drop = a.take(num_rows)
    np.multiply(0.5, dl_retx, out=drop)
    np.subtract(1.0, drop, out=drop)
    np.multiply(hvs_fps, drop, out=hvs_fps)
    sated = a.take(num_rows, bool)
    np.less_equal(hvs_demand, 0, out=sated)
    np.copyto(hvs_fps, target_fps, where=sated)

    # RDC: radio transmission reliability ------------------------------
    # msg_bps == rates * ul_bits == ul_demand (see Fusions)
    msg_bps = ul_demand
    radio_ok = a.take(num_rows)
    np.subtract(1.0, ul_retx, out=radio_ok)
    dl_ok = a.take(num_rows)
    np.subtract(1.0, dl_retx, out=dl_ok)
    np.multiply(radio_ok, dl_ok, out=radio_ok)
    sending = a.take(num_rows, bool)
    np.greater(msg_bps, 0, out=sending)
    safe_msg = a.take(num_rows)
    safe_msg.fill(1.0)
    np.copyto(safe_msg, msg_bps, where=sending)
    ul_carried = a.take(num_rows)
    np.divide(ul_cap, safe_msg, out=ul_carried)
    np.minimum(ul_carried, 1.0, out=ul_carried)
    ul_sel = a.take(num_rows)
    ul_sel.fill(1.0)
    np.copyto(ul_sel, ul_carried, where=sending)
    dl_carried = a.take(num_rows)
    np.divide(dl_cap, safe_msg, out=dl_carried)
    np.minimum(dl_carried, 1.0, out=dl_carried)
    dl_sel = a.take(num_rows)
    dl_sel.fill(1.0)
    np.copyto(dl_sel, dl_carried, where=sending)
    reliability = a.take(num_rows)
    np.multiply(radio_ok, ul_sel, out=reliability)
    np.multiply(reliability, dl_sel, out=reliability)

    value = a.take(num_rows)
    value.fill(0.0)
    masks = st["app_masks"]
    np.copyto(value, mar_latency, where=masks["mar"])
    np.copyto(value, hvs_fps, where=masks["hvs"])
    np.copyto(value, reliability, where=masks["rdc"])
    satisfaction = _satisfaction_rows(rows, value, a)
    return value, satisfaction
