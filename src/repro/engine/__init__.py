"""The batched episode engine.

``repro.engine`` turns the paper's one-world, one-slot-at-a-time MDP
into flat array math:

* :mod:`repro.engine.kernels` -- the vectorised slot kernels shared by
  the scalar :class:`~repro.sim.env.ScenarioSimulator` (``R = S``
  rows) and the batch engine, so both are bit-identical by
  construction;
* :mod:`repro.engine.arena` -- :class:`KernelArena`, the layout-keyed
  slot-arena allocator that lets a warmed kernel pass run with zero
  heap array allocations;
* :mod:`repro.engine.batch` -- :class:`BatchSimulator`, stepping B
  heterogeneous worlds in lockstep with per-world RNG stream parity
  (engine tiers in :data:`BATCH_ENGINES`);
* :mod:`repro.engine.fastpath` -- the opt-in ``vector-fast`` tier
  (float32 + optional numba) layered on the same kernels, with the
  float64 arena path kept as the bit-exact digest-bearing oracle;
* :mod:`repro.engine.policies` -- the :class:`BatchPolicy` protocol
  plus vectorised rule-based / model-based / actor-critic policies,
  batched projection, and the vectorised-env OnRL learner.

The layers above consume it through
:func:`repro.experiments.harness.run_episodes`, the fleet shard's
vector driver, and the ``--engine`` CLI switches.
"""

from repro.engine.arena import KernelArena, TransientArena
from repro.engine.batch import (
    BATCH_ENGINES,
    BatchSimulator,
    BatchStepResult,
)
from repro.engine.kernels import (
    SliceRows,
    WorldConditions,
    concat_rows,
    evaluate_rows,
    rows_for_network,
)
from repro.engine.policies import (
    ActorCriticBatchPolicy,
    BatchPolicy,
    ConstantBatchPolicy,
    ModelBasedBatchPolicy,
    RuleBasedBatchPolicy,
    VecOnRLAgent,
    project_actions_batch,
)

__all__ = [
    "ActorCriticBatchPolicy",
    "BATCH_ENGINES",
    "BatchPolicy",
    "BatchSimulator",
    "BatchStepResult",
    "KernelArena",
    "TransientArena",
    "ConstantBatchPolicy",
    "ModelBasedBatchPolicy",
    "RuleBasedBatchPolicy",
    "SliceRows",
    "VecOnRLAgent",
    "WorldConditions",
    "concat_rows",
    "evaluate_rows",
    "project_actions_batch",
    "rows_for_network",
]
