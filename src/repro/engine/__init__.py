"""The batched episode engine.

``repro.engine`` turns the paper's one-world, one-slot-at-a-time MDP
into flat array math:

* :mod:`repro.engine.kernels` -- the vectorised slot kernels shared by
  the scalar :class:`~repro.sim.env.ScenarioSimulator` (``R = S``
  rows) and the batch engine, so both are bit-identical by
  construction;
* :mod:`repro.engine.batch` -- :class:`BatchSimulator`, stepping B
  heterogeneous worlds in lockstep with per-world RNG stream parity;
* :mod:`repro.engine.policies` -- the :class:`BatchPolicy` protocol
  plus vectorised rule-based / model-based / actor-critic policies,
  batched projection, and the vectorised-env OnRL learner.

The layers above consume it through
:func:`repro.experiments.harness.run_episodes`, the fleet shard's
vector driver, and the ``--engine`` CLI switches.
"""

from repro.engine.batch import BatchSimulator, BatchStepResult
from repro.engine.kernels import (
    SliceRows,
    WorldConditions,
    concat_rows,
    evaluate_rows,
    rows_for_network,
)
from repro.engine.policies import (
    ActorCriticBatchPolicy,
    BatchPolicy,
    ConstantBatchPolicy,
    ModelBasedBatchPolicy,
    RuleBasedBatchPolicy,
    VecOnRLAgent,
    project_actions_batch,
)

__all__ = [
    "ActorCriticBatchPolicy",
    "BatchPolicy",
    "BatchSimulator",
    "BatchStepResult",
    "ConstantBatchPolicy",
    "ModelBasedBatchPolicy",
    "RuleBasedBatchPolicy",
    "SliceRows",
    "VecOnRLAgent",
    "WorldConditions",
    "concat_rows",
    "evaluate_rows",
    "project_actions_batch",
    "rows_for_network",
]
