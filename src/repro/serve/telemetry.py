"""Lightweight serving telemetry: counters, histograms, JSONL export.

The decision service and load generator record what production ops
would scrape -- decisions served, batch sizes, fallback routings,
coordination rounds, per-decision latency -- without pulling in a
metrics dependency.  A :class:`Telemetry` registry hands out named
:class:`Counter` and :class:`Histogram` instruments and exports one
JSON object per instrument to a JSONL file, so serve runs produce
inspectable artefacts exactly like the experiment runtime does.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

import numpy as np

#: Percentiles exported for every histogram.
EXPORT_PERCENTILES = (50.0, 90.0, 99.0)


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"metric": self.name, "type": "counter",
                "value": self.value}


class Histogram:
    """Exact sample histogram with percentile readout.

    Samples are kept verbatim (serve runs observe thousands of
    decisions, not millions), so percentiles are exact rather than
    bucket-approximated.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        self._samples.append(float(value))

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return float(sum(self._samples))

    @property
    def mean(self) -> float:
        return self.total / self.count if self._samples else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile ``p`` in [0, 100] (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return float(np.percentile(np.asarray(self._samples), p))

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "metric": self.name, "type": "histogram",
            "count": self.count, "sum": self.total, "mean": self.mean,
        }
        for p in EXPORT_PERCENTILES:
            out[f"p{p:g}"] = self.percentile(p)
        return out


class Telemetry:
    """Registry of named instruments for one service/loadgen run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name in self._histograms:
            raise ValueError(f"{name!r} is already a histogram")
        return self._counters.setdefault(name, Counter(name))

    def histogram(self, name: str) -> Histogram:
        if name in self._counters:
            raise ValueError(f"{name!r} is already a counter")
        return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> List[Dict[str, object]]:
        """Every instrument's current reading, counters first."""
        rows = [c.snapshot() for _, c in sorted(self._counters.items())]
        rows += [h.snapshot() for _, h in sorted(self._histograms.items())]
        return rows

    def export_jsonl(self, path: str,
                     run_label: Optional[str] = None) -> str:
        """Write one JSON object per instrument to ``path`` (JSONL).

        Parent directories are created; the file is overwritten (one
        file per run -- label runs via the filename or ``run_label``).
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        stamp = time.time()
        with open(path, "w", encoding="utf-8") as fh:
            for row in self.snapshot():
                if run_label is not None:
                    row = {"run": run_label, **row}
                fh.write(json.dumps({**row, "unix_time": stamp}) + "\n")
        return path
