"""Serving telemetry -- now a re-export of :mod:`repro.obs.metrics`.

The counters/histograms that started here grew into the unified
metrics registry of the observability layer (gauges, labeled
instruments, Prometheus-text export, injectable clocks).  This module
stays as the serve-facing alias so every existing import path,
snapshot key, checkpoint state and fleet merge semantic is unchanged;
new code should import :mod:`repro.obs.metrics` directly.
"""

from repro.obs.metrics import (  # noqa: F401
    BUCKET_COUNT,
    BUCKET_FACTOR,
    BUCKET_MIN,
    EXACT_SAMPLE_LIMIT,
    EXPORT_PERCENTILES,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
    _EDGES,
    _bucket_index,
    _bucketize,
    instrument_key,
    parse_key,
)

__all__ = [
    "BUCKET_COUNT",
    "BUCKET_FACTOR",
    "BUCKET_MIN",
    "EXACT_SAMPLE_LIMIT",
    "EXPORT_PERCENTILES",
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "instrument_key",
    "parse_key",
]
