"""Lightweight serving telemetry: counters, histograms, JSONL export.

The decision service and load generator record what production ops
would scrape -- decisions served, batch sizes, fallback routings,
coordination rounds, per-decision latency -- without pulling in a
metrics dependency.  A :class:`Telemetry` registry hands out named
:class:`Counter` and :class:`Histogram` instruments and exports one
JSON object per instrument to a JSONL file, so serve runs produce
inspectable artefacts exactly like the experiment runtime does.

Every instrument is *mergeable*: a fleet shard aggregates its cells'
telemetry locally, ships a compact serialisable state to the
coordinator, and the coordinator folds shard states into one fleet
view (:meth:`Counter.merge`, :meth:`Histogram.merge`,
:meth:`Telemetry.merge`) -- the memory cost of the aggregate is
bounded by the instrument count, never by the observation count.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

import numpy as np

#: Percentiles exported for every histogram.
EXPORT_PERCENTILES = (50.0, 90.0, 99.0)

#: Exact-mode capacity: a histogram keeps raw samples (exact
#: percentiles) until it has seen this many observations, then folds
#: them into the fixed bucket grid and stays bounded forever after.
EXACT_SAMPLE_LIMIT = 1024

#: Fixed log-spaced bucket grid shared by *every* histogram, so any
#: two histograms merge bucket-for-bucket.  2**0.25 growth gives a
#: worst-case relative quantile error of ~9%; the span covers
#: sub-microsecond latencies up to ~1e9 (counts, byte totals).
BUCKET_FACTOR = 2.0 ** 0.25
BUCKET_MIN = 1e-6
_DECADES = np.log(1e9 / BUCKET_MIN)
BUCKET_COUNT = int(np.ceil(_DECADES / np.log(BUCKET_FACTOR)))
#: Bucket ``i`` (1-based in the counts array) covers
#: ``[_EDGES[i-1], _EDGES[i])``; counts[0] is the underflow bucket
#: (values below ``BUCKET_MIN``, zeros included), counts[-1] overflow.
_EDGES = BUCKET_MIN * BUCKET_FACTOR ** np.arange(BUCKET_COUNT + 1)


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's total into this one."""
        self.inc(other.value)
        return self

    def snapshot(self) -> Dict[str, object]:
        return {"metric": self.name, "type": "counter",
                "value": self.value}


class Histogram:
    """Bounded, mergeable histogram with percentile readout.

    Small samples stay *exact*: observations are kept verbatim (and
    percentiles computed from them) until :data:`EXACT_SAMPLE_LIMIT`,
    the regime every single-cell serve run lives in.  Past the limit
    the samples fold into the fixed log-spaced bucket grid and memory
    stays O(buckets) no matter how many observations follow -- the
    regime a fleet aggregate lives in.  ``count``/``sum``/``min``/
    ``max`` are tracked exactly in both modes; bucket-mode percentiles
    are geometric interpolations within one bucket (<= ~9% relative
    error by construction).

    Snapshot keys are unchanged from the exact-only implementation
    (``count``/``sum``/``mean``/``p50``/``p90``/``p99``); ``mode`` is
    additive.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        #: Raw samples while exact; ``None`` once folded into buckets.
        self._samples: Optional[List[float]] = []
        self._buckets: Optional[np.ndarray] = None

    # ---- recording ---------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)
            if len(self._samples) > EXACT_SAMPLE_LIMIT:
                self._fold()
        else:
            self._buckets[_bucket_index(value)] += 1

    def _fold(self) -> None:
        """Switch from exact samples to the bounded bucket grid."""
        self._buckets = _bucketize(self._samples)
        self._samples = None

    # ---- reading -----------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def exact(self) -> bool:
        """Whether percentiles are still computed from raw samples."""
        return self._samples is not None

    def percentile(self, p: float) -> float:
        """Percentile ``p`` in [0, 100] (0.0 when empty).

        Exact in exact mode; bucket-interpolated (then clipped to the
        observed [min, max]) once folded.
        """
        if self._count == 0:
            return 0.0
        if self._samples is not None:
            return float(np.percentile(np.asarray(self._samples), p))
        target = (p / 100.0) * self._count
        cumulative = np.cumsum(self._buckets)
        index = int(np.searchsorted(cumulative, max(target, 1.0)))
        index = min(index, len(self._buckets) - 1)
        below = cumulative[index - 1] if index > 0 else 0
        inside = self._buckets[index]
        frac = ((target - below) / inside) if inside else 0.0
        frac = min(max(frac, 0.0), 1.0)
        if index == 0:                     # underflow: [<=0, BUCKET_MIN)
            low, high = min(self._min, 0.0), BUCKET_MIN
            value = low + frac * (high - low)
        elif index == len(self._buckets) - 1:   # overflow bucket
            value = self._max
        else:
            low, high = _EDGES[index - 1], _EDGES[index]
            value = low * (high / low) ** frac  # geometric within bucket
        return float(min(max(value, self._min), self._max))

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "metric": self.name, "type": "histogram",
            "count": self.count, "sum": self.total, "mean": self.mean,
            "mode": "exact" if self.exact else "bucketed",
        }
        for p in EXPORT_PERCENTILES:
            out[f"p{p:g}"] = self.percentile(p)
        return out

    # ---- merging / serialisation -------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram.

        ``other`` is never mutated.  Merging is commutative and
        associative up to bucket resolution: two exact histograms stay
        exact while the combined sample count fits the exact limit,
        otherwise the merge lands on the shared bucket grid.
        """
        if other._count == 0:
            return self
        if (self._samples is not None and other._samples is not None
                and self._count + other._count <= EXACT_SAMPLE_LIMIT):
            self._samples.extend(other._samples)
        else:
            if self._samples is not None:
                self._fold()
            self._buckets = self._buckets + (
                other._buckets if other._buckets is not None
                else _bucketize(other._samples))
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def state(self) -> Dict[str, object]:
        """JSON-safe state for checkpointing / shard-to-coordinator
        shipping (inverse: :meth:`from_state`)."""
        out: Dict[str, object] = {
            "name": self.name, "count": self._count, "sum": self._sum,
        }
        if self._count:
            out["min"], out["max"] = self._min, self._max
        if self._samples is not None:
            out["samples"] = list(self._samples)
        else:
            out["buckets"] = self._buckets.tolist()
        return out

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        histogram = cls(str(state["name"]))
        histogram._count = int(state["count"])
        histogram._sum = float(state["sum"])
        histogram._min = float(state.get("min", float("inf")))
        histogram._max = float(state.get("max", float("-inf")))
        if "samples" in state:
            histogram._samples = [float(v) for v in state["samples"]]
        else:
            histogram._samples = None
            buckets = np.asarray(state["buckets"], dtype=np.int64)
            if buckets.shape != (BUCKET_COUNT + 2,):
                raise ValueError(
                    f"histogram state for {histogram.name!r} has "
                    f"{buckets.shape[0]} buckets, expected "
                    f"{BUCKET_COUNT + 2} (incompatible grid)")
            histogram._buckets = buckets
        return histogram


def _bucket_index(value: float) -> int:
    """Counts-array index for ``value`` (0 underflow, -1 overflow)."""
    if value < BUCKET_MIN:
        return 0
    if value >= _EDGES[-1]:
        return BUCKET_COUNT + 1
    return int(np.searchsorted(_EDGES, value, side="right"))


def _bucketize(samples: List[float]) -> np.ndarray:
    """Fold raw samples onto the shared grid (underflow+grid+overflow)."""
    counts = np.zeros(BUCKET_COUNT + 2, dtype=np.int64)
    if samples:
        values = np.asarray(samples, dtype=float)
        indices = np.searchsorted(_EDGES, values, side="right")
        indices[values < BUCKET_MIN] = 0
        indices[values >= _EDGES[-1]] = BUCKET_COUNT + 1
        np.add.at(counts, indices, 1)
    return counts


class Telemetry:
    """Registry of named instruments for one service/loadgen run."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name in self._histograms:
            raise ValueError(f"{name!r} is already a histogram")
        return self._counters.setdefault(name, Counter(name))

    def histogram(self, name: str) -> Histogram:
        if name in self._counters:
            raise ValueError(f"{name!r} is already a counter")
        return self._histograms.setdefault(name, Histogram(name))

    def counters(self) -> Dict[str, Counter]:
        """Name -> counter, in insertion order (live objects)."""
        return dict(self._counters)

    def histograms(self) -> Dict[str, Histogram]:
        """Name -> histogram, in insertion order (live objects)."""
        return dict(self._histograms)

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold every instrument of ``other`` into this registry --
        the coordinator side of shard aggregation."""
        for name, counter in other._counters.items():
            self.counter(name).merge(counter)
        for name, histogram in other._histograms.items():
            self.histogram(name).merge(histogram)
        return self

    def snapshot(self) -> List[Dict[str, object]]:
        """Every instrument's current reading, counters first."""
        rows = [c.snapshot() for _, c in sorted(self._counters.items())]
        rows += [h.snapshot() for _, h in sorted(self._histograms.items())]
        return rows

    def export_jsonl(self, path: str,
                     run_label: Optional[str] = None) -> str:
        """Write one JSON object per instrument to ``path`` (JSONL).

        Parent directories are created; the file is overwritten (one
        file per run -- label runs via the filename or ``run_label``).
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        stamp = time.time()
        with open(path, "w", encoding="utf-8") as fh:
            for row in self.snapshot():
                if run_label is not None:
                    row = {"run": run_label, **row}
                fh.write(json.dumps({**row, "unix_time": stamp}) + "\n")
        return path
