"""The online slicing decision service.

:class:`SlicingService` is the paper's controller turned into a
serving component: it accepts per-slice state requests, micro-batches
them into single vectorised forward passes per policy
(:meth:`~repro.nn.network.MLP.predict_batch`), enforces the paper's
safe fallback -- when the pi_phi cost estimator predicts an episode
SLA violation (Eq. 8) the slice is routed to the rule-based baseline
pi_b for the *rest of the episode* (the one-way door of Sec. 3;
:meth:`SlicingService.begin_episode` re-arms it) -- and coordinates
the batch's allocations
through the existing :class:`~repro.domains.coordinator
.ParameterCoordinator` so the slices it serves never over-request the
infrastructure.

The service is deployment-shaped but dependency-free: it runs
in-process, fed either by the :class:`~repro.serve.loadgen
.LoadGenerator` or by the ``python -m repro serve`` CLI loop.  A
service is built *from a snapshot* (see :mod:`~repro.serve
.policy_store`), never from live training state, and can serve slice
populations larger than it was trained on: target slices map onto
snapshot policies by name, falling back to cycling through the
policies trained for the same application template.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.model_based import ModelBasedPolicy
from repro.config import ExperimentConfig, NUM_ACTIONS
from repro.domains.coordinator import ParameterCoordinator
from repro.obs.trace import trace
from repro.rl.cost_estimator import CostToGoEstimator
from repro.rl.ppo import GaussianActorCritic
from repro.serve.policy_store import PolicySnapshot
from repro.serve.telemetry import Telemetry
from repro.sim.env import STATE_DIM
from repro.sim.network import CONSTRAINED_RESOURCES

#: Decision-path stages, pipeline order.  Each ``decide()`` call
#: observes one ``stage_<name>_ms`` histogram sample per stage, so
#: per-stage latency survives telemetry merges all the way up to the
#: fleet report.
DECISION_STAGES = ("assemble", "forward", "fallback", "coordinate")


@dataclass(frozen=True)
class DecisionRequest:
    """One slice's state, as the RAN/edge telemetry would report it."""

    slice_name: str
    state: np.ndarray               # STATE_DIM observation vector


@dataclass(frozen=True)
class Decision:
    """One slice's resource allocation for the next slot."""

    slice_name: str
    action: np.ndarray              # NUM_ACTIONS allocation in [0, 1]
    fallback: bool                  # served by pi_b (safe fallback)
    policy: str                     # snapshot policy that served it


class _LearnedPolicy:
    """A snapshot policy entry rebuilt for inference (pi_theta [+ pi_phi
    + pi_b] for OnSlicing; pi_theta alone for OnRL)."""

    def __init__(self, name: str, payload: Dict, cfg: ExperimentConfig,
                 rng: np.random.Generator) -> None:
        self.name = name
        agent_cfg = cfg.agent
        self.model = GaussianActorCritic(
            STATE_DIM, NUM_ACTIONS, policy_cfg=agent_cfg.policy,
            ppo_cfg=agent_cfg.ppo, rng=rng)
        self.model.load_state_dict(payload["model"])
        self.estimator: Optional[CostToGoEstimator] = None
        self.baseline = payload.get("baseline")
        if "estimator" in payload:
            estimator = CostToGoEstimator(
                STATE_DIM, cfg=agent_cfg.estimator, rng=rng)
            estimator.network.load_state_dict(payload["estimator"])
            estimator._target_mean, estimator._target_std = \
                payload["estimator_scale"]
            self.estimator = estimator

    def actions(self, states: np.ndarray) -> np.ndarray:
        """Deterministic pi_theta actions for a batch of states."""
        return self.model.mean_actions(states)

    def cost_to_go(self, states: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched pi_phi posterior ``(mu, sigma)`` per state."""
        estimator = self.estimator
        mean, std = estimator.network.predict(
            states, num_samples=estimator.cfg.num_posterior_samples,
            rng=estimator._rng)
        mu = mean[:, 0] * estimator._target_std + estimator._target_mean
        sigma = std[:, 0] * estimator._target_std
        return np.maximum(mu, 0.0), sigma


class SlicingService:
    """Batched, safety-aware decision service over a policy snapshot.

    Parameters
    ----------
    snapshot:
        The :class:`PolicySnapshot` to serve.
    cfg:
        The *target* deployment config (slice population, SLAs,
        horizon).  Defaults to the snapshot's training config; the load
        generator passes the scenario config so a 3-slice snapshot can
        serve a ``population(50)`` cell.
    eta:
        Risk preference of the fallback criterion (Eq. 8); defaults to
        the snapshot config's switching eta.
    batching:
        When False every request runs through the single-state path --
        the reference the batched path is benchmarked against.
    trace_attrs:
        Attributes stamped onto every span this service emits (the
        fleet layer passes ``cell``/``scenario`` so traces attribute
        per cell); ignored while tracing is off.
    slo / slo_every:
        Optional streaming :class:`~repro.obs.slo.SloEvaluator`:
        every ``slo_every`` decision batches the service's telemetry
        is evaluated at logical time = its ``batches`` counter value,
        appending burn-rate transitions to the evaluator's incident
        timeline.  The batch counter is a logical axis, so embedders
        that replay identical request streams get identical timelines.
    anomaly:
        Optional :class:`~repro.obs.anomaly.AnomalyMonitor`, stepped
        on the same ``slo_every`` cadence and logical axis as ``slo``
        (either may be set without the other) -- the serve-side feed
        for the ``obs watch`` anomalies pane.
    """

    def __init__(self, snapshot: PolicySnapshot,
                 cfg: Optional[ExperimentConfig] = None,
                 eta: Optional[float] = None,
                 batching: bool = True,
                 telemetry: Optional[Telemetry] = None,
                 max_coordination_rounds: int = 8,
                 tolerance: float = 1e-3,
                 rng_seed: Optional[int] = None,
                 trace_attrs: Optional[Mapping[str, object]] = None,
                 slo=None,
                 slo_every: int = 64,
                 anomaly=None) -> None:
        self.snapshot = snapshot
        self.cfg = cfg if cfg is not None else snapshot.config
        self.eta = eta if eta is not None \
            else snapshot.config.agent.switching.eta
        self.batching = batching
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry()
        self.horizon = self.cfg.traffic.slots_per_episode
        self._rng = np.random.default_rng(
            snapshot.seed if rng_seed is None else rng_seed)
        self._coordinator = ParameterCoordinator(
            CONSTRAINED_RESOURCES,
            step_size=self.cfg.agent.modifier.coordinator_step_size)
        self._max_rounds = max_coordination_rounds
        self._tolerance = tolerance
        self._trace_attrs = dict(trace_attrs or {})
        if slo_every < 1:
            raise ValueError("slo_every must be >= 1")
        self.slo = slo
        self.anomaly = anomaly
        self._slo_every = int(slo_every)
        #: Lazily-created ``fallbacks{cause=...}`` counters: created
        #: only when a cause is first seen, so snapshots of healthy
        #: services carry no zero-valued taxonomy instruments.
        self._fallback_causes: Dict[str, object] = {}
        self._policies: Dict[str, _LearnedPolicy] = {}
        if snapshot.method in ("onslicing", "onrl"):
            for name, payload in snapshot.policies.items():
                self._policies[name] = _LearnedPolicy(
                    name, payload, snapshot.config, self._rng)
        #: target slice name -> (policy key, per-slice act callable or
        #: None for learned/batched policies)
        self._routes = self._build_routes()
        #: Slices pi_b has taken over for the rest of the episode --
        #: the paper's one-way door (Sec. 3); cleared by
        #: :meth:`begin_episode`.
        self._switched: set = set()

    def begin_episode(self) -> None:
        """Re-arm the safe fallback at an episode boundary.

        Within an episode the Eq. 8 switch is a one-way door ("let the
        baseline policy take over the rest of the episode"); episode-
        aware drivers (the load generator, an operator's day rollover)
        call this at each reset.
        """
        self._switched.clear()

    def _count_fallback(self, name: str) -> None:
        """Attribute one fallback decision to its cause: a fresh Eq. 8
        trigger (``eq8``) or the one-way door holding a previously
        switched slice on pi_b (``latched``).  Callers invoke this
        *before* latching ``name`` into ``_switched``."""
        cause = "latched" if name in self._switched else "eq8"
        counter = self._fallback_causes.get(cause)
        if counter is None:
            counter = self.telemetry.counter("fallbacks",
                                             {"cause": cause})
            self._fallback_causes[cause] = counter
        counter.inc()

    # ---- routing -----------------------------------------------------

    def _build_routes(self) -> Dict[str, Tuple[str, Optional[object]]]:
        """Map every target slice onto a snapshot policy.

        Exact name matches win; otherwise target slices cycle through
        the snapshot policies trained for the same app template, so a
        3-slice snapshot spreads evenly over a 50-slice population.
        """
        by_app: Dict[str, List[str]] = {}
        for name, payload in self.snapshot.policies.items():
            by_app.setdefault(payload["app"], []).append(name)
        app_counter: Dict[str, int] = {}
        routes: Dict[str, Tuple[str, Optional[object]]] = {}
        for spec in self.cfg.slices:
            if spec.name in self.snapshot.policies:
                key = spec.name
            else:
                candidates = by_app.get(spec.app)
                if not candidates:
                    raise ValueError(
                        f"snapshot {self.snapshot.ref} has no policy "
                        f"for app {spec.app!r} (slice {spec.name!r})")
                index = app_counter.get(spec.app, 0)
                app_counter[spec.app] = index + 1
                key = candidates[index % len(candidates)]
            if self.snapshot.method == "model_based":
                # analytic policies depend on the *target* slice spec
                # (arrival-rate scale), so build one per slice
                routes[spec.name] = (key, ModelBasedPolicy(
                    spec, self.cfg.network))
            elif self.snapshot.method == "baseline":
                routes[spec.name] = (
                    key, self.snapshot.policies[key]["baseline"])
            else:
                routes[spec.name] = (key, None)
        return routes

    @property
    def slice_names(self) -> List[str]:
        return list(self._routes)

    # ---- deciding ----------------------------------------------------

    def decide(self, requests: Sequence[DecisionRequest]
               ) -> Dict[str, Decision]:
        """Serve one batch of per-slice requests.

        Returns a decision per request.  The whole batch is treated as
        one slot of one cell: allocations are coordinated jointly, so
        callers should batch the slices that share infrastructure.
        """
        if not requests:
            return {}
        start = time.perf_counter()
        stages = dict.fromkeys(DECISION_STAGES, 0.0)
        with trace("serve.decide", **self._trace_attrs):
            proposed = (self._decide_batched(requests, stages)
                        if self.batching
                        else self._decide_unbatched(requests, stages))
            actions = {name: action
                       for name, (action, _, _) in proposed.items()}
            t0 = time.perf_counter()
            with trace("serve.coordinate", **self._trace_attrs):
                coordinated, rounds, projected = \
                    self._coordinate(actions)
            stages["coordinate"] = time.perf_counter() - t0
            decisions = {
                name: Decision(slice_name=name,
                               action=coordinated[name],
                               fallback=fallback, policy=policy)
                for name, (_, fallback, policy) in proposed.items()
            }
        elapsed_ms = (time.perf_counter() - start) * 1e3
        tel = self.telemetry
        tel.counter("decisions").inc(len(requests))
        tel.counter("batches").inc()
        tel.counter("fallbacks").inc(
            sum(d.fallback for d in decisions.values()))
        if projected:
            tel.counter("projections").inc()
        # Admission taxonomy: every request in the batch was admitted,
        # either at the coordinator's prices alone or only after the
        # final capacity projection clipped the batch.
        tel.counter("admissions",
                    {"outcome": "projected" if projected
                     else "priced"}).inc(len(requests))
        tel.histogram("batch_size").observe(len(requests))
        tel.histogram("batch_latency_ms").observe(elapsed_ms)
        tel.histogram("decision_latency_ms").observe(
            elapsed_ms / len(requests))
        tel.histogram("coordination_rounds").observe(rounds)
        for stage, seconds in stages.items():
            tel.histogram(f"stage_{stage}_ms").observe(seconds * 1e3)
        if self.slo is not None or self.anomaly is not None:
            batches = tel.counter("batches").value
            if batches % self._slo_every == 0:
                if self.slo is not None:
                    self.slo.observe(tel, at=float(batches))
                if self.anomaly is not None:
                    self.anomaly.observe(tel, at=float(batches))
        return decisions

    def decide_one(self, request: DecisionRequest) -> Decision:
        return self.decide([request])[request.slice_name]

    def _validated_state(self, request: DecisionRequest) -> np.ndarray:
        if request.slice_name not in self._routes:
            raise KeyError(f"unknown slice {request.slice_name!r}; "
                           f"service slices: {self.slice_names}")
        state = np.asarray(request.state, dtype=np.float64)
        if state.shape != (STATE_DIM,):
            raise ValueError(
                f"state for {request.slice_name!r} must have shape "
                f"({STATE_DIM},), got {state.shape}")
        return state

    def _decide_batched(self, requests: Sequence[DecisionRequest],
                        stages: Dict[str, float]
                        ) -> Dict[str, Tuple[np.ndarray, bool, str]]:
        """Group requests by snapshot policy; one forward per group.

        Returns pre-coordination ``(action, fallback, policy key)``
        per slice; :meth:`decide` coordinates and wraps the results.
        ``stages`` accumulates per-stage seconds: validation, routing
        and table-policy reads count as *assemble*, the vectorised
        pi_theta pass as *forward*, Eq. 8 plus pi_b substitution as
        *fallback*.
        """
        groups: Dict[str, List[Tuple[str, np.ndarray]]] = {}
        proposed: Dict[str, Tuple[np.ndarray, bool, str]] = {}
        t0 = time.perf_counter()
        with trace("serve.assemble", **self._trace_attrs):
            for request in requests:
                state = self._validated_state(request)
                key, table_policy = self._routes[request.slice_name]
                if table_policy is not None:
                    # rule-based / analytic policies have no network to
                    # batch; they are per-request table reads or solves
                    proposed[request.slice_name] = (
                        np.asarray(table_policy.act_vector(state),
                                   dtype=float), False, key)
                else:
                    groups.setdefault(key, []).append(
                        (request.slice_name, state))
        stages["assemble"] += time.perf_counter() - t0
        for key, entries in groups.items():
            t0 = time.perf_counter()
            policy = self._policies[key]
            states = np.stack([state for _, state in entries])
            with trace("serve.forward", **self._trace_attrs):
                actions = policy.actions(states)
            t1 = time.perf_counter()
            with trace("serve.fallback", **self._trace_attrs):
                flags = self._fallback_flags(policy, states)
                for i, (name, state) in enumerate(entries):
                    fallback = name in self._switched or bool(flags[i])
                    if fallback:
                        self._count_fallback(name)
                        self._switched.add(name)
                        action = np.asarray(
                            policy.baseline.act_vector(state),
                            dtype=float)
                    else:
                        action = actions[i]
                    proposed[name] = (action, fallback, key)
            t2 = time.perf_counter()
            stages["forward"] += t1 - t0
            stages["fallback"] += t2 - t1
        return proposed

    def _decide_unbatched(self, requests: Sequence[DecisionRequest],
                          stages: Dict[str, float]
                          ) -> Dict[str, Tuple[np.ndarray, bool, str]]:
        """Reference path: every request runs alone (no batching).

        Stage attribution mirrors :meth:`_decide_batched` so the two
        paths' ``stage_*_ms`` histograms are comparable.
        """
        proposed: Dict[str, Tuple[np.ndarray, bool, str]] = {}
        for request in requests:
            t0 = time.perf_counter()
            state = self._validated_state(request)
            key, table_policy = self._routes[request.slice_name]
            if table_policy is not None:
                proposed[request.slice_name] = (
                    np.asarray(table_policy.act_vector(state),
                               dtype=float), False, key)
                stages["assemble"] += time.perf_counter() - t0
                continue
            policy = self._policies[key]
            single = state[None, :]
            t1 = time.perf_counter()
            action = policy.actions(single)[0]
            t2 = time.perf_counter()
            fallback = (request.slice_name in self._switched
                        or bool(self._fallback_flags(policy, single)[0]))
            if fallback:
                self._count_fallback(request.slice_name)
                self._switched.add(request.slice_name)
                action = np.asarray(policy.baseline.act_vector(state),
                                    dtype=float)
            t3 = time.perf_counter()
            proposed[request.slice_name] = (action, fallback, key)
            stages["assemble"] += t1 - t0
            stages["forward"] += t2 - t1
            stages["fallback"] += t3 - t2
        return proposed

    def _fallback_flags(self, policy: _LearnedPolicy,
                        states: np.ndarray) -> np.ndarray:
        """Eq. 8 per state: cumulative cost + pi_phi posterior beyond
        the episode budget means pi_b must take over (callers latch
        the flag for the rest of the episode)."""
        if policy.estimator is None or policy.baseline is None:
            return np.zeros(len(states), dtype=bool)
        mu, sigma = policy.cost_to_go(states)
        thresholds = states[:, 7] * self.horizon       # T * C_max
        cumulative = states[:, 8] * thresholds         # de-normalised
        expected = cumulative + mu + self.eta * sigma
        return expected >= thresholds

    # ---- coordination -------------------------------------------------

    #: Constrained action columns, in CONSTRAINED_RESOURCES order.
    _KINDS = tuple(CONSTRAINED_RESOURCES)
    _KIND_COLUMNS = np.fromiter(CONSTRAINED_RESOURCES.values(),
                                dtype=np.intp)

    def _coordinate(self, proposals: Mapping[str, np.ndarray]
                    ) -> Tuple[Dict[str, np.ndarray], int, bool]:
        """Price the batch's allocations into capacity (Eq. 14).

        The coordinator raises ``beta_k`` while resource ``k`` is
        over-requested (warm-started across slots); allocations respond
        as price-takers, ``a_k = proposal_k / (1 + beta_k)``.  The loop
        runs vectorised over the whole batch -- one (n, kinds) slice
        per round, no per-slice python work.  A final projection
        guarantees feasibility after ``max_rounds`` -- infrastructure
        capacity is physical.
        """
        names = list(proposals)
        matrix = np.stack([np.asarray(proposals[name], dtype=float)
                           for name in names])
        requested = matrix[:, self._KIND_COLUMNS]
        coordinator = self._coordinator
        betas = coordinator.begin_slot()
        prices = np.array([betas[kind] for kind in self._KINDS])
        allocated = requested / (1.0 + prices)
        totals = allocated.sum(axis=0)
        rounds = 1
        capacity = coordinator.capacity + self._tolerance
        while np.any(totals > capacity):
            if rounds >= self._max_rounds:
                break
            rounds += 1
            betas = coordinator.update(dict(zip(self._KINDS, totals)))
            prices = np.array([betas[kind] for kind in self._KINDS])
            allocated = requested / (1.0 + prices)
            totals = allocated.sum(axis=0)
        projected = bool(np.any(totals > capacity))
        if projected:
            scale = np.where(totals > capacity,
                             coordinator.capacity
                             / np.maximum(totals, 1e-12), 1.0)
            allocated = allocated * scale
        matrix = matrix.copy()
        matrix[:, self._KIND_COLUMNS] = allocated
        return ({name: matrix[i] for i, name in enumerate(names)},
                rounds, projected)
