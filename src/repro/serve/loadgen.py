"""Scenario-driven load generation against the decision service.

:class:`LoadGenerator` closes the serving loop: it instantiates any
registered scenario from :mod:`repro.scenarios` (optionally re-populated
to N slices via :func:`~repro.scenarios.spec.population`), feeds every
slot's per-slice observations to a :class:`~repro.serve.service
.SlicingService` as one decision batch, applies the returned
allocations to the simulator, and reports what a load test should:
decisions/sec, p50/p99 decision latency, the SLA-violation rate of the
traffic actually served, and the fallback rate.

Throughput is measured over *service* time (the ``decide()`` calls),
not simulator time -- the simulator is the client here.  Reports carry
a ``decision_digest`` (SHA-256 over every action served, in order) so
two runs from the same snapshot and seed can be byte-compared: the CI
smoke job replays 100 decisions twice and asserts the digests match.

``run()`` is built from an incremental API (``begin_run`` /
``begin_episode`` / ``serve_slot`` / ``record_step`` /
``end_episode`` / ``finish_run``) so the fleet layer's vector engine
can drive many generators in lockstep through one
:class:`~repro.engine.batch.BatchSimulator` while each cell keeps its
own service, accounting and digest -- the two drive modes produce
identical reports.  Per-slice observation buffers are reused across
slots (the service copies states before inference), so steady-state
serving allocates nothing per decision.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import ExperimentConfig
from repro.obs.slo import SloEvaluator
from repro.scenarios.spec import ScenarioSpec, population
from repro.serve.policy_store import PolicySnapshot
from repro.serve.service import DecisionRequest, SlicingService
from repro.serve.telemetry import Telemetry
from repro.sim.env import STATE_DIM

#: Telemetry-flush interval (in served slots) at which an attached
#: :class:`~repro.obs.slo.SloEvaluator` re-reads the registry.
DEFAULT_SLO_EVERY = 16


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    scenario: str
    slices: int
    episodes: int
    decisions: int
    fallbacks: int
    service_time_s: float
    wall_time_s: float
    decisions_per_sec: float
    p50_latency_ms: float
    p99_latency_ms: float
    mean_usage: float               # mean per-slot usage in [0, 1]
    violation_rate: float           # fraction of (episode, slice) pairs
    fallback_rate: float
    decision_digest: str            # SHA-256 over every served action
    per_slice_usage: Dict[str, float] = field(default_factory=dict)
    per_slice_violation: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat summary for CLI/JSON output."""
        out = dataclasses.asdict(self)
        del out["per_slice_usage"], out["per_slice_violation"]
        return out


def scenario_with_population(spec: ScenarioSpec,
                             slices: Optional[int]) -> ScenarioSpec:
    """Re-target a scenario spec at an N-slice population.

    ``None`` keeps the spec's own population.  The derived spec keeps
    the traffic model and event timeline -- only the slice population
    (and hence the per-slice arrival derating) changes.
    """
    if slices is None:
        return spec
    return dataclasses.replace(spec, slices=population(slices))


class LoadGenerator:
    """Drive a service with a scenario's traffic at a slice count."""

    def __init__(self, snapshot: PolicySnapshot, scenario,
                 slices: Optional[int] = None,
                 seed: Optional[int] = None,
                 batching: bool = True,
                 eta: Optional[float] = None,
                 telemetry: Optional[Telemetry] = None,
                 trace_attrs: Optional[Dict[str, object]] = None,
                 slo: Optional[SloEvaluator] = None,
                 slo_every: int = DEFAULT_SLO_EVERY
                 ) -> None:
        from repro.experiments.harness import resolve_scenario

        spec = resolve_scenario(scenario)
        if spec is None:
            raise ValueError("load generation needs a named scenario "
                             "or a ScenarioSpec")
        self.spec = scenario_with_population(spec, slices)
        # None defers to the scenario's own seed everywhere, so a unit
        # evaluation and a CLI run of the same spec agree exactly.
        self.cfg: ExperimentConfig = self.spec.build_config(seed=seed)
        self.seed = self.cfg.seed
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry()
        self.service = SlicingService(
            snapshot, cfg=self.cfg, batching=batching, eta=eta,
            telemetry=self.telemetry, rng_seed=self.seed,
            trace_attrs=trace_attrs)
        self.simulator = self.spec.build_simulator(
            self.cfg, rng=np.random.default_rng(self.cfg.seed))
        self.slo = slo
        if slo_every < 1:
            raise ValueError("slo_every must be >= 1")
        self.slo_every = slo_every
        self._apps = {spec.name: spec.app for spec in self.cfg.slices}

    # ---- incremental driving API ------------------------------------
    #
    # `run()` composes these; the fleet layer's vector engine drives
    # many generators in lockstep through one BatchSimulator, calling
    # the same methods per cell so the two paths produce identical
    # reports (decision digests included).

    def begin_run(self, episodes: int = 1,
                  max_decisions: Optional[int] = None) -> None:
        """Arm the accounting of a new run."""
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        self._episodes_wanted = episodes
        self._max_decisions = max_decisions
        self._digest = hashlib.sha256()
        self._decisions_served = 0
        self._fallbacks = 0
        self._service_time = 0.0
        self._episodes_run = 0
        self._per_slice_usage: Dict[str, List[float]] = {}
        self._per_slice_violation: Dict[str, List[float]] = {}
        self._wall_start = time.perf_counter()
        self._stopped = False
        self._totals: Dict[str, Dict[str, float]] = {}
        # per-slice observation buffers, reused across slots (the
        # service stacks/copies states before inference, so reuse is
        # safe within and across slots)
        self._states: Dict[str, np.ndarray] = {}
        self._slots_recorded = 0
        # instrument handles cached once per run: record_step runs per
        # slot and instrument_key would otherwise re-render labels on
        # every observation
        tel = self.telemetry
        self._latency_hist = tel.histogram("slice_latency_ms")
        self._latency_by_app = {
            app: tel.histogram("slice_latency_ms", {"app": app})
            for app in sorted(set(self._apps.values()))}
        self._slot_counter = tel.counter("slice_slots")
        self._cost_counter = tel.counter("slice_cost_total")
        self._sla_episodes = tel.counter("sla_episodes")
        self._sla_violations = tel.counter("sla_violations")
        # per-app SLA taxonomy, mirroring the latency-by-app split, so
        # diagnosis can tell which application template is breaching
        apps = sorted(set(self._apps.values()))
        self._sla_episodes_by_app = {
            app: tel.counter("sla_episodes", {"app": app})
            for app in apps}
        self._sla_violations_by_app = {
            app: tel.counter("sla_violations", {"app": app})
            for app in apps}

    @property
    def want_more_episodes(self) -> bool:
        return (not self._stopped
                and self._episodes_run < self._episodes_wanted)

    def begin_episode(self, observations=None) -> None:
        """Start one episode; ``observations`` skips the internal
        reset when the caller (the batched driver) already reset the
        simulator and holds the initial observation rows."""
        if observations is None:
            observations = self.simulator.reset()
        self.service.begin_episode()   # re-arm the one-way fallback
        names = self.simulator.slice_names
        self._totals = {name: {"cost": 0.0, "usage": 0.0, "slots": 0}
                        for name in names}
        for i, name in enumerate(names):
            buffer = self._states.get(name)
            if buffer is None:
                buffer = np.empty(STATE_DIM)
                self._states[name] = buffer
            if isinstance(observations, np.ndarray):
                buffer[:] = observations[i]
            else:
                observations[name].vector(out=buffer)

    def serve_slot(self) -> Dict[str, np.ndarray]:
        """One decision batch: requests from the held observations,
        through the service, into the run digest.  Returns the
        actions to apply to the simulator."""
        names = self.simulator.slice_names
        requests = [
            DecisionRequest(slice_name=name, state=self._states[name])
            for name in names
        ]
        t0 = time.perf_counter()
        decisions = self.service.decide(requests)
        self._service_time += time.perf_counter() - t0
        for name in sorted(decisions):
            decision = decisions[name]
            self._digest.update(name.encode("utf-8"))
            self._digest.update(np.ascontiguousarray(
                decision.action, dtype=np.float64).tobytes())
            self._fallbacks += decision.fallback
        self._decisions_served += len(decisions)
        if (self._max_decisions is not None
                and self._decisions_served >= self._max_decisions):
            self._stopped = True
        return {name: decision.action
                for name, decision in decisions.items()}

    def record_step(self, costs: Dict[str, float],
                    usages: Dict[str, float],
                    observations: Dict[str, np.ndarray],
                    latencies: Optional[Dict[str, float]] = None
                    ) -> None:
        """Fold one slot's outcome into the episode totals and update
        the held observation buffers.

        ``latencies`` carries each slice's simulated end-to-end slot
        latency (transport + core + edge, ms) -- a *deterministic*
        signal, unlike the wall-clock ``decision_latency_ms``, which
        is what makes latency-SLO incident timelines reproducible.
        Both drive modes (the scalar ``run()`` loop and the fleet's
        lockstep batch engine) supply it identically.
        """
        for name, cost in costs.items():
            totals = self._totals[name]
            totals["cost"] += cost
            totals["usage"] += usages[name]
            totals["slots"] += 1
            self._states[name][:] = observations[name]
            self._slot_counter.inc()
            self._cost_counter.inc(max(float(cost), 0.0))
            if latencies is not None:
                latency = float(latencies[name])
                self._latency_hist.observe(latency)
                app = self._apps.get(name)
                if app is not None:
                    self._latency_by_app[app].observe(latency)
        self._slots_recorded += 1
        if (self.slo is not None
                and self._slots_recorded % self.slo_every == 0):
            self.slo.observe(self.telemetry,
                             at=float(self._slots_recorded))

    def end_episode(self) -> None:
        """Close one episode's per-slice SLA accounting."""
        self._episodes_run += 1
        for spec in self.cfg.slices:
            slots = self._totals[spec.name]["slots"]
            if slots == 0:
                continue
            mean_cost = self._totals[spec.name]["cost"] / slots
            mean_usage = self._totals[spec.name]["usage"] / slots
            violated = float(mean_cost > spec.sla.cost_threshold)
            self._per_slice_usage.setdefault(spec.name, []).append(
                mean_usage)
            self._per_slice_violation.setdefault(
                spec.name, []).append(violated)
            self._sla_episodes.inc()
            app = self._apps.get(spec.name)
            if app is not None:
                self._sla_episodes_by_app[app].inc()
            if violated:
                self._sla_violations.inc()
                if app is not None:
                    self._sla_violations_by_app[app].inc()

    def finish_run(self) -> LoadReport:
        """Assemble the :class:`LoadReport` of the driven run."""
        wall_time = time.perf_counter() - self._wall_start
        usage = {name: float(np.mean(vals))
                 for name, vals in self._per_slice_usage.items()}
        violation = {name: float(np.mean(vals))
                     for name, vals in self._per_slice_violation.items()}
        latency = self.telemetry.histogram("decision_latency_ms")
        decisions_served = self._decisions_served
        return LoadReport(
            scenario=self.spec.name,
            slices=len(self.cfg.slices),
            episodes=self._episodes_run,
            decisions=decisions_served,
            fallbacks=int(self._fallbacks),
            service_time_s=self._service_time,
            wall_time_s=wall_time,
            decisions_per_sec=(decisions_served / self._service_time
                               if self._service_time > 0 else 0.0),
            p50_latency_ms=latency.percentile(50.0),
            p99_latency_ms=latency.percentile(99.0),
            mean_usage=(float(np.mean(list(usage.values())))
                        if usage else 0.0),
            violation_rate=(float(np.mean(list(violation.values())))
                            if violation else 0.0),
            fallback_rate=(self._fallbacks / decisions_served
                           if decisions_served else 0.0),
            decision_digest=self._digest.hexdigest(),
            per_slice_usage=usage,
            per_slice_violation=violation)

    def run(self, episodes: int = 1,
            max_decisions: Optional[int] = None) -> LoadReport:
        """Serve ``episodes`` full episodes (or stop after
        ``max_decisions`` decisions, mid-episode if need be)."""
        self.begin_run(episodes, max_decisions)
        simulator = self.simulator
        while self.want_more_episodes:
            self.begin_episode()
            while not simulator.done and not self._stopped:
                actions = self.serve_slot()
                results = simulator.step(actions)
                self.record_step(
                    {name: result.cost
                     for name, result in results.items()},
                    {name: result.usage
                     for name, result in results.items()},
                    {name: result.observation.vector()
                     for name, result in results.items()},
                    {name: result.report.transport_latency_ms
                     + result.report.core_latency_ms
                     + result.report.edge_latency_ms
                     for name, result in results.items()})
            self.end_episode()
        return self.finish_run()
