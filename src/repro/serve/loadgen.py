"""Scenario-driven load generation against the decision service.

:class:`LoadGenerator` closes the serving loop: it instantiates any
registered scenario from :mod:`repro.scenarios` (optionally re-populated
to N slices via :func:`~repro.scenarios.spec.population`), feeds every
slot's per-slice observations to a :class:`~repro.serve.service
.SlicingService` as one decision batch, applies the returned
allocations to the simulator, and reports what a load test should:
decisions/sec, p50/p99 decision latency, the SLA-violation rate of the
traffic actually served, and the fallback rate.

Throughput is measured over *service* time (the ``decide()`` calls),
not simulator time -- the simulator is the client here.  Reports carry
a ``decision_digest`` (SHA-256 over every action served, in order) so
two runs from the same snapshot and seed can be byte-compared: the CI
smoke job replays 100 decisions twice and asserts the digests match.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.config import ExperimentConfig
from repro.scenarios.spec import ScenarioSpec, population
from repro.serve.policy_store import PolicySnapshot
from repro.serve.service import DecisionRequest, SlicingService
from repro.serve.telemetry import Telemetry


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    scenario: str
    slices: int
    episodes: int
    decisions: int
    fallbacks: int
    service_time_s: float
    wall_time_s: float
    decisions_per_sec: float
    p50_latency_ms: float
    p99_latency_ms: float
    mean_usage: float               # mean per-slot usage in [0, 1]
    violation_rate: float           # fraction of (episode, slice) pairs
    fallback_rate: float
    decision_digest: str            # SHA-256 over every served action
    per_slice_usage: Dict[str, float] = field(default_factory=dict)
    per_slice_violation: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flat summary for CLI/JSON output."""
        out = dataclasses.asdict(self)
        del out["per_slice_usage"], out["per_slice_violation"]
        return out


def scenario_with_population(spec: ScenarioSpec,
                             slices: Optional[int]) -> ScenarioSpec:
    """Re-target a scenario spec at an N-slice population.

    ``None`` keeps the spec's own population.  The derived spec keeps
    the traffic model and event timeline -- only the slice population
    (and hence the per-slice arrival derating) changes.
    """
    if slices is None:
        return spec
    return dataclasses.replace(spec, slices=population(slices))


class LoadGenerator:
    """Drive a service with a scenario's traffic at a slice count."""

    def __init__(self, snapshot: PolicySnapshot, scenario,
                 slices: Optional[int] = None,
                 seed: Optional[int] = None,
                 batching: bool = True,
                 eta: Optional[float] = None,
                 telemetry: Optional[Telemetry] = None) -> None:
        from repro.experiments.harness import resolve_scenario

        spec = resolve_scenario(scenario)
        if spec is None:
            raise ValueError("load generation needs a named scenario "
                             "or a ScenarioSpec")
        self.spec = scenario_with_population(spec, slices)
        # None defers to the scenario's own seed everywhere, so a unit
        # evaluation and a CLI run of the same spec agree exactly.
        self.cfg: ExperimentConfig = self.spec.build_config(seed=seed)
        self.seed = self.cfg.seed
        self.telemetry = telemetry if telemetry is not None \
            else Telemetry()
        self.service = SlicingService(
            snapshot, cfg=self.cfg, batching=batching, eta=eta,
            telemetry=self.telemetry, rng_seed=self.seed)
        self.simulator = self.spec.build_simulator(
            self.cfg, rng=np.random.default_rng(self.cfg.seed))

    def run(self, episodes: int = 1,
            max_decisions: Optional[int] = None) -> LoadReport:
        """Serve ``episodes`` full episodes (or stop after
        ``max_decisions`` decisions, mid-episode if need be)."""
        if episodes < 1:
            raise ValueError("episodes must be >= 1")
        simulator = self.simulator
        service = self.service
        digest = hashlib.sha256()
        decisions_served = 0
        fallbacks = 0
        service_time = 0.0
        episodes_run = 0
        per_slice_usage: Dict[str, List[float]] = {}
        per_slice_violation: Dict[str, List[float]] = {}
        wall_start = time.perf_counter()
        stop = False
        for _ in range(episodes):
            if stop:
                break
            observations = simulator.reset()
            service.begin_episode()   # re-arm the one-way fallback
            totals = {name: {"cost": 0.0, "usage": 0.0, "slots": 0}
                      for name in simulator.slice_names}
            while not simulator.done and not stop:
                requests = [
                    DecisionRequest(slice_name=name,
                                    state=observations[name].vector())
                    for name in simulator.slice_names
                ]
                t0 = time.perf_counter()
                decisions = service.decide(requests)
                service_time += time.perf_counter() - t0
                for name in sorted(decisions):
                    decision = decisions[name]
                    digest.update(name.encode("utf-8"))
                    digest.update(np.ascontiguousarray(
                        decision.action, dtype=np.float64).tobytes())
                    fallbacks += decision.fallback
                decisions_served += len(decisions)
                results = simulator.step(
                    {name: decision.action
                     for name, decision in decisions.items()})
                for name, result in results.items():
                    totals[name]["cost"] += result.cost
                    totals[name]["usage"] += result.usage
                    totals[name]["slots"] += 1
                    observations[name] = result.observation
                if (max_decisions is not None
                        and decisions_served >= max_decisions):
                    stop = True
            episodes_run += 1
            for spec in self.cfg.slices:
                slots = totals[spec.name]["slots"]
                if slots == 0:
                    continue
                mean_cost = totals[spec.name]["cost"] / slots
                mean_usage = totals[spec.name]["usage"] / slots
                per_slice_usage.setdefault(spec.name, []).append(
                    mean_usage)
                per_slice_violation.setdefault(spec.name, []).append(
                    float(mean_cost > spec.sla.cost_threshold))
        wall_time = time.perf_counter() - wall_start
        usage = {name: float(np.mean(vals))
                 for name, vals in per_slice_usage.items()}
        violation = {name: float(np.mean(vals))
                     for name, vals in per_slice_violation.items()}
        latency = self.telemetry.histogram("decision_latency_ms")
        return LoadReport(
            scenario=self.spec.name,
            slices=len(self.cfg.slices),
            episodes=episodes_run,
            decisions=decisions_served,
            fallbacks=int(fallbacks),
            service_time_s=service_time,
            wall_time_s=wall_time,
            decisions_per_sec=(decisions_served / service_time
                               if service_time > 0 else 0.0),
            p50_latency_ms=latency.percentile(50.0),
            p99_latency_ms=latency.percentile(99.0),
            mean_usage=(float(np.mean(list(usage.values())))
                        if usage else 0.0),
            violation_rate=(float(np.mean(list(violation.values())))
                            if violation else 0.0),
            fallback_rate=(fallbacks / decisions_served
                           if decisions_served else 0.0),
            decision_digest=digest.hexdigest(),
            per_slice_usage=usage,
            per_slice_violation=violation)
