"""Evaluate a saved policy snapshot on any scenario.

The "evaluate from snapshot" half of the train-once path: instead of
re-running offline + online training inside every experiment unit, the
robustness sweep (and any caller) loads a snapshot and replays
deterministic episodes through the decision service, producing the
same :class:`~repro.experiments.metrics.MethodResult` shape the
training-based units return.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.metrics import (
    MethodResult,
    usage_percent,
    violation_percent,
)
from repro.serve.loadgen import LoadGenerator
from repro.serve.policy_store import PolicySnapshot

#: Result labels per snapshot method (matches the trained units).
METHOD_LABELS = {
    "onslicing": "OnSlicing",
    "onrl": "OnRL",
    "baseline": "Baseline",
    "model_based": "Model_Based",
}


def evaluate_snapshot(snapshot: PolicySnapshot, scenario=None,
                      episodes: int = 1,
                      slices: Optional[int] = None,
                      seed: Optional[int] = None,
                      batching: bool = True) -> MethodResult:
    """Deterministic service-side evaluation of a snapshot.

    ``scenario`` defaults to the snapshot's training scenario --
    passing a different one measures transfer (the robustness
    question).  Metrics follow the Table 1 protocol: per-(episode,
    slice) SLA violations and mean usage over the served traffic.
    """
    generator = LoadGenerator(snapshot,
                              scenario if scenario is not None
                              else snapshot.scenario,
                              slices=slices, seed=seed,
                              batching=batching)
    report = generator.run(episodes=episodes)
    return MethodResult(
        method=METHOD_LABELS[snapshot.method],
        avg_resource_usage=usage_percent(report.mean_usage),
        avg_sla_violation=violation_percent(report.violation_rate),
        per_slice_usage=report.per_slice_usage,
        per_slice_violation=report.per_slice_violation)
