"""Serving layer: policy snapshots + the online decision service.

The paper's controller, turned into the deployable half of the
repository (the ROADMAP's "serve heavy traffic" north star):

* :mod:`repro.serve.policy_store` -- :class:`PolicyStore`, versioned
  tagged-JSON snapshots of trained policies for all four methods
  (``save``/``load``/``list``, content-digest verified);
* :mod:`repro.serve.service` -- :class:`SlicingService`, the online
  decision loop: micro-batched vectorised inference per policy, the
  paper's safe fallback to pi_b when pi_phi predicts an SLA violation,
  and allocation coordination through the
  :class:`~repro.domains.coordinator.ParameterCoordinator`;
* :mod:`repro.serve.loadgen` -- :class:`LoadGenerator`, which drives
  the service with any registered scenario at ``population(N)`` scale
  and reports decisions/sec, p50/p99 latency and SLA-violation rate;
* :mod:`repro.serve.telemetry` -- counters/histograms with JSONL
  export, so serve runs produce artefacts like everything else;
* :mod:`repro.serve.training` / :mod:`repro.serve.evaluate` -- the
  train-once path: ``train_snapshot`` ends in a stored snapshot,
  ``evaluate_snapshot`` replays it on any scenario without retraining.

CLI: ``python -m repro train --save``, ``serve``, ``loadgen``.
"""

from repro.serve.evaluate import evaluate_snapshot
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    scenario_with_population,
)
from repro.serve.policy_store import (
    SNAPSHOT_METHODS,
    PolicySnapshot,
    PolicyStore,
    SnapshotInfo,
    snapshot_baseline,
    snapshot_model_based,
    snapshot_onrl,
    snapshot_onslicing,
)
from repro.serve.service import (
    Decision,
    DecisionRequest,
    SlicingService,
)
from repro.serve.telemetry import Counter, Gauge, Histogram, Telemetry
from repro.serve.training import (
    DEFAULT_STORE_DIR,
    resolve_serving_snapshot,
    train_snapshot,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "SNAPSHOT_METHODS",
    "Counter",
    "Decision",
    "DecisionRequest",
    "Gauge",
    "Histogram",
    "LoadGenerator",
    "LoadReport",
    "PolicySnapshot",
    "PolicyStore",
    "SlicingService",
    "SnapshotInfo",
    "Telemetry",
    "evaluate_snapshot",
    "resolve_serving_snapshot",
    "scenario_with_population",
    "snapshot_baseline",
    "snapshot_model_based",
    "snapshot_onrl",
    "snapshot_onslicing",
    "train_snapshot",
]
