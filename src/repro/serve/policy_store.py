"""Versioned on-disk policy snapshots for the decision service.

A :class:`PolicySnapshot` captures everything the online slicing
service needs to make decisions without retraining: per-slice policy
weights (exported through the ``state_dict`` round-trip helpers on
:class:`~repro.nn.network.MLP`-based models), the resolved
:class:`~repro.config.ExperimentConfig`, the scenario the policy was
trained on, and the code version of the training run.  Snapshots are
stored as tagged JSON (:mod:`repro.runtime.serialization` -- no
pickle, no code execution on load) under ``<name>@<version>.json``;
saving the same name again bumps the version, so a store directory is
an append-only history of deployments.

All four comparison methods snapshot:

* ``onslicing`` -- per-slice actor/critic/Gaussian head, the pi_phi
  cost estimator (weights + target scaling), the Lagrangian
  multiplier, and the rule-based fallback policy pi_b;
* ``onrl``      -- per-slice actor/critic/Gaussian head;
* ``baseline``  -- the grid-searched :class:`RuleBasedPolicy` tables;
* ``model_based`` -- config only (policies are rebuilt analytically).

Full *training-state* checkpoints (optimiser state, buffers, the
action modifier) remain :mod:`repro.core.persistence`'s job; the store
holds the decision surface.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from repro.config import ExperimentConfig
from repro.runtime.cache import code_version, content_key
from repro.runtime.serialization import from_jsonable, to_jsonable

FORMAT = 1

#: Methods the store knows how to snapshot and serve.
SNAPSHOT_METHODS = ("onslicing", "onrl", "baseline", "model_based")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_FILE_RE = re.compile(r"^(?P<name>[A-Za-z0-9][A-Za-z0-9._-]*)"
                      r"@(?P<version>\d{4})\.json$")


@dataclass(frozen=True)
class PolicySnapshot:
    """One immutable, serialisable policy deployment."""

    name: str
    method: str
    scenario: str
    seed: int
    config: ExperimentConfig
    #: Per-slice payload, keyed by the training slice name.  Contents
    #: are method-specific (see module docstring) but always include
    #: the slice's ``app`` so a snapshot can serve foreign populations.
    policies: Dict[str, Dict[str, Any]]
    code_version: str = ""
    version: int = 0
    created_unix: float = 0.0

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"invalid snapshot name {self.name!r}")
        if self.method not in SNAPSHOT_METHODS:
            raise ValueError(f"unknown snapshot method {self.method!r}; "
                             f"expected one of {SNAPSHOT_METHODS}")

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"

    @property
    def digest(self) -> str:
        """Content hash of everything that changes decisions."""
        return content_key({"method": self.method,
                            "config": self.config,
                            "policies": self.policies})

    def slice_apps(self) -> Dict[str, str]:
        return {name: payload["app"]
                for name, payload in self.policies.items()}


@dataclass(frozen=True)
class SnapshotInfo:
    """One store listing row (no weights loaded)."""

    name: str
    version: int
    method: str
    scenario: str
    created_unix: float
    digest: str
    path: str

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"


class PolicyStore:
    """Append-only directory of versioned policy snapshots."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str, version: int) -> str:
        return os.path.join(self.directory, f"{name}@{version:04d}.json")

    def _meta_path(self, name: str, version: int) -> str:
        return os.path.join(self.directory,
                            f"{name}@{version:04d}.meta.json")

    def versions(self, name: str) -> List[int]:
        """Stored versions of ``name``, ascending (empty if none)."""
        found = []
        for filename in os.listdir(self.directory):
            match = _FILE_RE.match(filename)
            if match and match.group("name") == name:
                found.append(int(match.group("version")))
        return sorted(found)

    def save(self, snapshot: PolicySnapshot) -> PolicySnapshot:
        """Store ``snapshot`` under the next version of its name.

        Returns the snapshot actually written (version assigned,
        creation time and code version stamped).  Writes are atomic
        (tmp file + hard-link into place) so a concurrent reader never
        sees a partial snapshot, and version claims are *exclusive*:
        two concurrent savers of the same name get consecutive
        versions instead of silently overwriting each other.
        """
        stamped = replace(
            snapshot, created_unix=time.time(),
            code_version=snapshot.code_version or code_version())
        while True:
            versions = self.versions(stamped.name)
            version = (versions[-1] + 1) if versions else 1
            stamped = replace(stamped, version=version)
            payload = {
                "format": FORMAT,
                "name": stamped.name,
                "version": stamped.version,
                "method": stamped.method,
                "scenario": stamped.scenario,
                "seed": stamped.seed,
                "code_version": stamped.code_version,
                "created_unix": stamped.created_unix,
                "digest": stamped.digest,
                "config": to_jsonable(stamped.config),
                "policies": to_jsonable(stamped.policies),
            }
            path = self._path(stamped.name, version)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            try:
                os.link(tmp, path)  # atomic claim: fails if taken
            except FileExistsError:
                os.remove(tmp)
                continue  # lost the race: claim the next version
            except OSError:
                # filesystem without hard links: best-effort rename
                if os.path.exists(path):
                    os.remove(tmp)
                    continue
                os.replace(tmp, path)
            else:
                os.remove(tmp)
            break
        meta = {key: payload[key]
                for key in ("format", "name", "version", "method",
                            "scenario", "seed", "code_version",
                            "created_unix", "digest")}
        meta_tmp = f"{self._meta_path(stamped.name, version)}" \
                   f".tmp.{os.getpid()}"
        with open(meta_tmp, "w", encoding="utf-8") as fh:
            json.dump(meta, fh)
        os.replace(meta_tmp, self._meta_path(stamped.name, version))
        return stamped

    def load(self, ref: str) -> PolicySnapshot:
        """Load ``"name"`` (latest version) or ``"name@N"`` (exact).

        The stored digest is re-verified against the decoded contents,
        so a corrupted or hand-edited snapshot fails loudly instead of
        serving wrong allocations.
        """
        name, _, version_text = ref.partition("@")
        if version_text:
            if not version_text.isdigit():
                raise ValueError(
                    f"invalid snapshot ref {ref!r}: expected 'name' "
                    "or 'name@<version>' with an integer version")
            version = int(version_text)
        else:
            versions = self.versions(name)
            if not versions:
                raise KeyError(f"no snapshot named {name!r} in "
                               f"{self.directory}")
            version = versions[-1]
        path = self._path(name, version)
        if not os.path.exists(path):
            raise KeyError(f"no snapshot {name}@{version} in "
                           f"{self.directory}")
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("format") != FORMAT:
            raise ValueError(
                f"unsupported snapshot format {payload.get('format')!r}")
        snapshot = PolicySnapshot(
            name=payload["name"], method=payload["method"],
            scenario=payload["scenario"], seed=payload["seed"],
            config=from_jsonable(payload["config"]),
            policies=from_jsonable(payload["policies"]),
            code_version=payload["code_version"],
            version=payload["version"],
            created_unix=payload["created_unix"])
        if snapshot.digest != payload["digest"]:
            raise ValueError(
                f"snapshot {snapshot.ref} is corrupt: stored digest "
                f"{payload['digest'][:12]} != recomputed "
                f"{snapshot.digest[:12]}")
        return snapshot

    def list(self) -> List[SnapshotInfo]:
        """Every stored snapshot (metadata only), oldest first.

        Reads the small ``.meta.json`` sidecars written alongside each
        snapshot, so listing a store of many multi-megabyte snapshots
        never decodes weight arrays; a snapshot missing its sidecar
        (hand-copied into the store) falls back to the full file.
        """
        rows = []
        for filename in sorted(os.listdir(self.directory)):
            match = _FILE_RE.match(filename)
            if not match:
                continue
            path = os.path.join(self.directory, filename)
            meta_path = self._meta_path(match.group("name"),
                                        int(match.group("version")))
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                try:
                    with open(path, "r", encoding="utf-8") as fh:
                        payload = json.load(fh)
                except (OSError, ValueError):
                    continue  # partial/corrupt file: skip the row
            rows.append(SnapshotInfo(
                name=payload["name"], version=payload["version"],
                method=payload["method"], scenario=payload["scenario"],
                created_unix=payload["created_unix"],
                digest=payload["digest"], path=path))
        rows.sort(key=lambda info: (info.created_unix, info.ref))
        return rows

    def latest(self, method: Optional[str] = None
               ) -> Optional[SnapshotInfo]:
        """The most recently saved snapshot (optionally of one method)."""
        rows = [info for info in self.list()
                if method is None or info.method == method]
        return rows[-1] if rows else None

    def __len__(self) -> int:
        return len(self.list())


# ---- snapshot builders ------------------------------------------------


def _slice_apps(cfg: ExperimentConfig) -> Dict[str, str]:
    return {spec.name: spec.app for spec in cfg.slices}


def snapshot_onslicing(name: str, bundle, scenario: str = "default",
                       seed: int = 42) -> PolicySnapshot:
    """Snapshot a trained :class:`~repro.experiments.harness
    .OnSlicingBundle`: per-slice pi_theta weights, the pi_phi estimator
    driving the safe fallback, the Lagrangian multiplier, and pi_b."""
    apps = _slice_apps(bundle.cfg)
    policies: Dict[str, Dict[str, Any]] = {}
    for slice_name, agent in bundle.agents.items():
        policies[slice_name] = {
            "app": apps[slice_name],
            "model": agent.model.state_dict(),
            "estimator": agent.estimator.network.state_dict(),
            "estimator_scale": [agent.estimator._target_mean,
                                agent.estimator._target_std],
            "lagrangian": float(agent.lagrangian.value),
            "baseline": bundle.baselines[slice_name],
        }
    return PolicySnapshot(name=name, method="onslicing",
                          scenario=scenario, seed=seed,
                          config=bundle.cfg, policies=policies)


def snapshot_onrl(name: str, cfg: ExperimentConfig, agents,
                  scenario: str = "default",
                  seed: int = 17) -> PolicySnapshot:
    """Snapshot trained per-slice :class:`OnRLAgent` policies."""
    apps = _slice_apps(cfg)
    policies = {
        slice_name: {"app": apps[slice_name],
                     "model": agent.state_dict()}
        for slice_name, agent in agents.items()
    }
    return PolicySnapshot(name=name, method="onrl", scenario=scenario,
                          seed=seed, config=cfg, policies=policies)


def snapshot_baseline(name: str, cfg: ExperimentConfig, baselines,
                      scenario: str = "default",
                      seed: int = 42) -> PolicySnapshot:
    """Snapshot the grid-searched rule-based policy tables."""
    apps = _slice_apps(cfg)
    policies = {
        slice_name: {"app": apps[slice_name], "baseline": policy}
        for slice_name, policy in baselines.items()
    }
    return PolicySnapshot(name=name, method="baseline",
                          scenario=scenario, seed=seed, config=cfg,
                          policies=policies)


def snapshot_model_based(name: str, cfg: ExperimentConfig,
                         scenario: str = "default",
                         seed: int = 42) -> PolicySnapshot:
    """Snapshot the model-based method (config only -- the analytic
    policies are rebuilt from the slice specs at serve time)."""
    policies = {spec.name: {"app": spec.app} for spec in cfg.slices}
    return PolicySnapshot(name=name, method="model_based",
                          scenario=scenario, seed=seed, config=cfg,
                          policies=policies)
