"""Train-once entry points that end in a policy snapshot.

``python -m repro train --save NAME`` lands here: train one method on
one scenario at a schedule scale, snapshot the decision surface into a
:class:`~repro.serve.policy_store.PolicyStore`, and from then on the
service, the load generator and the robustness sweep evaluate from the
snapshot -- no retraining per run.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.config import ExperimentConfig
from repro.runtime.units import schedule_epochs
from repro.serve.policy_store import (
    PolicySnapshot,
    PolicyStore,
    snapshot_baseline,
    snapshot_model_based,
    snapshot_onrl,
    snapshot_onslicing,
)

#: Where ``python -m repro train --save`` (and every serving consumer)
#: keeps snapshots unless told otherwise.
DEFAULT_STORE_DIR = ".repro_policies"

#: Paper-equivalent full schedules scaled by ``scale`` (the same
#: shrink rule the robustness artefact uses).
FULL_EPOCHS = 12
FULL_OFFLINE_EPISODES = 4
FULL_EXPLORATION_EPISODES = 6


def train_snapshot(method: str, scenario="default",
                   scale: float = 0.1, seed: int = 42,
                   name: Optional[str] = None,
                   store: Optional[PolicyStore] = None,
                   cfg: Optional[ExperimentConfig] = None
                   ) -> PolicySnapshot:
    """Train ``method`` on ``scenario`` and build a snapshot.

    ``scale`` shrinks the training schedule exactly like the artefact
    generators; the static methods (baseline / model_based) have no
    schedule and ignore it.  When ``store`` is given the snapshot is
    saved (version assigned) before being returned.
    """
    from repro.experiments import harness

    spec = harness.resolve_scenario(scenario)
    scenario_name = spec.name if spec is not None else "default"
    if cfg is None:
        cfg = (spec.build_config() if spec is not None
               else ExperimentConfig())
    name = name or f"{method}-{scenario_name}-seed{seed}"

    if method == "onslicing":
        epochs = schedule_epochs(scale, FULL_EPOCHS)
        bundle = harness.build_onslicing(
            cfg,
            offline_episodes=max(
                int(round(FULL_OFFLINE_EPISODES * scale)), 1),
            exploration_episodes=max(
                int(round(FULL_EXPLORATION_EPISODES * scale)), 1),
            seed=seed, scenario=spec)
        harness.run_online_phase(bundle, epochs=epochs,
                                 episodes_per_epoch=2)
        snapshot = snapshot_onslicing(name, bundle,
                                      scenario=scenario_name,
                                      seed=seed)
    elif method == "onrl":
        epochs = schedule_epochs(scale, FULL_EPOCHS)
        trained = harness.train_onrl(cfg, epochs=epochs,
                                     episodes_per_epoch=2, seed=seed,
                                     scenario=spec)
        snapshot = snapshot_onrl(name, cfg, trained["agents"],
                                 scenario=scenario_name, seed=seed)
    elif method == "baseline":
        snapshot = snapshot_baseline(name, cfg,
                                     harness.fit_baselines(cfg),
                                     scenario=scenario_name, seed=seed)
    elif method == "model_based":
        snapshot = snapshot_model_based(name, cfg,
                                        scenario=scenario_name,
                                        seed=seed)
    else:
        raise ValueError(f"unknown method {method!r}")

    if store is not None:
        snapshot = store.save(snapshot)
    return snapshot


def resolve_serving_snapshot(store_dir: str,
                             ref: Optional[str] = None
                             ) -> PolicySnapshot:
    """The snapshot a serving consumer (serve/loadgen/fleet) should
    use: an explicit ``ref`` wins, else the newest stored snapshot,
    else an empty store bootstraps a model-based snapshot (the only
    method needing zero training) so every serving entry point works
    from a fresh checkout.  The bootstrap note goes to stderr.
    """
    store = PolicyStore(store_dir)
    if ref is not None:
        return store.load(ref)
    latest = store.latest()
    if latest is not None:
        return store.load(latest.ref)
    print(f"note: policy store {store_dir!r} is empty; "
          "bootstrapping a model_based snapshot (train your own with "
          "'python -m repro train --save')", file=sys.stderr)
    return train_snapshot("model_based", scenario="default",
                          store=store)
