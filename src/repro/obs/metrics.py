"""Unified metrics registry: counters, gauges, histograms, exporters.

This module is the general home of what started life as serve-side
telemetry (``repro.serve.telemetry`` remains as a re-export shim, so
snapshot keys, checkpoint states and fleet merge semantics are
unchanged).  A :class:`Telemetry` registry hands out named
:class:`Counter`, :class:`Gauge` and :class:`Histogram` instruments --
optionally *labeled* with a small ``{key: value}`` dict, Prometheus
style -- and exports them as JSONL (one JSON object per instrument)
or Prometheus text exposition format.

Every instrument is *mergeable*: a fleet shard aggregates its cells'
telemetry locally, ships a compact serialisable state to the
coordinator, and the coordinator folds shard states into one fleet
view (:meth:`Counter.merge`, :meth:`Histogram.merge`,
:meth:`Telemetry.merge`) -- the memory cost of the aggregate is
bounded by the instrument count, never by the observation count.
Gauges merge *additively* (the fleet view of a gauge is the sum over
shards), which is the right semantics for the occupancy-style gauges
this repo records; last-write-wins gauges do not survive a merge tree
and are deliberately not offered.

Timestamps are injectable: ``Telemetry(clock=...)`` replaces the
``time.time`` used by the exporters, so exported artefacts are
deterministic under test and span/metric timelines can be correlated
against a shared clock.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

#: Percentiles exported for every histogram.
EXPORT_PERCENTILES = (50.0, 90.0, 99.0)

#: Exact-mode capacity: a histogram keeps raw samples (exact
#: percentiles) until it has seen this many observations, then folds
#: them into the fixed bucket grid and stays bounded forever after.
EXACT_SAMPLE_LIMIT = 1024

#: Fixed log-spaced bucket grid shared by *every* histogram, so any
#: two histograms merge bucket-for-bucket.  2**0.25 growth gives a
#: worst-case relative quantile error of ~9%; the span covers
#: sub-microsecond latencies up to ~1e9 (counts, byte totals).
BUCKET_FACTOR = 2.0 ** 0.25
BUCKET_MIN = 1e-6
_DECADES = np.log(1e9 / BUCKET_MIN)
BUCKET_COUNT = int(np.ceil(_DECADES / np.log(BUCKET_FACTOR)))
#: Bucket ``i`` (1-based in the counts array) covers
#: ``[_EDGES[i-1], _EDGES[i])``; counts[0] is the underflow bucket
#: (values below ``BUCKET_MIN``, zeros included), counts[-1] overflow.
_EDGES = BUCKET_MIN * BUCKET_FACTOR ** np.arange(BUCKET_COUNT + 1)

#: Characters that would break the ``name{k="v",...}`` key grammar and
#: the Prometheus exposition format.
_LABEL_FORBIDDEN = re.compile(r'[{}=,"\n\\]')


def instrument_key(name: str,
                   labels: Optional[Mapping[str, str]] = None) -> str:
    """Registry key for a (name, labels) pair.

    Label-less instruments keep their bare name (so existing snapshot
    keys, checkpoint states and fleet counters are unchanged); labeled
    instruments get the Prometheus-style ``name{k="v",...}`` with keys
    sorted, so the key is deterministic.
    """
    if not labels:
        return name
    parts = []
    for key in sorted(labels):
        value = str(labels[key])
        if _LABEL_FORBIDDEN.search(key) or _LABEL_FORBIDDEN.search(value):
            raise ValueError(
                f"label {key!r}={value!r} contains a character reserved "
                "by the key grammar ({{}}=,\" or newline)")
        parts.append(f'{key}="{value}"')
    return name + "{" + ",".join(parts) + "}"


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`instrument_key` (labels empty for bare names)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value.strip('"')
    return name, labels


class Counter:
    """A monotonically increasing named count."""

    def __init__(self, name: str,
                 labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.labels: Dict[str, str] = \
            {k: str(v) for k, v in (labels or {}).items()}
        self.key = instrument_key(name, self.labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold another counter's total into this one."""
        self.inc(other.value)
        return self

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {"metric": self.name, "type": "counter",
                                  "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Gauge:
    """A value that can go up and down (queue depth, active cells).

    Merging is *additive*: the fleet view of a gauge is the sum of the
    shard gauges, matching counter/histogram fan-in.  Use counters for
    monotone totals and histograms for distributions; gauges are for
    instantaneous occupancy-style readings that sum across shards.
    """

    def __init__(self, name: str,
                 labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.labels: Dict[str, str] = \
            {k: str(v) for k, v in (labels or {}).items()}
        self.key = instrument_key(name, self.labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> "Gauge":
        """Fold another gauge in (additive, see class docstring)."""
        self.value += other.value
        return self

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {"metric": self.name, "type": "gauge",
                                  "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Histogram:
    """Bounded, mergeable histogram with percentile readout.

    Small samples stay *exact*: observations are kept verbatim (and
    percentiles computed from them) until :data:`EXACT_SAMPLE_LIMIT`,
    the regime every single-cell serve run lives in.  Past the limit
    the samples fold into the fixed log-spaced bucket grid and memory
    stays O(buckets) no matter how many observations follow -- the
    regime a fleet aggregate lives in.  ``count``/``sum``/``min``/
    ``max`` are tracked exactly in both modes; bucket-mode percentiles
    interpolate linearly *within* the straddling bucket (<= ~9%
    relative error by bucket construction), so quantile readouts --
    and the burn-rate math built on them -- move smoothly with new
    observations instead of jumping edge to edge.

    Snapshot keys are unchanged from the exact-only implementation
    (``count``/``sum``/``mean``/``p50``/``p90``/``p99``); ``mode`` is
    additive.
    """

    def __init__(self, name: str,
                 labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.labels: Dict[str, str] = \
            {k: str(v) for k, v in (labels or {}).items()}
        self.key = instrument_key(name, self.labels)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        #: Raw samples while exact; ``None`` once folded into buckets.
        self._samples: Optional[List[float]] = []
        self._buckets: Optional[np.ndarray] = None

    # ---- recording ---------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self._samples is not None:
            self._samples.append(value)
            if len(self._samples) > EXACT_SAMPLE_LIMIT:
                self._fold()
        else:
            self._buckets[_bucket_index(value)] += 1

    def _fold(self) -> None:
        """Switch from exact samples to the bounded bucket grid."""
        self._buckets = _bucketize(self._samples)
        self._samples = None

    # ---- reading -----------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def exact(self) -> bool:
        """Whether percentiles are still computed from raw samples."""
        return self._samples is not None

    def percentile(self, p: float) -> float:
        """Percentile ``p`` in [0, 100] (0.0 when empty).

        Exact in exact mode; bucket-interpolated (then clipped to the
        observed [min, max]) once folded.
        """
        if self._count == 0:
            return 0.0
        if self._samples is not None:
            return float(np.percentile(np.asarray(self._samples), p))
        target = (p / 100.0) * self._count
        cumulative = np.cumsum(self._buckets)
        index = int(np.searchsorted(cumulative, max(target, 1.0)))
        index = min(index, len(self._buckets) - 1)
        below = cumulative[index - 1] if index > 0 else 0
        inside = self._buckets[index]
        frac = ((target - below) / inside) if inside else 0.0
        frac = min(max(frac, 0.0), 1.0)
        if index == 0:                     # underflow: [<=0, BUCKET_MIN)
            low, high = min(self._min, 0.0), BUCKET_MIN
            value = low + frac * (high - low)
        elif index == len(self._buckets) - 1:   # overflow bucket
            value = self._max
        else:
            low, high = _EDGES[index - 1], _EDGES[index]
            value = low + frac * (high - low)   # linear within bucket
        return float(min(max(value, self._min), self._max))

    def count_over(self, threshold: float) -> float:
        """Observations strictly above ``threshold`` (0.0 when empty).

        Exact in exact mode.  In bucketed mode, full buckets above the
        threshold count whole and the straddling bucket contributes a
        linearly interpolated share -- the same within-bucket model as
        :meth:`percentile` -- so SLI fractions built on it (e.g. "how
        much traffic blew the latency budget") stay smooth rather than
        step-quantized at bucket edges.
        """
        threshold = float(threshold)
        if self._count == 0 or threshold >= self._max:
            return 0.0
        if threshold < self._min:
            return float(self._count)
        if self._samples is not None:
            return float(sum(1 for v in self._samples if v > threshold))
        index = _bucket_index(threshold)
        above = float(self._buckets[index + 1:].sum())
        inside = int(self._buckets[index])
        if inside:
            if index == 0:                 # underflow: [<=0, BUCKET_MIN)
                low, high = min(self._min, 0.0), BUCKET_MIN
            elif index == len(self._buckets) - 1:   # overflow bucket
                low, high = _EDGES[-1], max(self._max, float(_EDGES[-1]))
            else:
                low, high = float(_EDGES[index - 1]), \
                    float(_EDGES[index])
            span = high - low
            frac = (high - threshold) / span if span > 0 else 0.0
            above += inside * min(max(frac, 0.0), 1.0)
        return float(min(above, self._count))

    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "metric": self.name, "type": "histogram",
            "count": self.count, "sum": self.total, "mean": self.mean,
            "mode": "exact" if self.exact else "bucketed",
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        for p in EXPORT_PERCENTILES:
            out[f"p{p:g}"] = self.percentile(p)
        return out

    # ---- merging / serialisation -------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram.

        ``other`` is never mutated.  Merging is commutative and
        associative up to bucket resolution: two exact histograms stay
        exact while the combined sample count fits the exact limit,
        otherwise the merge lands on the shared bucket grid.
        """
        if other._count == 0:
            return self
        if (self._samples is not None and other._samples is not None
                and self._count + other._count <= EXACT_SAMPLE_LIMIT):
            self._samples.extend(other._samples)
        else:
            if self._samples is not None:
                self._fold()
            self._buckets = self._buckets + (
                other._buckets if other._buckets is not None
                else _bucketize(other._samples))
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def state(self) -> Dict[str, object]:
        """JSON-safe state for checkpointing / shard-to-coordinator
        shipping (inverse: :meth:`from_state`)."""
        out: Dict[str, object] = {
            "name": self.name, "count": self._count, "sum": self._sum,
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        if self._count:
            out["min"], out["max"] = self._min, self._max
        if self._samples is not None:
            out["samples"] = list(self._samples)
        else:
            out["buckets"] = self._buckets.tolist()
        return out

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "Histogram":
        histogram = cls(str(state["name"]), state.get("labels"))
        histogram._count = int(state["count"])
        histogram._sum = float(state["sum"])
        histogram._min = float(state.get("min", float("inf")))
        histogram._max = float(state.get("max", float("-inf")))
        if "samples" in state:
            histogram._samples = [float(v) for v in state["samples"]]
        else:
            histogram._samples = None
            buckets = np.asarray(state["buckets"], dtype=np.int64)
            if buckets.shape != (BUCKET_COUNT + 2,):
                raise ValueError(
                    f"histogram state for {histogram.name!r} has "
                    f"{buckets.shape[0]} buckets, expected "
                    f"{BUCKET_COUNT + 2} (incompatible grid)")
            histogram._buckets = buckets
        return histogram


def _bucket_index(value: float) -> int:
    """Counts-array index for ``value`` (0 underflow, -1 overflow)."""
    if value < BUCKET_MIN:
        return 0
    if value >= _EDGES[-1]:
        return BUCKET_COUNT + 1
    return int(np.searchsorted(_EDGES, value, side="right"))


def _bucketize(samples: List[float]) -> np.ndarray:
    """Fold raw samples onto the shared grid (underflow+grid+overflow)."""
    counts = np.zeros(BUCKET_COUNT + 2, dtype=np.int64)
    if samples:
        values = np.asarray(samples, dtype=float)
        indices = np.searchsorted(_EDGES, values, side="right")
        indices[values < BUCKET_MIN] = 0
        indices[values >= _EDGES[-1]] = BUCKET_COUNT + 1
        np.add.at(counts, indices, 1)
    return counts


def _prom_name(name: str) -> str:
    """Sanitise a metric name for the Prometheus exposition format."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: Mapping[str, str],
                 extra: Optional[Mapping[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{merged[k]}"'
                     for k in sorted(merged))
    return "{" + inner + "}"


class Telemetry:
    """Registry of named instruments for one service/loadgen run."""

    def __init__(self,
                 clock: Callable[[], float] = time.time) -> None:
        self._clock = clock
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, key: str, want: str) -> None:
        for kind, registry in (("counter", self._counters),
                               ("gauge", self._gauges),
                               ("histogram", self._histograms)):
            if kind != want and key in registry:
                raise ValueError(f"{key!r} is already a {kind}")

    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        key = instrument_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            self._check_free(key, "counter")
            instrument = self._counters[key] = Counter(name, labels)
        return instrument

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        key = instrument_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            self._check_free(key, "gauge")
            instrument = self._gauges[key] = Gauge(name, labels)
        return instrument

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None) -> Histogram:
        key = instrument_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            self._check_free(key, "histogram")
            instrument = self._histograms[key] = Histogram(name, labels)
        return instrument

    def counters(self) -> Dict[str, Counter]:
        """Key -> counter, in insertion order (live objects)."""
        return dict(self._counters)

    def find_counter(self, key: str) -> Optional[Counter]:
        """The counter registered under ``key``, or ``None`` -- a
        copy-free read for hot-path consumers (the SLO evaluator
        re-reads the registry every few decision batches)."""
        return self._counters.get(key)

    def find_histogram(self, key: str) -> Optional["Histogram"]:
        """The histogram registered under ``key``, or ``None``."""
        return self._histograms.get(key)

    def gauges(self) -> Dict[str, Gauge]:
        """Key -> gauge, in insertion order (live objects)."""
        return dict(self._gauges)

    def histograms(self) -> Dict[str, Histogram]:
        """Key -> histogram, in insertion order (live objects)."""
        return dict(self._histograms)

    def adopt(self, instrument) -> None:
        """Fold a free-standing instrument into the registry under its
        own (name, labels) key -- the rebuild side of checkpoint
        resume, where instruments arrive as deserialised objects rather
        than through the accessor methods."""
        if isinstance(instrument, Counter):
            self.counter(instrument.name,
                         instrument.labels).merge(instrument)
        elif isinstance(instrument, Gauge):
            self.gauge(instrument.name,
                       instrument.labels).merge(instrument)
        elif isinstance(instrument, Histogram):
            self.histogram(instrument.name,
                           instrument.labels).merge(instrument)
        else:
            raise TypeError(f"cannot adopt {type(instrument).__name__}")

    def merge(self, other: "Telemetry") -> "Telemetry":
        """Fold every instrument of ``other`` into this registry --
        the coordinator side of shard aggregation."""
        for counter in other._counters.values():
            self.adopt(counter)
        for gauge in other._gauges.values():
            self.adopt(gauge)
        for histogram in other._histograms.values():
            self.adopt(histogram)
        return self

    def snapshot(self) -> List[Dict[str, object]]:
        """Every instrument's current reading, counters first (then
        gauges, then histograms), each group sorted by key."""
        rows = [c.snapshot() for _, c in sorted(self._counters.items())]
        rows += [g.snapshot() for _, g in sorted(self._gauges.items())]
        rows += [h.snapshot() for _, h in sorted(self._histograms.items())]
        return rows

    def export_jsonl(self, path: str,
                     run_label: Optional[str] = None) -> str:
        """Write one JSON object per instrument to ``path`` (JSONL).

        Parent directories are created; the file is overwritten (one
        file per run -- label runs via the filename or ``run_label``).
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        stamp = self._clock()
        with open(path, "w", encoding="utf-8") as fh:
            for row in self.snapshot():
                if run_label is not None:
                    row = {"run": run_label, **row}
                fh.write(json.dumps({**row, "unix_time": stamp}) + "\n")
        return path

    def export_prometheus(self) -> str:
        """Render every instrument in the Prometheus text exposition
        format (v0.0.4): counters as ``<name>_total``, gauges as-is,
        histograms as summaries (quantile series + ``_sum``/``_count``).
        """
        lines: List[str] = []
        for _, counter in sorted(self._counters.items()):
            name = _prom_name(counter.name) + "_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{_prom_labels(counter.labels)} "
                         f"{counter.value:g}")
        for _, gauge in sorted(self._gauges.items()):
            name = _prom_name(gauge.name)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_prom_labels(gauge.labels)} "
                         f"{gauge.value:g}")
        for _, histogram in sorted(self._histograms.items()):
            name = _prom_name(histogram.name)
            lines.append(f"# TYPE {name} summary")
            for p in EXPORT_PERCENTILES:
                labels = _prom_labels(histogram.labels,
                                      {"quantile": f"{p / 100.0:g}"})
                lines.append(f"{name}{labels} "
                             f"{histogram.percentile(p):g}")
            base = _prom_labels(histogram.labels)
            lines.append(f"{name}_sum{base} {histogram.total:g}")
            lines.append(f"{name}_count{base} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def export_prometheus_file(self, path: str) -> str:
        """Write :meth:`export_prometheus` output to ``path``."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.export_prometheus())
        return path
