"""Structured tracing: low-overhead spans, mergeable JSONL trace files.

The span API is one call::

    from repro.obs.trace import trace

    with trace("serve.decide", cell="cell-3", scenario="bursty"):
        ...

When tracing is disabled (the default) ``trace()`` returns a shared
null span and the cost is one global read plus a no-op context
manager -- cheap enough to leave in every hot path.  When a
:class:`Tracer` is installed (:func:`configure`, or
:func:`configure_from_env` in worker processes), every span is timed
and folded into an in-memory aggregation keyed by ``(path, attrs)``
where *path* is the ``/``-joined stack of active span names, so the
rollup is a flamegraph: ``fleet.shard/serve.decide/serve.forward``.
Individual span events are *sampled* (one JSONL row every
``sample_interval``-th occurrence of a key) so trace files stay small
at full instrumentation density.

Trace files are self-describing JSONL -- a ``header`` row, sampled
``span`` rows, and aggregated ``stats`` rows written on flush (deltas:
the aggregation clears on flush, so appends from long runs remain
correct).  Files from different processes merge by concatenation;
:func:`read_rollup` sums ``stats`` rows across any set of files or
directories, and :func:`rollup_digest` hashes the *attributed* span
profile (rows carrying at least one non-volatile attribute, counts
only) -- per-cell serve spans carry ``cell``/``scenario`` attrs and
are emitted once per slot per cell in both drive modes, so the digest
is invariant to shard count, mirroring the telemetry-merge guarantee.

Cross-process wiring: set ``REPRO_TRACE_DIR`` (the ``fleet run
--trace-dir`` flag does this) and every process that calls
:func:`configure_from_env` appends to its own
``trace-<label>-<pid>.jsonl`` in that directory; ``repro obs report
<dir>`` merges them.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import time
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

TRACE_FORMAT = 1
DEFAULT_SAMPLE_INTERVAL = 16
ENV_TRACE_DIR = "REPRO_TRACE_DIR"
ENV_TRACE_SAMPLE = "REPRO_TRACE_SAMPLE"
#: Attributes that legitimately differ between equivalent runs
#: (process ids, shard indices); excluded from the rollup digest.
VOLATILE_ATTRS = frozenset({"pid", "shard", "worker"})

AttrsKey = Tuple[Tuple[str, str], ...]
RollupKey = Tuple[str, AttrsKey]


class _NullSpan:
    """Returned by :func:`trace` when tracing is off; does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """A live span: times itself, reports to its tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "path", "child_s", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack
        self.path = (stack[-1].path + "/" + self.name) if stack \
            else self.name
        self.child_s = 0.0
        stack.append(self)
        self._start = tracer._clock()
        return self

    def __exit__(self, *exc) -> bool:
        tracer = self._tracer
        duration = tracer._clock() - self._start
        stack = tracer._stack
        stack.pop()
        if stack:
            stack[-1].child_s += duration
        tracer._record(self, duration)
        return False


def _attrs_key(attrs: Dict[str, Any]) -> AttrsKey:
    if not attrs:
        return ()
    return tuple(sorted((k, str(v)) for k, v in attrs.items()))


class Tracer:
    """Aggregating span recorder with sampled JSONL event emission.

    ``path=None`` keeps everything in memory (the overhead-gate and
    unit-test mode); with a path, sampled span events and flushed
    aggregation deltas are appended as JSONL.  Single-threaded per
    process by design -- every repro worker is a process, not a
    thread.
    """

    def __init__(self, path: Optional[str] = None,
                 sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
                 clock: Callable[[], float] = time.perf_counter,
                 label: str = "proc") -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.path = path
        self.label = label
        self.sample_interval = sample_interval
        self._clock = clock
        self._stack: List[_Span] = []
        # key -> [count, total_s, child_s, sampled]
        self._stats: Dict[RollupKey, List[float]] = {}
        self._pending: List[str] = []
        self._header_written = False

    # ---- recording ---------------------------------------------------

    def span(self, name: str, attrs: Dict[str, Any]) -> _Span:
        return _Span(self, name, attrs)

    def _record(self, span: _Span, duration: float) -> None:
        key = (span.path, _attrs_key(span.attrs))
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = [0, 0.0, 0.0, 0]
        stats[0] += 1
        stats[1] += duration
        stats[2] += span.child_s
        if self.path is not None and (
                self.sample_interval == 1
                or stats[0] % self.sample_interval == 1):
            stats[3] += 1
            row = {"kind": "span", "path": span.path,
                   "dur_ms": duration * 1e3,
                   "self_ms": (duration - span.child_s) * 1e3}
            if span.attrs:
                row["attrs"] = {k: str(v) for k, v in span.attrs.items()}
            self._pending.append(json.dumps(row))
            if len(self._pending) >= 512:
                self._write_pending()

    # ---- reading / flushing ------------------------------------------

    def rollup(self) -> Dict[RollupKey, Dict[str, float]]:
        """The in-memory aggregation (unflushed spans only)."""
        return {key: {"count": stats[0], "total_ms": stats[1] * 1e3,
                      "child_ms": stats[2] * 1e3, "sampled": stats[3]}
                for key, stats in self._stats.items()}

    def _write_pending(self) -> None:
        if self.path is None:
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            if not self._header_written and fh.tell() == 0:
                fh.write(json.dumps(
                    {"kind": "header", "format": TRACE_FORMAT,
                     "label": self.label, "pid": os.getpid(),
                     "sample_interval": self.sample_interval}) + "\n")
            self._header_written = True
            for line in self._pending:
                fh.write(line + "\n")
        self._pending.clear()

    def flush(self) -> None:
        """Append pending sampled spans plus aggregation *deltas* to
        the trace file and clear the aggregation (so repeated flushes
        from a long-lived process never double-count)."""
        if self.path is None:
            return
        for (path, attrs), stats in sorted(self._stats.items()):
            row: Dict[str, Any] = {
                "kind": "stats", "path": path,
                "count": stats[0], "total_ms": stats[1] * 1e3,
                "child_ms": stats[2] * 1e3, "sampled": stats[3]}
            if attrs:
                row["attrs"] = dict(attrs)
            self._pending.append(json.dumps(row))
        self._stats.clear()
        self._write_pending()


# ---- module-level switchboard ---------------------------------------

_TRACER: Optional[Tracer] = None


def trace(name: str, **attrs: Any):
    """Open a span (the one instrumentation entry point).

    Returns a context manager; a shared no-op one when tracing is
    disabled, so instrumented hot paths pay one global read.
    """
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, attrs)


def active() -> Optional[Tracer]:
    return _TRACER


def enabled() -> bool:
    return _TRACER is not None


def configure(path: Optional[str] = None,
              sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
              clock: Callable[[], float] = time.perf_counter,
              label: str = "proc") -> Tracer:
    """Install a tracer for this process (replacing any current one)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.flush()
    _TRACER = Tracer(path=path, sample_interval=sample_interval,
                     clock=clock, label=label)
    return _TRACER


def disable() -> None:
    """Flush and uninstall the current tracer (no-op when off)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.flush()
        _TRACER = None


def flush() -> None:
    if _TRACER is not None:
        _TRACER.flush()


def parse_sample_interval(value: "str | None") -> int:
    """Validate a ``REPRO_TRACE_SAMPLE`` setting into an interval.

    Integers >= 1 are a plain every-Nth interval; floats in (0, 1]
    are a sampling *rate* (0.1 -> every 10th span).  Everything else
    -- junk text, NaN, inf, zero, negatives -- raises ``ValueError``
    naming the variable, instead of surfacing as an opaque crash (or,
    worse, a silently skewed trace) deep inside a run.
    """
    if value is None or value == "":
        return DEFAULT_SAMPLE_INTERVAL
    try:
        parsed = float(value)
    except ValueError:
        raise ValueError(
            f"{ENV_TRACE_SAMPLE}={value!r} is not a number; expected "
            "an integer interval >= 1 (sample every Nth span) or a "
            "rate in (0, 1]")
    if parsed != parsed or parsed in (float("inf"), float("-inf")) \
            or parsed <= 0:
        raise ValueError(
            f"{ENV_TRACE_SAMPLE}={value!r} must be a finite positive "
            "number: an integer interval >= 1 or a rate in (0, 1]")
    if parsed < 1.0:
        return max(1, round(1.0 / parsed))
    if parsed != int(parsed):
        raise ValueError(
            f"{ENV_TRACE_SAMPLE}={value!r}: intervals above 1 must be "
            "whole numbers of spans (or pass a rate in (0, 1])")
    return int(parsed)


def configure_from_env(label: str = "proc") -> Optional[Tracer]:
    """Install a file-backed tracer if ``REPRO_TRACE_DIR`` is set.

    Idempotent: an already-installed tracer is kept.  Each process
    writes its own ``trace-<label>-<pid>.jsonl``, so concurrent fleet
    shards and pool workers never contend on one file; the reader
    merges.  A flush is registered via ``atexit`` so short-lived
    workers leave complete files behind.  ``REPRO_TRACE_SAMPLE``
    tunes sampling (see :func:`parse_sample_interval`).
    """
    global _TRACER
    if _TRACER is not None:
        return _TRACER
    directory = os.environ.get(ENV_TRACE_DIR)
    if not directory:
        return None
    sample = parse_sample_interval(os.environ.get(ENV_TRACE_SAMPLE))
    path = os.path.join(directory,
                        f"trace-{label}-{os.getpid()}.jsonl")
    tracer = configure(path=path, sample_interval=sample, label=label)
    atexit.register(flush)
    return tracer


# ---- trace-file reading / rollup ------------------------------------

def _trace_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if name.endswith(".jsonl")))
        else:
            files.append(path)
    return files


def read_rollup(paths: Sequence[str]) \
        -> Dict[RollupKey, Dict[str, float]]:
    """Merge the ``stats`` rows of any set of trace files/directories
    into one rollup (the mergeable cross-process read path)."""
    rollup: Dict[RollupKey, Dict[str, float]] = {}
    for file_path in _trace_files(paths):
        with open(file_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                row = json.loads(line)
                if row.get("kind") != "stats":
                    continue
                attrs = tuple(sorted(
                    (str(k), str(v))
                    for k, v in (row.get("attrs") or {}).items()))
                key = (str(row["path"]), attrs)
                entry = rollup.setdefault(
                    key, {"count": 0, "total_ms": 0.0,
                          "child_ms": 0.0, "sampled": 0})
                entry["count"] += int(row["count"])
                entry["total_ms"] += float(row["total_ms"])
                entry["child_ms"] += float(row["child_ms"])
                entry["sampled"] += int(row.get("sampled", 0))
    return rollup


def rollup_digest(rollup: Dict[RollupKey, Dict[str, float]]) -> str:
    """SHA-256 over the *attributed* span profile.

    Only rows with at least one non-volatile attribute participate,
    and only their counts: per-cell serve spans fire once per slot per
    cell regardless of how cells are packed into shards or how batch
    steps interleave, while unattributed engine/batch spans (whose
    counts legitimately depend on sharding) are excluded.  Two runs of
    the same fleet spec at different shard counts therefore digest
    identically.
    """
    sha = hashlib.sha256()
    for (path, attrs), entry in sorted(rollup.items()):
        kept = tuple((k, v) for k, v in attrs
                     if k not in VOLATILE_ATTRS)
        if not kept:
            continue
        sha.update(json.dumps(
            [path, kept, int(entry["count"])],
            sort_keys=True).encode("utf-8"))
    return sha.hexdigest()


def format_rollup(rollup: Dict[RollupKey, Dict[str, float]],
                  limit: Optional[int] = None) -> str:
    """Flamegraph-style text rollup: paths as an indented tree with
    count / total / self time, attribute splits folded per path."""
    by_path: Dict[str, Dict[str, float]] = {}
    for (path, _attrs), entry in rollup.items():
        agg = by_path.setdefault(
            path, {"count": 0, "total_ms": 0.0, "child_ms": 0.0})
        agg["count"] += entry["count"]
        agg["total_ms"] += entry["total_ms"]
        agg["child_ms"] += entry["child_ms"]
    if not by_path:
        return "(no spans)"
    rows = sorted(by_path.items())
    if limit is not None:
        rows = rows[:limit]
    name_width = max(
        len("  " * path.count("/") + path.rsplit("/", 1)[-1])
        for path, _ in rows)
    name_width = max(name_width, len("span"))
    lines = [f"{'span':<{name_width}}  {'count':>9}  "
             f"{'total ms':>12}  {'self ms':>12}"]
    for path, agg in rows:
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        self_ms = agg["total_ms"] - agg["child_ms"]
        lines.append(f"{label:<{name_width}}  {agg['count']:>9.0f}  "
                     f"{agg['total_ms']:>12.2f}  {self_ms:>12.2f}")
    return "\n".join(lines)


def rollup_rows(rollup: Dict[RollupKey, Dict[str, float]]) \
        -> List[Dict[str, Any]]:
    """JSON-friendly rollup rows (one per (path, attrs) key)."""
    rows = []
    for (path, attrs), entry in sorted(rollup.items()):
        rows.append({
            "path": path, "attrs": dict(attrs),
            "count": int(entry["count"]),
            "total_ms": entry["total_ms"],
            "self_ms": entry["total_ms"] - entry["child_ms"],
            "sampled": int(entry["sampled"])})
    return rows
