"""Observability layer: tracing, metrics, profiling, perf trajectory.

One subsystem, four concerns, threaded through every layer of the
repo:

* :mod:`repro.obs.trace` -- structured spans.  ``trace("name",
  **attrs)`` is free when tracing is off and aggregates into
  mergeable cross-process JSONL trace files when on; ``repro obs
  report`` rolls any set of trace files into one flamegraph-style
  view with an attributed-span digest that is invariant to fleet
  shard count.
* :mod:`repro.obs.metrics` -- the unified metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`, optional
  labels, JSONL + Prometheus-text export, injectable clock).
  ``repro.serve.telemetry`` re-exports it unchanged, so existing
  snapshot keys and fleet merge semantics hold.
* :mod:`repro.obs.profile` -- opt-in per-kernel wall/alloc sampling
  hooks inside :func:`repro.engine.kernels.evaluate_rows`;
  ``repro obs profile`` prints the per-kernel cost breakdown.
* :mod:`repro.obs.bench` -- the persistent perf trajectory: every
  bench writes ``BENCH_<name>.json`` through the shared recorder,
  and ``repro obs compare`` gates regressions against the committed
  baselines.
* :mod:`repro.obs.slo` -- the judging layer over the metrics:
  declarative :class:`SloSpec` health contracts, streaming
  :class:`SloEvaluator` with multi-window burn-rate alerting, and the
  JSONL :class:`IncidentTimeline` with a deterministic digest.
  ``repro obs watch`` renders live health (:mod:`repro.obs.monitor`),
  ``repro obs incidents`` queries timelines, and ``fleet run --slo``
  evaluates at every shard-checkpoint boundary.

Import discipline: this package depends only on the standard library
and numpy, so every other layer (engine, serve, fleet, runtime) can
instrument itself without import cycles.

Note: ``repro.obs.trace`` is both a module and, as re-exported here,
the span *function* -- import the function as ``from repro.obs import
trace`` or ``from repro.obs.trace import trace``, and the module via
``from repro.obs import trace as trace_module`` only if you need the
configure/rollup API wholesale.
"""

from repro.obs.bench import (
    compare as compare_bench,
    load_dir as load_bench_dir,
    record_result as record_bench_result,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from repro.obs.profile import KernelProfiler
from repro.obs.slo import (
    IncidentTimeline,
    ObjectiveStatus,
    SloEvaluator,
    SloObjective,
    SloSpec,
    default_slo_spec,
)
from repro.obs.trace import (
    Tracer,
    configure as configure_tracing,
    configure_from_env as configure_tracing_from_env,
    disable as disable_tracing,
    read_rollup,
    rollup_digest,
    trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "IncidentTimeline",
    "KernelProfiler",
    "ObjectiveStatus",
    "SloEvaluator",
    "SloObjective",
    "SloSpec",
    "Telemetry",
    "Tracer",
    "compare_bench",
    "configure_tracing",
    "configure_tracing_from_env",
    "default_slo_spec",
    "disable_tracing",
    "load_bench_dir",
    "read_rollup",
    "record_bench_result",
    "rollup_digest",
    "trace",
]
