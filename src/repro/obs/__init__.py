"""Observability layer: tracing, metrics, profiling, perf trajectory.

One subsystem, four concerns, threaded through every layer of the
repo:

* :mod:`repro.obs.trace` -- structured spans.  ``trace("name",
  **attrs)`` is free when tracing is off and aggregates into
  mergeable cross-process JSONL trace files when on; ``repro obs
  report`` rolls any set of trace files into one flamegraph-style
  view with an attributed-span digest that is invariant to fleet
  shard count.
* :mod:`repro.obs.metrics` -- the unified metrics registry
  (:class:`Counter` / :class:`Gauge` / :class:`Histogram`, optional
  labels, JSONL + Prometheus-text export, injectable clock).
  ``repro.serve.telemetry`` re-exports it unchanged, so existing
  snapshot keys and fleet merge semantics hold.
* :mod:`repro.obs.profile` -- opt-in per-kernel wall/alloc sampling
  hooks inside :func:`repro.engine.kernels.evaluate_rows`;
  ``repro obs profile`` prints the per-kernel cost breakdown.
* :mod:`repro.obs.bench` -- the persistent perf trajectory: every
  bench writes ``BENCH_<name>.json`` through the shared recorder,
  and ``repro obs compare`` gates regressions against the committed
  baselines.
* :mod:`repro.obs.slo` -- the judging layer over the metrics:
  declarative :class:`SloSpec` health contracts, streaming
  :class:`SloEvaluator` with multi-window burn-rate alerting, and the
  JSONL :class:`IncidentTimeline` with a deterministic digest.
  ``repro obs watch`` renders live health (:mod:`repro.obs.monitor`),
  ``repro obs incidents`` queries timelines, and ``fleet run --slo``
  evaluates at every shard-checkpoint boundary.
* :mod:`repro.obs.anomaly` + :mod:`repro.obs.diagnose` -- the
  diagnosis layer: contract-free streaming anomaly detectors (robust
  z-score spikes, level shifts) and the root-cause attribution engine
  that joins SLO breaches with injected scenario events, fallback /
  admission counter taxonomies and serve-stage histograms into a
  ranked-hypothesis :class:`DiagnosisReport` with a shard-count-
  invariant digest.  ``repro obs diagnose`` renders it, ``fleet run
  --diagnose`` attaches it to a campaign.

Import discipline: this package depends only on the standard library
and numpy, so every other layer (engine, serve, fleet, runtime) can
instrument itself without import cycles.

Note: ``repro.obs.trace`` is both a module and, as re-exported here,
the span *function* -- import the function as ``from repro.obs import
trace`` or ``from repro.obs.trace import trace``, and the module via
``from repro.obs import trace as trace_module`` only if you need the
configure/rollup API wholesale.
"""

from repro.obs.anomaly import (
    AnomalyMonitor,
    DetectorSpec,
    StreamingDetector,
    default_detectors,
)
from repro.obs.bench import (
    compare as compare_bench,
    load_dir as load_bench_dir,
    record_result as record_bench_result,
)
from repro.obs.diagnose import (
    DiagnosisReport,
    Hypothesis,
    diagnose_fleet,
    diagnose_telemetry,
    replay_shards,
    worst_cells,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from repro.obs.profile import KernelProfiler
from repro.obs.slo import (
    IncidentTimeline,
    ObjectiveStatus,
    SloEvaluator,
    SloObjective,
    SloSpec,
    default_slo_spec,
)
from repro.obs.trace import (
    Tracer,
    configure as configure_tracing,
    configure_from_env as configure_tracing_from_env,
    disable as disable_tracing,
    read_rollup,
    rollup_digest,
    trace,
)

__all__ = [
    "AnomalyMonitor",
    "Counter",
    "DetectorSpec",
    "DiagnosisReport",
    "Gauge",
    "Histogram",
    "Hypothesis",
    "IncidentTimeline",
    "KernelProfiler",
    "ObjectiveStatus",
    "SloEvaluator",
    "SloObjective",
    "SloSpec",
    "StreamingDetector",
    "Telemetry",
    "Tracer",
    "compare_bench",
    "configure_tracing",
    "configure_tracing_from_env",
    "default_detectors",
    "default_slo_spec",
    "diagnose_fleet",
    "diagnose_telemetry",
    "disable_tracing",
    "load_bench_dir",
    "read_rollup",
    "record_bench_result",
    "replay_shards",
    "rollup_digest",
    "trace",
    "worst_cells",
]
