"""``python -m repro obs ...``: report, compare, profile.

Kept separate from :mod:`repro.runtime.cli` so the top-level parser
stays light; heavy imports (engine, serve) happen inside the handlers
that need them.

* ``obs report [paths...]`` -- merge trace files/directories into one
  flamegraph-style rollup (``--json`` for machine-readable rows plus
  the attributed-span digest).
* ``obs compare`` -- diff ``BENCH_*.json`` results against the
  committed baselines; exits 1 on regression beyond the noise
  tolerance (the CI ``bench-trajectory`` gate).  ``--update`` copies
  the current results over the baselines instead.
* ``obs profile`` -- run one scenario episode under the kernel
  profiler and print the per-kernel cost breakdown.
* ``obs watch`` -- live fleet health: evaluate an SLO spec against a
  fleet checkpoint (full burn-rate view, deterministic timeline
  digest) or a telemetry JSONL export dir (point-in-time view) and
  render the dashboard every ``--interval`` seconds (``--once`` /
  ``--json`` for scripting and CI).
* ``obs incidents`` -- query an incident timeline JSONL: filter by
  objective / severity / event, print the table or the raw records
  plus the timeline digest.
* ``obs diagnose`` -- root-cause attribution: replay a fleet
  checkpoint (or read a telemetry export) through the diagnosis
  engine and print the ranked hypotheses explaining each SLO breach,
  with a shard-count-invariant report digest.
* ``obs slo-compare`` -- canary verdict between two fleet
  checkpoints: exits 3 when the candidate regresses any objective
  beyond the tolerance (the auto-rollback gate).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import List, Optional


def add_obs_parser(subparsers) -> None:
    """Attach the ``obs`` subcommand tree to the root CLI parser."""
    obs = subparsers.add_parser(
        "obs", help="observability: trace rollups, perf trajectory, "
                    "kernel profiles")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_sub.add_parser(
        "report", help="merge trace files into a flamegraph-style "
                       "rollup")
    report.add_argument(
        "paths", nargs="*", default=None,
        help="trace files or directories (default: $REPRO_TRACE_DIR "
             "or .repro_trace)")
    report.add_argument("--limit", type=int, default=None,
                        help="show at most N rollup rows")
    report.add_argument("--json", action="store_true",
                        help="emit rollup rows + digest as JSON")

    compare = obs_sub.add_parser(
        "compare", help="diff BENCH_*.json results against the "
                        "committed baselines")
    compare.add_argument(
        "--results", default=None,
        help="results directory (default: $REPRO_BENCH_DIR or "
             ".repro_bench)")
    compare.add_argument(
        "--baseline", default=None,
        help="baseline directory (default: benchmarks/baselines)")
    compare.add_argument(
        "--tolerance", type=float, default=None,
        help="relative noise tolerance (default: 0.5 = fail beyond "
             "1.5x baseline)")
    compare.add_argument(
        "--floor", type=float, default=None, metavar="SECONDS",
        help="means below this never regress -- timer noise "
             "(default: 0.005)")
    compare.add_argument("--json", action="store_true",
                         help="emit the comparison as JSON")
    compare.add_argument(
        "--update", action="store_true",
        help="copy current results over the baselines instead of "
             "comparing")

    profile = obs_sub.add_parser(
        "profile", help="run one scenario episode under the kernel "
                        "profiler")
    profile.add_argument("--scenario", default="default",
                         help="registered scenario name")
    profile.add_argument("--sample", type=int, default=1,
                         help="profile every Nth kernel call")
    profile.add_argument("--alloc", action="store_true",
                         help="also trace per-kernel allocations "
                              "(tracemalloc; slow)")
    profile.add_argument("--seed", type=int, default=None)
    profile.add_argument("--json", action="store_true")

    watch = obs_sub.add_parser(
        "watch", help="live SLO health dashboard over a fleet "
                      "checkpoint or telemetry exports")
    watch.add_argument(
        "--slo", default="default", metavar="SPEC",
        help="'default' for the stock contract or a tagged-JSON "
             "SloSpec file")
    watch.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="fleet checkpoint JSONL: full burn-rate evaluation with "
             "a deterministic timeline digest")
    watch.add_argument(
        "--telemetry-dir", default=None, metavar="PATH",
        dest="telemetry_dir",
        help="telemetry JSONL export dir/file: point-in-time health")
    watch.add_argument("--interval", type=float, default=2.0,
                       metavar="SECONDS",
                       help="seconds between frames (default: 2)")
    watch.add_argument("--frames", type=int, default=0, metavar="N",
                       help="stop after N frames (default: forever)")
    watch.add_argument("--once", action="store_true",
                       help="render one frame and exit "
                            "(same as --frames 1)")
    watch.add_argument("--json", action="store_true",
                       help="emit the frame payload as JSON")
    watch.add_argument("--no-clear", action="store_true",
                       dest="no_clear",
                       help="do not clear the terminal between frames")

    diagnose = obs_sub.add_parser(
        "diagnose", help="root-cause attribution over a fleet "
                         "checkpoint or telemetry exports")
    diagnose.add_argument(
        "path", help="fleet checkpoint JSONL, or a telemetry JSONL "
                     "export dir/file (auto-detected)")
    diagnose.add_argument(
        "--slo", default="default", metavar="SPEC",
        help="'default' for the stock contract or a tagged-JSON "
             "SloSpec file")
    diagnose.add_argument(
        "--incident", default=None, metavar="OBJECTIVE",
        help="diagnose only this objective's breach")
    diagnose.add_argument("--top", type=int, default=5, metavar="N",
                          help="hypotheses to print (default: 5; "
                               "0 = all)")
    diagnose.add_argument("--json", action="store_true",
                          help="emit the tagged DiagnosisReport + "
                               "digest as JSON")

    slo_compare = obs_sub.add_parser(
        "slo-compare", help="canary verdict: compare two fleet "
                            "checkpoints objective by objective")
    slo_compare.add_argument("incumbent",
                             help="incumbent fleet checkpoint JSONL")
    slo_compare.add_argument("candidate",
                             help="candidate fleet checkpoint JSONL")
    slo_compare.add_argument(
        "--slo", default="default", metavar="SPEC",
        help="'default' for the stock contract or a tagged-JSON "
             "SloSpec file")
    slo_compare.add_argument(
        "--tolerance", type=float, default=0.10,
        help="relative SLI slack the candidate is allowed "
             "(default: 0.10)")
    slo_compare.add_argument("--json", action="store_true",
                             help="emit the verdict as JSON")

    incidents = obs_sub.add_parser(
        "incidents", help="query an incident timeline JSONL")
    incidents.add_argument("path", help="incident timeline file")
    incidents.add_argument("--objective", default=None,
                           help="only this objective's records")
    incidents.add_argument("--severity", default=None,
                           choices=("warn", "page"),
                           help="only records at this severity")
    incidents.add_argument("--event", default=None,
                           choices=("open", "update", "resolve"),
                           help="only this transition kind")
    incidents.add_argument("--json", action="store_true",
                           help="emit records + digest as JSON")


def run_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        return _run_report(args)
    if args.obs_command == "compare":
        return _run_compare(args)
    if args.obs_command == "profile":
        return _run_profile(args)
    if args.obs_command == "watch":
        return _run_watch(args)
    if args.obs_command == "incidents":
        return _run_incidents(args)
    if args.obs_command == "diagnose":
        return _run_diagnose(args)
    if args.obs_command == "slo-compare":
        return _run_slo_compare(args)
    raise SystemExit(f"unknown obs command {args.obs_command!r}")


def load_slo_spec(value: Optional[str]):
    """Resolve an ``--slo`` argument.

    ``None`` or the literal ``"default"`` gives the stock contract
    (:func:`repro.obs.slo.default_slo_spec`); anything else is read as
    a tagged-JSON :class:`~repro.obs.slo.SloSpec` file.  Raises
    ``SystemExit`` with an actionable message on unreadable or
    mistyped files -- shared by ``fleet run --slo``, ``loadgen --slo``
    and ``obs watch``.
    """
    from repro.obs.slo import SloSpec, default_slo_spec

    if value is None or value == "default":
        return default_slo_spec()
    from repro.runtime.serialization import from_jsonable

    try:
        with open(value, "r", encoding="utf-8") as fh:
            spec = from_jsonable(json.load(fh))
    except OSError as exc:
        raise SystemExit(f"cannot read slo spec: {exc}")
    except ValueError as exc:
        raise SystemExit(f"invalid slo spec {value!r}: {exc}")
    if not isinstance(spec, SloSpec):
        raise SystemExit(
            f"{value!r} does not hold a tagged SloSpec (write one "
            "with repro.runtime.serialization.to_jsonable; or pass "
            "'default')")
    return spec


def _default_trace_paths() -> List[str]:
    from repro.obs.trace import ENV_TRACE_DIR
    return [os.environ.get(ENV_TRACE_DIR) or ".repro_trace"]


def _run_report(args: argparse.Namespace) -> int:
    from repro.obs.trace import (format_rollup, read_rollup,
                                 rollup_digest, rollup_rows)

    paths = args.paths or _default_trace_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no trace data at: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    rollup = read_rollup(paths)
    if not rollup:
        print(f"no trace spans under: {', '.join(paths)} (run with "
              "REPRO_TRACE_DIR set or 'fleet run --trace-dir' first)",
              file=sys.stderr)
        return 2
    digest = rollup_digest(rollup)
    if args.json:
        print(json.dumps({"digest": digest,
                          "rows": rollup_rows(rollup)}, indent=2))
    else:
        print(format_rollup(rollup, limit=args.limit))
        print(f"\nattributed-span digest: {digest}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from repro.obs import bench

    results = args.results or os.environ.get(
        bench.ENV_BENCH_DIR) or bench.DEFAULT_RESULTS_DIR
    baseline = args.baseline or bench.DEFAULT_BASELINE_DIR
    if args.update:
        try:
            current = bench.load_dir(results)
        except (OSError, ValueError) as exc:
            print(f"cannot read bench results: {exc}",
                  file=sys.stderr)
            return 2
        if not current:
            print(f"no BENCH_*.json under {results}", file=sys.stderr)
            return 2
        os.makedirs(baseline, exist_ok=True)
        for name in sorted(current):
            src = bench.bench_path(results, name)
            dst = bench.bench_path(baseline, name)
            shutil.copyfile(src, dst)
            print(f"baseline updated: {dst}")
        return 0
    tolerance = (bench.DEFAULT_TOLERANCE
                 if args.tolerance is None else args.tolerance)
    floor = (bench.DEFAULT_FLOOR
             if args.floor is None else args.floor)
    try:
        report = bench.compare(results, baseline, tolerance=tolerance,
                               floor=floor)
    except (OSError, ValueError) as exc:
        # a corrupt/truncated BENCH_*.json or baseline file must not
        # traceback out of a CI gate
        print(f"cannot compare bench results: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(bench.format_compare(report))
    return 1 if report["regressions"] else 0


def _run_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import KernelProfiler, format_profile
    from repro.experiments.harness import resolve_scenario

    spec = resolve_scenario(args.scenario)
    if spec is None:
        print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
        return 2
    import numpy as np

    from repro.sim.env import NUM_ACTIONS

    cfg = spec.build_config(seed=args.seed)
    simulator = spec.build_simulator(
        cfg, rng=np.random.default_rng(cfg.seed))
    profiler = KernelProfiler(sample_interval=args.sample,
                              alloc=args.alloc)
    with profiler:
        simulator.reset()
        actions = {name: np.full(NUM_ACTIONS, 0.15)
                   for name in simulator.slice_names}
        while not simulator.done:
            simulator.step(actions)
    rows = profiler.report()
    if args.json:
        print(json.dumps({"scenario": spec.name,
                          "kernel_calls": profiler.calls,
                          "sample_interval": args.sample,
                          "rows": rows}, indent=2))
    else:
        print(f"scenario {spec.name}: {profiler.calls} kernel calls, "
              f"sampling 1/{args.sample}")
        print(format_profile(rows))
    return 0


def _render_watch_frame(args: argparse.Namespace, spec) -> int:
    """One ``obs watch`` frame; returns the would-be exit code."""
    from repro.obs import monitor

    if args.checkpoint is not None:
        from repro.fleet import load_checkpoint
        from repro.obs.anomaly import AnomalyMonitor
        from repro.obs.diagnose import replay_shards

        try:
            checkpoint = load_checkpoint(args.checkpoint)
        except OSError as exc:
            print(f"cannot read checkpoint: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        state = replay_shards(checkpoint.results.values(), slo=spec,
                              monitor=AnomalyMonitor())
        evaluator = state.evaluator
        anomalies = state.monitor.anomalies()
        if args.json:
            print(json.dumps(monitor.frame_payload(
                evaluator, anomalies=anomalies), indent=2))
        else:
            print(monitor.render_frame(
                f"fleet health -- {args.checkpoint} "
                f"[slo {spec.name}]", evaluator,
                anomalies=anomalies))
        return 0
    if not os.path.exists(args.telemetry_dir):
        print(f"no telemetry exports at {args.telemetry_dir!r} "
              "(run serve/loadgen with --telemetry-dir first)",
              file=sys.stderr)
        return 2
    try:
        rows = monitor.read_telemetry_export(args.telemetry_dir)
    except OSError as exc:
        print(f"cannot read telemetry exports: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed telemetry export under "
              f"{args.telemetry_dir!r}: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print(f"no telemetry exports under {args.telemetry_dir!r} "
              "(run serve/loadgen with --telemetry-dir first)",
              file=sys.stderr)
        return 2
    if args.json:
        statuses = monitor.point_statuses(spec, rows)
        print(json.dumps({
            "spec": spec.name, "mode": "point",
            "objectives": [
                {"objective": s.objective.name, "severity": s.severity,
                 "burn": s.burn_fast, "value": s.value}
                for s in statuses]}, indent=2))
    else:
        print(monitor.render_point_frame(
            f"telemetry health -- {args.telemetry_dir} "
            f"[slo {spec.name}]", spec, rows))
    return 0


def _run_watch(args: argparse.Namespace) -> int:
    import time

    if (args.checkpoint is None) == (args.telemetry_dir is None):
        print("obs watch needs exactly one of --checkpoint or "
              "--telemetry-dir", file=sys.stderr)
        return 2
    spec = load_slo_spec(args.slo)
    frames = 1 if args.once else args.frames
    rendered = 0
    while True:
        if not args.json and not args.no_clear and rendered:
            print("\x1b[2J\x1b[H", end="")
        code = _render_watch_frame(args, spec)
        if code != 0:
            return code
        rendered += 1
        if frames and rendered >= frames:
            return 0
        time.sleep(max(args.interval, 0.0))


def _run_incidents(args: argparse.Namespace) -> int:
    from repro.obs.monitor import format_incidents
    from repro.obs.slo import IncidentTimeline

    try:
        timeline = IncidentTimeline.load(args.path)
    except OSError as exc:
        print(f"cannot read incident timeline: {exc}", file=sys.stderr)
        return 2
    kept = [record for record in timeline.records
            if (args.objective is None
                or record["objective"] == args.objective)
            and (args.severity is None
                 or record["severity"] == args.severity)
            and (args.event is None or record["event"] == args.event)]
    if args.json:
        print(json.dumps({"digest": timeline.digest(),
                          "records": kept}, indent=2))
        return 0
    print(format_incidents(timeline.records,
                           objective=args.objective,
                           severity=args.severity, event=args.event))
    print(f"\n{len(kept)}/{len(timeline.records)} record(s), "
          f"timeline digest {timeline.digest()[:16]}")
    return 0


def _filter_report(report, objective: str):
    """Restrict a DiagnosisReport to one objective's breach (the
    ``--incident`` flag); returns None when it never breached."""
    import dataclasses

    incidents = tuple(row for row in report.incidents
                      if row["objective"] == objective)
    if not incidents:
        return None
    return dataclasses.replace(
        report, incidents=incidents,
        hypotheses=tuple(h for h in report.hypotheses
                         if h.incident == objective))


def _run_diagnose(args: argparse.Namespace) -> int:
    from repro.obs import monitor
    from repro.obs.diagnose import (diagnose_fleet, diagnose_telemetry,
                                    format_report)

    spec = load_slo_spec(args.slo)
    if not os.path.exists(args.path):
        print(f"nothing to diagnose at {args.path!r} (pass a fleet "
              "checkpoint JSONL or a telemetry export dir)",
              file=sys.stderr)
        return 2
    report = None
    if not os.path.isdir(args.path):
        from repro.fleet import load_checkpoint

        try:
            checkpoint = load_checkpoint(args.path)
        except OSError as exc:
            print(f"cannot read {args.path!r}: {exc}", file=sys.stderr)
            return 2
        except ValueError:
            checkpoint = None       # not a checkpoint: telemetry file
        if checkpoint is not None:
            report = diagnose_fleet(
                checkpoint.results.values(), spec,
                fleet=checkpoint.spec.name,
                snapshot_ref=checkpoint.snapshot_ref,
                snapshot_digest=checkpoint.snapshot_digest)
    if report is None:
        try:
            rows = monitor.read_telemetry_export(args.path)
        except (OSError, ValueError) as exc:
            print(f"cannot read telemetry exports: {exc}",
                  file=sys.stderr)
            return 2
        if not rows:
            print(f"no telemetry exports under {args.path!r} "
                  "(run serve/loadgen with --telemetry-dir first)",
                  file=sys.stderr)
            return 2
        report = diagnose_telemetry(rows, spec, label=args.path)
    if args.incident is not None:
        filtered = _filter_report(report, args.incident)
        if filtered is None:
            known = ", ".join(row["objective"]
                              for row in report.incidents) or "none"
            print(f"objective {args.incident!r} has no breach to "
                  f"diagnose (breached: {known})", file=sys.stderr)
            return 2
        report = filtered
    if args.json:
        from repro.runtime.serialization import to_jsonable

        print(json.dumps({"digest": report.digest(),
                          "report": to_jsonable(report)}, indent=2))
    else:
        print(format_report(report, top=args.top))
    return 0


def _run_slo_compare(args: argparse.Namespace) -> int:
    from repro.fleet import load_checkpoint
    from repro.obs.diagnose import replay_shards
    from repro.obs.slo import SloEvaluator

    spec = load_slo_spec(args.slo)
    registries = []
    for role, path in (("incumbent", args.incumbent),
                       ("candidate", args.candidate)):
        try:
            checkpoint = load_checkpoint(path)
        except OSError as exc:
            print(f"cannot read {role} checkpoint: {exc}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"{role}: {exc}", file=sys.stderr)
            return 2
        registries.append(
            replay_shards(checkpoint.results.values()).telemetry)
    verdict = SloEvaluator(spec).compare(
        registries[0], registries[1], tolerance=args.tolerance)
    if args.json:
        print(json.dumps(verdict, indent=2))
    else:
        print(f"slo-compare -- {args.candidate} vs {args.incumbent} "
              f"[slo {spec.name}, tolerance {verdict['tolerance']}]")
        for row in verdict["rows"]:
            flag = "ok" if row["ok"] else "REGRESSED"
            print(f"  {row['objective']:<22} {flag:>9}  "
                  f"incumbent {row['incumbent']:.6f}  "
                  f"candidate {row['candidate']:.6f}")
        print("candidate verdict: "
              + ("pass" if verdict["candidate_ok"] else
                 "REGRESSION -- roll back"))
    return 0 if verdict["candidate_ok"] else 3
