"""``python -m repro obs ...``: report, compare, profile.

Kept separate from :mod:`repro.runtime.cli` so the top-level parser
stays light; heavy imports (engine, serve) happen inside the handlers
that need them.

* ``obs report [paths...]`` -- merge trace files/directories into one
  flamegraph-style rollup (``--json`` for machine-readable rows plus
  the attributed-span digest).
* ``obs compare`` -- diff ``BENCH_*.json`` results against the
  committed baselines; exits 1 on regression beyond the noise
  tolerance (the CI ``bench-trajectory`` gate).  ``--update`` copies
  the current results over the baselines instead.
* ``obs profile`` -- run one scenario episode under the kernel
  profiler and print the per-kernel cost breakdown.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import List, Optional


def add_obs_parser(subparsers) -> None:
    """Attach the ``obs`` subcommand tree to the root CLI parser."""
    obs = subparsers.add_parser(
        "obs", help="observability: trace rollups, perf trajectory, "
                    "kernel profiles")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_sub.add_parser(
        "report", help="merge trace files into a flamegraph-style "
                       "rollup")
    report.add_argument(
        "paths", nargs="*", default=None,
        help="trace files or directories (default: $REPRO_TRACE_DIR "
             "or .repro_trace)")
    report.add_argument("--limit", type=int, default=None,
                        help="show at most N rollup rows")
    report.add_argument("--json", action="store_true",
                        help="emit rollup rows + digest as JSON")

    compare = obs_sub.add_parser(
        "compare", help="diff BENCH_*.json results against the "
                        "committed baselines")
    compare.add_argument(
        "--results", default=None,
        help="results directory (default: $REPRO_BENCH_DIR or "
             ".repro_bench)")
    compare.add_argument(
        "--baseline", default=None,
        help="baseline directory (default: benchmarks/baselines)")
    compare.add_argument(
        "--tolerance", type=float, default=None,
        help="relative noise tolerance (default: 0.5 = fail beyond "
             "1.5x baseline)")
    compare.add_argument(
        "--floor", type=float, default=None, metavar="SECONDS",
        help="means below this never regress -- timer noise "
             "(default: 0.005)")
    compare.add_argument("--json", action="store_true",
                         help="emit the comparison as JSON")
    compare.add_argument(
        "--update", action="store_true",
        help="copy current results over the baselines instead of "
             "comparing")

    profile = obs_sub.add_parser(
        "profile", help="run one scenario episode under the kernel "
                        "profiler")
    profile.add_argument("--scenario", default="default",
                         help="registered scenario name")
    profile.add_argument("--sample", type=int, default=1,
                         help="profile every Nth kernel call")
    profile.add_argument("--alloc", action="store_true",
                         help="also trace per-kernel allocations "
                              "(tracemalloc; slow)")
    profile.add_argument("--seed", type=int, default=None)
    profile.add_argument("--json", action="store_true")


def run_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "report":
        return _run_report(args)
    if args.obs_command == "compare":
        return _run_compare(args)
    if args.obs_command == "profile":
        return _run_profile(args)
    raise SystemExit(f"unknown obs command {args.obs_command!r}")


def _default_trace_paths() -> List[str]:
    from repro.obs.trace import ENV_TRACE_DIR
    return [os.environ.get(ENV_TRACE_DIR) or ".repro_trace"]


def _run_report(args: argparse.Namespace) -> int:
    from repro.obs.trace import (format_rollup, read_rollup,
                                 rollup_digest, rollup_rows)

    paths = args.paths or _default_trace_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"no trace data at: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    rollup = read_rollup(paths)
    digest = rollup_digest(rollup)
    if args.json:
        print(json.dumps({"digest": digest,
                          "rows": rollup_rows(rollup)}, indent=2))
    else:
        print(format_rollup(rollup, limit=args.limit))
        print(f"\nattributed-span digest: {digest}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from repro.obs import bench

    results = args.results or os.environ.get(
        bench.ENV_BENCH_DIR) or bench.DEFAULT_RESULTS_DIR
    baseline = args.baseline or bench.DEFAULT_BASELINE_DIR
    if args.update:
        current = bench.load_dir(results)
        if not current:
            print(f"no BENCH_*.json under {results}", file=sys.stderr)
            return 2
        os.makedirs(baseline, exist_ok=True)
        for name in sorted(current):
            src = bench.bench_path(results, name)
            dst = bench.bench_path(baseline, name)
            shutil.copyfile(src, dst)
            print(f"baseline updated: {dst}")
        return 0
    tolerance = (bench.DEFAULT_TOLERANCE
                 if args.tolerance is None else args.tolerance)
    floor = (bench.DEFAULT_FLOOR
             if args.floor is None else args.floor)
    report = bench.compare(results, baseline, tolerance=tolerance,
                           floor=floor)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(bench.format_compare(report))
    return 1 if report["regressions"] else 0


def _run_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import KernelProfiler, format_profile
    from repro.experiments.harness import resolve_scenario

    spec = resolve_scenario(args.scenario)
    if spec is None:
        print(f"unknown scenario {args.scenario!r}", file=sys.stderr)
        return 2
    import numpy as np

    from repro.sim.env import NUM_ACTIONS

    cfg = spec.build_config(seed=args.seed)
    simulator = spec.build_simulator(
        cfg, rng=np.random.default_rng(cfg.seed))
    profiler = KernelProfiler(sample_interval=args.sample,
                              alloc=args.alloc)
    with profiler:
        simulator.reset()
        actions = {name: np.full(NUM_ACTIONS, 0.15)
                   for name in simulator.slice_names}
        while not simulator.done:
            simulator.step(actions)
    rows = profiler.report()
    if args.json:
        print(json.dumps({"scenario": spec.name,
                          "kernel_calls": profiler.calls,
                          "sample_interval": args.sample,
                          "rows": rows}, indent=2))
    else:
        print(f"scenario {spec.name}: {profiler.calls} kernel calls, "
              f"sampling 1/{args.sample}")
        print(format_profile(rows))
    return 0
