"""Persistent perf trajectory: the ``BENCH_<name>.json`` schema.

Every ``benchmarks/bench_*.py`` run lands its measurements in one
JSON file per bench module through the shared recorder in
``benchmarks/conftest.py``, giving the repo a perf trajectory instead
of one-shot ratio gates that throw the numbers away.  The schema
carries enough context to compare runs honestly: machine fingerprint,
git revision, raw samples and the bench's own ``extra_info``
(throughput rates, speedup ratios, scale knobs).

:func:`compare` diffs a results directory against the committed
baseline directory with a *relative noise tolerance*: a test regresses
when ``current_mean > baseline_mean * (1 + tolerance)``.  The default
tolerance (0.5) is deliberately generous -- wall-clock benches on
shared runners are noisy -- while still catching the 2x slowdowns that
matter.  ``python -m repro obs compare`` wraps this and exits non-zero
on any regression, which is what the CI ``bench-trajectory`` job
gates on.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from typing import Dict, List, Optional

SCHEMA_VERSION = 1
DEFAULT_TOLERANCE = 0.5
#: Means below this (seconds) are timer noise, never regressions.
DEFAULT_FLOOR = 0.005
DEFAULT_RESULTS_DIR = ".repro_bench"
DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")
ENV_BENCH_DIR = "REPRO_BENCH_DIR"


def machine_info() -> Dict[str, object]:
    """Fingerprint of the machine a bench ran on."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:                               # pragma: no cover
        numpy_version = "unavailable"
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpus": os.cpu_count() or 1,
    }


def git_rev(cwd: Optional[str] = None) -> str:
    """Short git revision of the working tree, ``unknown`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10)
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:
        pass
    return "unknown"


def bench_path(directory: str, name: str) -> str:
    return os.path.join(directory, f"BENCH_{name}.json")


def validate(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` is a schema-valid bench
    result file."""
    if not isinstance(payload, dict):
        raise ValueError("bench result must be a JSON object")
    if payload.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"bench schema {payload.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}")
    for field in ("name", "git_rev", "machine", "results"):
        if field not in payload:
            raise ValueError(f"bench result missing {field!r}")
    if not isinstance(payload["machine"], dict):
        raise ValueError("machine must be an object")
    results = payload["results"]
    if not isinstance(results, dict) or not results:
        raise ValueError("results must be a non-empty object")
    for test, entry in results.items():
        if not isinstance(entry, dict):
            raise ValueError(f"result {test!r} must be an object")
        for field in ("metric", "samples", "mean"):
            if field not in entry:
                raise ValueError(f"result {test!r} missing {field!r}")
        samples = entry["samples"]
        if not isinstance(samples, list) or not samples:
            raise ValueError(
                f"result {test!r} needs a non-empty samples list")


def record_result(directory: str, name: str, test: str,
                  samples: List[float],
                  extra_info: Optional[Dict[str, object]] = None,
                  metric: str = "seconds") -> str:
    """Write/update ``BENCH_<name>.json`` in ``directory`` with one
    test's samples; other tests already recorded in the same file (a
    multi-test bench module, or an earlier run) are kept."""
    if not samples:
        raise ValueError("need at least one sample")
    path = bench_path(directory, name)
    payload: Dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            payload = {}
    results = payload.get("results")
    if not isinstance(results, dict):
        results = {}
    values = [float(v) for v in samples]
    mean = sum(values) / len(values)
    stddev = (sum((v - mean) ** 2 for v in values)
              / len(values)) ** 0.5 if len(values) > 1 else 0.0
    results[test] = {
        "metric": metric,
        "samples": values,
        "mean": mean,
        "stddev": stddev,
        "extra_info": dict(extra_info or {}),
    }
    payload = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "git_rev": git_rev(),
        "machine": machine_info(),
        "results": results,
    }
    validate(payload)
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load(path: str) -> Dict[str, object]:
    """Load and validate one ``BENCH_*.json`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    validate(payload)
    return payload


def load_dir(directory: str) -> Dict[str, Dict[str, object]]:
    """Name -> validated payload for every ``BENCH_*.json`` in
    ``directory`` (empty when the directory is missing)."""
    out: Dict[str, Dict[str, object]] = {}
    if not os.path.isdir(directory):
        return out
    for entry in sorted(os.listdir(directory)):
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            payload = load(os.path.join(directory, entry))
            out[str(payload["name"])] = payload
    return out


def compare(results_dir: str, baseline_dir: str,
            tolerance: float = DEFAULT_TOLERANCE,
            floor: float = DEFAULT_FLOOR) -> Dict[str, object]:
    """Diff a results directory against the committed baselines.

    Returns ``{"rows": [...], "regressions": n, "tolerance": t}``;
    each row carries bench/test names, the two means, their ratio and
    a status (``ok`` / ``regression`` / ``improvement`` /
    ``missing-baseline`` / ``missing-current``).  Missing counterparts
    are reported but never fail the comparison -- new benches enter the
    trajectory without blocking, retired ones leave the same way.
    Tests where *both* means sit under ``floor`` seconds are below
    wall-clock timer noise (a pure-math figure takes ~0.2 ms; a 1.5x
    "slowdown" there is scheduler jitter, not a regression) and are
    reported ``ok`` whatever their ratio.

    Benches can additionally self-gate on their own metrics: a
    ``gates`` mapping in a result's ``extra_info`` (metric name ->
    minimum value) is checked against the same ``extra_info``, and a
    metric below its minimum (or absent) is a regression regardless of
    wall-clock ratio.  The engine bench uses this to pin the arena
    path's B=128 speedup over the allocating ``vector-compat`` tier.
    """
    current = load_dir(results_dir)
    baseline = load_dir(baseline_dir)
    rows: List[Dict[str, object]] = []
    regressions = 0
    for name in sorted(set(current) | set(baseline)):
        cur_results = current.get(name, {}).get("results", {})
        base_results = baseline.get(name, {}).get("results", {})
        for test in sorted(set(cur_results) | set(base_results)):
            cur = cur_results.get(test)
            base = base_results.get(test)
            row: Dict[str, object] = {"bench": name, "test": test}
            if cur is None:
                row.update(status="missing-current",
                           baseline_mean=base["mean"])
            elif base is None:
                row.update(status="missing-baseline",
                           current_mean=cur["mean"])
            else:
                ratio = (cur["mean"] / base["mean"]
                         if base["mean"] > 0 else float("inf"))
                if cur["mean"] < floor and base["mean"] < floor:
                    status = "ok"
                elif ratio > 1.0 + tolerance:
                    status = "regression"
                    regressions += 1
                elif ratio < 1.0 / (1.0 + tolerance):
                    status = "improvement"
                else:
                    status = "ok"
                row.update(status=status, ratio=ratio,
                           current_mean=cur["mean"],
                           baseline_mean=base["mean"])
            if cur is not None:
                extra = cur.get("extra_info") or {}
                gates = extra.get("gates") or {}
                failures = []
                for metric, minimum in sorted(gates.items()):
                    value = extra.get(metric)
                    if not isinstance(value, (int, float)) \
                            or value < minimum:
                        failures.append(
                            f"{metric}={value!r} < {minimum:g}")
                if failures:
                    if row.get("status") != "regression":
                        regressions += 1
                    row["status"] = "regression"
                    row["gate_failures"] = failures
            rows.append(row)
    return {"rows": rows, "regressions": regressions,
            "tolerance": tolerance}


def format_compare(report: Dict[str, object]) -> str:
    """Text table for a :func:`compare` report."""
    rows = report["rows"]
    if not rows:
        return ("(no bench results found -- run the benchmarks with "
                "the recorder enabled first)")
    lines = [f"{'bench':<12} {'test':<42} {'baseline':>10} "
             f"{'current':>10} {'ratio':>7}  status"]
    for row in rows:
        base = row.get("baseline_mean")
        cur = row.get("current_mean")
        ratio = row.get("ratio")
        lines.append(
            f"{row['bench']:<12} {row['test']:<42} "
            f"{(f'{base:.4f}' if base is not None else '-'):>10} "
            f"{(f'{cur:.4f}' if cur is not None else '-'):>10} "
            f"{(f'{ratio:.2f}x' if ratio is not None else '-'):>7}  "
            f"{row['status']}")
        for failure in row.get("gate_failures", ()):
            lines.append(f"{'':<12} {'':<42} gate failed: {failure}")
    lines.append(
        f"{report['regressions']} regression(s) at tolerance "
        f"{report['tolerance']:g}")
    return "\n".join(lines)
