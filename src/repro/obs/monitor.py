"""Health rendering: the ``repro obs watch`` dashboard and incident
formatting.

Pure presentation over :mod:`repro.obs.slo`: given an evaluator's
:class:`~repro.obs.slo.ObjectiveStatus` rows and a timeline, render a
terminal frame -- per-objective status glyphs, fast/slow burn rates,
unicode sparkline trends over the recent burn history, and the open
incident list.  The CLI (``repro obs watch``) drives this either from
a fleet checkpoint (full burn-rate evaluation: histogram states are
mergeable, so windowed SLIs are exact) or from a telemetry JSONL
export directory (point-in-time health: exports carry percentile
readouts, not mergeable states, so latency objectives compare the
exported percentile against the budget directly).

Everything here is stdlib-only and side-effect free -- functions take
data, return strings -- so tests can pin frames without a terminal.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

from repro.obs.slo import (IncidentTimeline, ObjectiveStatus,
                           SloEvaluator, SloSpec)

SPARK_CHARS = "▁▂▃▄▅▆▇█"

#: Status column glyph + label by severity (None = healthy).
SEVERITY_LABELS = {None: "ok", "warn": "WARN", "page": "PAGE"}


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """Render a value series as a fixed-width unicode sparkline.

    The newest ``width`` values are scaled against the series max (a
    burn of 0 is always the lowest glyph), so a flat healthy history
    reads as a flat low line and spikes stand out regardless of
    scale.
    """
    tail = [max(float(v), 0.0) for v in values][-width:]
    if not tail:
        return ""
    top = max(tail)
    if top <= 0:
        return SPARK_CHARS[0] * len(tail)
    steps = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(int(round(v / top * steps)), steps)]
        for v in tail)


def format_statuses(statuses: Sequence[ObjectiveStatus]) -> str:
    """The per-objective table of one dashboard frame."""
    lines = [f"{'objective':<22} {'status':>6} {'burn(fast)':>10} "
             f"{'burn(slow)':>10} {'sli':>9}  trend"]
    for status in statuses:
        label = SEVERITY_LABELS[status.severity]
        lines.append(
            f"{status.objective.name:<22} {label:>6} "
            f"{status.burn_fast:>10.2f} {status.burn_slow:>10.2f} "
            f"{status.value:>9.4f}  {sparkline(status.history)}")
    return "\n".join(lines)


def format_open_incidents(timeline: IncidentTimeline) -> str:
    open_incidents = timeline.open_incidents()
    if not open_incidents:
        return "no open incidents"
    lines = [f"{len(open_incidents)} open incident(s):"]
    for name in sorted(open_incidents):
        record = open_incidents[name]
        rows = record.get("attribution", [])
        # cell rows (worst offenders) and injected-event rows (the
        # diagnosis hook) share the attribution list; render each in
        # its own idiom
        parts = [f"cell {row.get('cell')} ({row.get('scenario')})"
                 for row in rows if "cell" in row][:3]
        parts.extend(
            f"{row['event']}@slots "
            f"{row['start_slot']}-{row['end_slot']}"
            for row in rows if "event" in row)
        attribution = ", ".join(parts)
        lines.append(
            f"  [{record['severity']}] {record['incident']} "
            f"since t={record['at']:g} "
            f"burn {record['burn_fast']:.1f}/{record['burn_slow']:.1f}"
            + (f" -- {attribution}" if attribution else ""))
    return "\n".join(lines)


def format_anomalies(points: Sequence[Dict],
                     limit: int = 6) -> str:
    """The active-anomalies pane: the newest flagged detector points
    (see :meth:`repro.obs.anomaly.AnomalyMonitor.anomalies`)."""
    if not points:
        return "no anomalies flagged"
    lines = [f"{len(points)} anomalous point(s):"]
    for point in points[-limit:]:
        lines.append(
            f"  [{'/'.join(point['kinds'])}] {point['detector']} "
            f"at t={point['at']:g} value {point['value']:.4f} "
            f"z {point['z']:.1f} shift {point['shift']:.1f}")
    return "\n".join(lines)


def render_frame(title: str, evaluator: SloEvaluator,
                 anomalies: Optional[Sequence[Dict]] = None) -> str:
    """One full dashboard frame (statuses + open incidents + the
    anomalies pane when an anomaly feed is attached)."""
    lines = [
        title,
        "=" * len(title),
        format_statuses(evaluator.statuses()),
        "",
        format_open_incidents(evaluator.timeline),
    ]
    if anomalies is not None:
        lines.extend(["", format_anomalies(anomalies)])
    lines.append(
        f"timeline: {len(evaluator.timeline.records)} record(s), "
        f"digest {evaluator.timeline.digest()[:16]}")
    return "\n".join(lines)


def frame_payload(evaluator: SloEvaluator,
                  anomalies: Optional[Sequence[Dict]] = None) -> Dict:
    """Machine-readable frame (the ``watch --json`` shape CI pins)."""
    payload = {
        "spec": evaluator.spec.name,
        "digest": evaluator.timeline.digest(),
        "records": len(evaluator.timeline.records),
        "paging": evaluator.paging,
        "objectives": [
            {"objective": s.objective.name,
             "severity": s.severity,
             "burn_fast": s.burn_fast,
             "burn_slow": s.burn_slow,
             "value": s.value,
             "at": s.at}
            for s in evaluator.statuses()],
        "incidents": [dict(record)
                      for record in evaluator.timeline.records],
    }
    if anomalies is not None:
        payload["anomalies"] = [dict(point) for point in anomalies]
    return payload


# ---- point-in-time health from telemetry JSONL exports ---------------

def read_telemetry_export(path: str) -> List[Dict]:
    """Rows of every instrument-export ``*.jsonl`` under ``path``
    (a file works too).  Prometheus ``.prom`` siblings are ignored."""
    files: List[str] = []
    if os.path.isdir(path):
        files = sorted(os.path.join(path, name)
                       for name in os.listdir(path)
                       if name.endswith(".jsonl"))
    else:
        files = [path]
    rows: List[Dict] = []
    for file_path in files:
        with open(file_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
    return rows


def _export_key(row: Dict) -> str:
    from repro.obs.metrics import instrument_key

    return instrument_key(str(row.get("metric", "")),
                          row.get("labels"))


def point_statuses(spec: SloSpec, rows: Sequence[Dict]
                   ) -> List[ObjectiveStatus]:
    """Point-in-time health of exported telemetry rows.

    Exports are snapshots (percentiles, counts, sums), not mergeable
    states, so no windowing is possible: each objective's *current*
    value is compared against its allowance and both burn columns
    carry the same point burn.  Latency objectives read the exported
    percentile nearest the objective's (p50/p90/p99 are exported)
    and report ``value / budget`` as the burn.
    """
    counters: Dict[str, float] = {}
    histograms: Dict[str, Dict] = {}
    for row in rows:
        key = _export_key(row)
        if row.get("type") == "counter":
            counters[key] = counters.get(key, 0.0) \
                + float(row.get("value", 0.0))
        elif row.get("type") == "histogram":
            histograms[key] = row
    statuses: List[ObjectiveStatus] = []
    for objective in spec.objectives:
        value = 0.0
        burn = 0.0
        if objective.kind == "latency":
            row = histograms.get(objective.instrument)
            if row is not None:
                exported = [float(p[1:]) for p in row
                            if p.startswith("p") and p[1:]
                            .replace(".", "").isdigit()]
                if exported:
                    nearest = min(
                        exported,
                        key=lambda p: abs(p - objective.percentile))
                    value = float(row[f"p{nearest:g}"])
                    burn = value / objective.budget_ms
        else:
            numerator = counters.get(objective.instrument, 0.0)
            if objective.kind == "mean" and not objective.total:
                row = histograms.get(objective.instrument)
                if row is not None and row.get("count"):
                    value = float(row["sum"]) / float(row["count"])
            else:
                denominator = counters.get(objective.total, 0.0)
                value = numerator / denominator if denominator else 0.0
            burn = value / objective.allowance
        severity = None
        if burn >= objective.page_burn:
            severity = "page"
        elif burn >= objective.warn_burn:
            severity = "warn"
        statuses.append(ObjectiveStatus(
            objective=objective, severity=severity,
            burn_fast=burn, burn_slow=burn, value=value,
            history=[burn]))
    return statuses


def render_point_frame(title: str, spec: SloSpec,
                       rows: Sequence[Dict]) -> str:
    """Dashboard frame for exported telemetry (no timeline)."""
    return "\n".join([
        title,
        "=" * len(title),
        format_statuses(point_statuses(spec, rows)),
        "",
        "(point-in-time view: exports carry no mergeable history, "
        "so burns are instantaneous)",
    ])


# ---- incident timeline formatting ------------------------------------

def format_incidents(records: Sequence[Dict],
                     objective: Optional[str] = None,
                     severity: Optional[str] = None,
                     event: Optional[str] = None) -> str:
    """Text table over (optionally filtered) timeline records."""
    kept = [r for r in records
            if (objective is None or r["objective"] == objective)
            and (severity is None or r["severity"] == severity)
            and (event is None or r["event"] == event)]
    if not kept:
        return "(no matching incident records)"
    lines = [f"{'seq':>4} {'t':>8} {'event':<8} {'sev':<5} "
             f"{'incident':<26} {'burn f/s':>13}  attribution"]
    for record in kept:
        rows = record.get("attribution", [])
        parts = [f"cell {row.get('cell')}:{row.get('scenario')}"
                 for row in rows if "cell" in row][:3]
        parts.extend(
            f"{row['event']}@slots "
            f"{row['start_slot']}-{row['end_slot']}"
            for row in rows if "event" in row)
        attribution = ", ".join(parts)
        lines.append(
            f"{record['seq']:>4} {record['at']:>8g} "
            f"{record['event']:<8} {str(record['severity']):<5} "
            f"{str(record['incident']):<26} "
            f"{record['burn_fast']:>6.1f}/{record['burn_slow']:<6.1f}"
            f"  {attribution}")
    return "\n".join(lines)
