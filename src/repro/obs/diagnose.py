"""Incident root-cause attribution: from "what fired" to "why".

The SLO layer answers *whether* a fleet is healthy; this module
answers the operator's next question.  Given the shards of a fleet
campaign (live results or a checkpoint), :func:`diagnose_fleet` joins
every signal the stack already records -- the scenario event
timelines captured into shard results, per-cell SLA accounting,
fallback/admission counter taxonomies, per-stage serve latency
histograms, streaming anomaly points -- against the campaign's SLO
breaches, and emits a :class:`DiagnosisReport`: a ranked list of
scored :class:`Hypothesis` rows (``event:latency_surge@slots 2-6
(transport_brownout) -> slice_latency_ms page``), each with its
evidence attached.

Determinism contract
    :meth:`DiagnosisReport.digest` must be bit-identical across shard
    counts and checkpoint resume, so it covers only projections that
    are pure functions of the campaign's *final* state: the fleet /
    snapshot / spec identity, per-objective breaches judged on the
    final cumulative merged telemetry (not the granularity-dependent
    burn-rate timeline), and hypotheses derived from final counter
    totals, the full cell list, and the declarative event timelines.
    Everything granularity- or wall-clock-dependent -- anomaly point
    series, the incident timeline's own digest, per-stage wall
    means -- still travels on the report for operators, but under
    fields (or ``"wall"`` evidence sub-dicts) the digest skips.

Layering: this module is part of :mod:`repro.obs` (stdlib + numpy
only) and therefore never imports :mod:`repro.fleet`.  Shard results
are duck-typed (``.shard`` / ``.cells`` / ``.telemetry()`` /
``.events``); the fleet coordinator imports :func:`worst_cells`,
:func:`make_event_hook` and :func:`replay_shards` *from here*, and
the tagged-JSON registration of the report dataclasses lives in
:mod:`repro.runtime.serialization`, both downward imports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.anomaly import AnomalyMonitor, DetectorSpec
from repro.obs.metrics import Telemetry, parse_key
from repro.obs.slo import IncidentTimeline, SloEvaluator, SloObjective, \
    SloSpec

DIAGNOSIS_FORMAT = 1

#: Hypothesis kinds, in tie-break rank order.
HYPOTHESIS_KINDS = ("event", "fallback", "snapshot", "stage")

#: How strongly each injected event kind explains each objective kind.
#: Rows sum to no particular total -- these are priors, sharpened by
#: the support term (the fraction of the fleet's cells running the
#: scenario that carries the event).
EVENT_AFFINITY: Dict[str, Dict[str, float]] = {
    "latency_surge":    {"latency": 1.00, "ratio": 0.45, "mean": 0.40},
    "link_degradation": {"latency": 0.90, "ratio": 0.70, "mean": 0.60},
    "background_load":  {"latency": 0.80, "ratio": 0.60, "mean": 0.55},
    "slice_arrival":    {"latency": 0.50, "ratio": 0.60, "mean": 0.70},
    "slice_departure":  {"latency": 0.30, "ratio": 0.30, "mean": 0.30},
}
#: Prior for event kinds this table has never heard of.
DEFAULT_AFFINITY = 0.25

#: Evidence keys whose values are wall-clock (or otherwise volatile)
#: and are therefore scrubbed from the digest projection.
VOLATILE_EVIDENCE_KEY = "wall"

#: Incident-row keys that enter the digest (all pure functions of the
#: final merged telemetry).
INCIDENT_DIGEST_FIELDS = ("objective", "kind", "instrument",
                          "severity", "burn", "value")


@dataclass(frozen=True)
class Hypothesis:
    """One scored explanation of one breached objective.

    ``evidence`` rows are plain dicts tagged with a ``kind``
    (``scenario-event`` / ``cell`` / ``counter`` / ``rate`` /
    ``snapshot`` / ``stage``); any wall-clock detail nests under the
    row's ``"wall"`` key, which the report digest scrubs.
    """

    incident: str                   # objective name it explains
    kind: str                       # one of HYPOTHESIS_KINDS
    label: str
    score: float
    evidence: Tuple[Dict, ...] = ()


@dataclass(frozen=True)
class DiagnosisReport:
    """The full diagnosis of one campaign (see module docstring for
    which fields the digest covers)."""

    fleet: str
    slo: str
    mode: str                       # "checkpoint" | "telemetry"
    snapshot_ref: str
    snapshot_digest: str
    #: Final-state breaches (digest-covered projection fields only).
    incidents: Tuple[Dict, ...]
    #: Ranked, highest score first.
    hypotheses: Tuple[Hypothesis, ...]
    #: Resolved scenario event rows (``scenario`` key added), for
    #: display; the digest already sees them through the hypotheses.
    events: Tuple[Dict, ...] = ()
    #: Anomaly points from the replay -- granularity-dependent (a
    #: 1-shard replay is a single step), digest-excluded.
    anomalies: Tuple[Dict, ...] = ()
    #: Burn-rate incident episodes from the timeline replay --
    #: granularity-dependent, digest-excluded.
    episodes: Tuple[Dict, ...] = ()
    #: The replayed :meth:`IncidentTimeline.digest` -- deterministic
    #: per shard count but *not* across shard counts, digest-excluded.
    timeline_digest: str = ""

    def digest(self) -> str:
        """SHA-256 over the shard-count-invariant projection."""
        sha = hashlib.sha256()
        head = [DIAGNOSIS_FORMAT, self.fleet, self.slo, self.mode,
                self.snapshot_ref, self.snapshot_digest]
        sha.update(json.dumps(head).encode("utf-8"))
        for row in self.incidents:
            projection = {key: _rounded(row.get(key))
                          for key in INCIDENT_DIGEST_FIELDS}
            sha.update(json.dumps(
                projection, sort_keys=True).encode("utf-8"))
        for hypothesis in self.hypotheses:
            evidence = [_scrub(row) for row in hypothesis.evidence]
            sha.update(json.dumps(
                [hypothesis.incident, hypothesis.kind,
                 hypothesis.label, _rounded(hypothesis.score),
                 evidence], sort_keys=True).encode("utf-8"))
        return sha.hexdigest()


def _rounded(value):
    """Round floats (recursively) the way the timeline digest does."""
    if isinstance(value, float):
        return round(value, 9)
    if isinstance(value, dict):
        return {key: _rounded(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_rounded(item) for item in value]
    return value


def _scrub(row: Dict) -> Dict:
    """An evidence row's digest projection: volatile subtree dropped,
    floats rounded."""
    return {key: _rounded(value) for key, value in sorted(row.items())
            if key != VOLATILE_EVIDENCE_KEY}


# ---- shared fleet helpers (imported by the coordinator) --------------

def worst_cells(cells: Sequence, limit: int = 3) -> List[Dict]:
    """The worst cells merged so far, as incident attribution rows.

    Deterministic fields only (``p50/p99_latency_ms`` are wall-clock
    measurements and would unpin the timeline digest); floats rounded
    the way the digest rounds top-level floats, since attribution rows
    nest below it.
    """
    worst = sorted(cells,
                   key=lambda c: (-c.violation_rate, c.cell))[:limit]
    return [{"cell": stats.cell, "scenario": stats.scenario,
             "violation_rate": round(stats.violation_rate, 9),
             "fallbacks": stats.fallbacks} for stats in worst]


def make_event_hook(events_by_scenario: Dict[str, Sequence[Dict]]):
    """An :attr:`SloEvaluator.attribution_hook` that appends the
    injected-event windows of every scenario named in a record's
    cell attribution.

    ``events_by_scenario`` is read at emission time, so callers may
    pass a mapping they keep filling as shards land.  Rows carry
    deterministic fields only -- they enter the timeline digest.
    """
    def hook(objective: SloObjective, record: Dict) -> List[Dict]:
        rows: List[Dict] = []
        seen = set()
        for attribution in record.get("attribution", []):
            scenario = attribution.get("scenario")
            if scenario is None or scenario in seen:
                continue
            seen.add(scenario)
            for event in events_by_scenario.get(scenario, ()):
                rows.append({"scenario": scenario,
                             "event": event["kind"],
                             "start_slot": event["start_slot"],
                             "end_slot": event["end_slot"]})
        return rows
    return hook


@dataclass
class ReplayState:
    """Everything a prefix-ordered shard replay accumulated."""

    telemetry: Telemetry
    cells: List
    events: Dict[str, Tuple[Dict, ...]]
    evaluator: Optional[SloEvaluator] = None
    monitor: Optional[AnomalyMonitor] = None


def replay_shards(results: Iterable,
                  slo: Optional[SloSpec] = None,
                  timeline: Optional[IncidentTimeline] = None,
                  monitor: Optional[AnomalyMonitor] = None
                  ) -> ReplayState:
    """Stream shard results through SLO / anomaly evaluation.

    The offline twin of the coordinator's live ``_SloDriver``: shards
    merge strictly in shard-index order, shard k evaluating at logical
    time ``k + 1`` with worst-cell attribution plus the event-window
    hook -- so a checkpoint replay reproduces the live run's timeline
    (and digest) bit for bit.  ``results`` rows are duck-typed
    (``.shard`` / ``.cells`` / ``.telemetry()`` / optional
    ``.events``); pre-event-capture checkpoints simply contribute no
    event rows.
    """
    ordered = sorted(results, key=lambda result: result.shard)
    events: Dict[str, Tuple[Dict, ...]] = {}
    evaluator = None
    if slo is not None:
        evaluator = SloEvaluator(slo, timeline=timeline,
                                 attribution_hook=make_event_hook(
                                     events))
    telemetry = Telemetry()
    cells: List = []
    for index, result in enumerate(ordered):
        telemetry.merge(result.telemetry())
        cells.extend(result.cells)
        for name, rows in getattr(result, "events", {}).items():
            events.setdefault(
                name, tuple(dict(row) for row in rows))
        at = float(index + 1)
        if evaluator is not None:
            evaluator.observe(telemetry, at,
                              attribution=worst_cells(cells))
        if monitor is not None:
            monitor.observe(telemetry, at)
    return ReplayState(telemetry=telemetry, cells=cells, events=events,
                       evaluator=evaluator, monitor=monitor)


# ---- judging the final state -----------------------------------------

def final_incidents(spec: SloSpec, telemetry: Telemetry) -> List[Dict]:
    """Per-objective breaches judged on the final cumulative SLI.

    This is the shard-count-invariant notion of "incident" the digest
    pins: the whole-campaign SLI against each objective's allowance
    (the burn a one-observation evaluation would report).  The
    windowed timeline view -- which can open and resolve along the
    way -- travels separately as ``episodes``.
    """
    rows: List[Dict] = []
    for objective in spec.objectives:
        num, den = SloEvaluator._cumulative(objective, telemetry)
        if den <= 0:
            continue
        sli = num / den
        burn = sli / objective.allowance
        if burn >= objective.page_burn:
            severity = "page"
        elif burn >= objective.warn_burn:
            severity = "warn"
        else:
            continue
        rows.append({"objective": objective.name,
                     "kind": objective.kind,
                     "instrument": objective.instrument,
                     "severity": severity,
                     "burn": round(burn, 9),
                     "value": round(sli, 9)})
    return rows


def _timeline_episodes(records: Sequence[Dict]) -> List[Dict]:
    """Summarise timeline records into per-incident episode rows
    (volatile: the at axis depends on checkpoint granularity)."""
    episodes: Dict[str, Dict] = {}
    order: List[str] = []
    for record in records:
        incident = record.get("incident")
        if incident is None:
            continue
        row = episodes.get(incident)
        if row is None:
            row = episodes[incident] = {
                "incident": incident,
                "objective": record["objective"],
                "severity": record["severity"],
                "opened_at": record["at"],
                "last_at": record["at"],
                "resolved": False,
                "records": 0,
            }
            order.append(incident)
        row["records"] += 1
        row["last_at"] = record["at"]
        if record["event"] == "resolve":
            row["resolved"] = True
        elif record["severity"] == "page":
            row["severity"] = "page"
    return [episodes[incident] for incident in order]


# ---- hypothesis generation -------------------------------------------

def _counter_value(telemetry: Telemetry, key: str) -> float:
    counter = telemetry.find_counter(key)
    return counter.value if counter is not None else 0.0


def _labeled_counter_rows(telemetry: Telemetry, name: str
                          ) -> List[Dict]:
    """Evidence rows for every labeled variant of counter ``name`` --
    the cause/app taxonomy the serve/loadgen layer records."""
    rows: List[Dict] = []
    for key, counter in sorted(telemetry.counters().items()):
        base, labels = parse_key(key)
        if base == name and labels:
            rows.append({"kind": "counter", "instrument": key,
                         "value": round(counter.value, 9)})
    return rows


def _event_hypotheses(incident: Dict, cells: Sequence,
                      events: Dict[str, Sequence[Dict]],
                      telemetry: Telemetry) -> List[Hypothesis]:
    """One hypothesis per injected event, scored by the affinity of
    the event kind for the breached objective kind, sharpened by the
    fraction of the fleet running the carrying scenario."""
    hypotheses: List[Hypothesis] = []
    total_cells = len(cells)
    if total_cells == 0:
        return hypotheses
    for scenario in sorted(events):
        scenario_cells = [stats for stats in cells
                          if stats.scenario == scenario]
        if not scenario_cells:
            continue
        support = len(scenario_cells) / total_cells
        cell_rows = worst_cells(scenario_cells, limit=3)
        for event in events[scenario]:
            affinity = EVENT_AFFINITY.get(event["kind"], {}).get(
                incident["kind"], DEFAULT_AFFINITY)
            score = round(affinity * (0.6 + 0.4 * support), 9)
            label = (f"event:{event['kind']}"
                     f"@slots {event['start_slot']}-"
                     f"{event['end_slot']} ({scenario}) -> "
                     f"{incident['instrument']} "
                     f"{incident['severity']}")
            evidence: List[Dict] = [{
                "kind": "scenario-event",
                "scenario": scenario,
                "event": event["kind"],
                "start_slot": event["start_slot"],
                "end_slot": event["end_slot"],
                "cells": len(scenario_cells),
                "params": dict(event.get("params", {})),
            }]
            evidence.extend(dict(row, kind="cell")
                            for row in cell_rows)
            if incident["kind"] == "ratio":
                evidence.extend(_labeled_counter_rows(
                    telemetry, incident["instrument"]))
            hypotheses.append(Hypothesis(
                incident=incident["objective"], kind="event",
                label=label, score=score,
                evidence=tuple(evidence)))
    return hypotheses


def _fallback_hypothesis(incident: Dict, telemetry: Telemetry
                         ) -> Optional[Hypothesis]:
    """The Eq. 8 safe-fallback storm explanation.

    Weighted up when the breached objective *is* the fallback rate,
    down otherwise -- a fallback storm shows up in latency breaches
    only indirectly (pi_b decisions are safe but conservative)."""
    decisions = _counter_value(telemetry, "decisions")
    fallbacks = _counter_value(telemetry, "fallbacks")
    if decisions <= 0 or fallbacks <= 0:
        return None
    rate = fallbacks / decisions
    weight = 0.9 if incident["instrument"] == "fallbacks" else 0.5
    score = round(min(1.0, 4.0 * rate) * weight, 9)
    evidence: List[Dict] = [
        {"kind": "rate", "instrument": "fallbacks/decisions",
         "value": round(rate, 9)},
        {"kind": "counter", "instrument": "fallbacks",
         "value": round(fallbacks, 9)},
        {"kind": "counter", "instrument": "decisions",
         "value": round(decisions, 9)},
    ]
    evidence.extend(_labeled_counter_rows(telemetry, "fallbacks"))
    label = (f"fallback:eq8 safe-fallback at {rate:.3f} of decisions "
             f"-> {incident['instrument']} {incident['severity']}")
    return Hypothesis(incident=incident["objective"], kind="fallback",
                      label=label, score=score,
                      evidence=tuple(evidence))


def _snapshot_hypothesis(incident: Dict, telemetry: Telemetry,
                         snapshot_ref: str, snapshot_digest: str
                         ) -> Optional[Hypothesis]:
    """The "bad snapshot" explanation: suspicion scales with the
    fallback rate (a regressed policy trips Eq. 8 fleet-wide) but is
    capped below a supported event hypothesis -- lineage is listed,
    not presumed guilty."""
    if not snapshot_ref:
        return None
    decisions = _counter_value(telemetry, "decisions")
    rate = (_counter_value(telemetry, "fallbacks") / decisions
            if decisions > 0 else 0.0)
    score = round(min(0.45, 0.05 + 2.0 * rate), 9)
    label = (f"snapshot:{snapshot_ref}@{snapshot_digest[:12]} serving "
             f"regression -> {incident['instrument']} "
             f"{incident['severity']}")
    evidence = ({"kind": "snapshot", "ref": snapshot_ref,
                 "digest": snapshot_digest},
                {"kind": "rate",
                 "instrument": "fallbacks/decisions",
                 "value": round(rate, 9)})
    return Hypothesis(incident=incident["objective"], kind="snapshot",
                      label=label, score=score, evidence=evidence)


def _stage_hypothesis(incident: Dict, telemetry: Telemetry
                      ) -> Optional[Hypothesis]:
    """The serve-path explanation: where decision wall time goes.

    Stage means are wall-clock, so they ride in each row's ``"wall"``
    sub-dict and the score is a fixed low prior -- the serve path
    cannot move the *simulated* latency SLIs, it can only corroborate.
    """
    if incident["kind"] not in ("latency", "mean"):
        return None
    histograms = telemetry.histograms()
    rows: List[Dict] = []
    for key in sorted(histograms):
        if not (key.startswith("stage_") and key.endswith("_ms")):
            continue
        histogram = histograms[key]
        rows.append({
            "kind": "stage",
            "stage": key[len("stage_"):-len("_ms")],
            "count": histogram.count,
            "wall": {"mean_ms": histogram.mean,
                     "total_ms": histogram.total},
        })
    if not rows:
        return None
    label = ("stage:serve-path latency profile (wall-clock evidence) "
             f"-> {incident['instrument']} {incident['severity']}")
    return Hypothesis(incident=incident["objective"], kind="stage",
                      label=label, score=0.25, evidence=tuple(rows))


def rank_hypotheses(hypotheses: Iterable[Hypothesis]
                    ) -> Tuple[Hypothesis, ...]:
    """Highest score first; ties break by kind order, then label."""
    order = {kind: i for i, kind in enumerate(HYPOTHESIS_KINDS)}
    return tuple(sorted(
        hypotheses,
        key=lambda h: (-h.score, order.get(h.kind, len(order)),
                       h.incident, h.label)))


# ---- entry points ----------------------------------------------------

def diagnose_fleet(results: Iterable,
                   slo: SloSpec,
                   fleet: str = "",
                   snapshot_ref: str = "",
                   snapshot_digest: str = "",
                   detectors: Optional[Sequence[DetectorSpec]] = None
                   ) -> DiagnosisReport:
    """Diagnose a fleet campaign from its shard results.

    ``results`` comes from a live ``run_fleet`` (via the checkpoint)
    or ``FleetCheckpoint.results.values()``; the replay re-derives the
    incident timeline and anomaly series exactly as the live run saw
    them, then judges breaches and hypotheses on the final state (see
    module docstring for what the digest covers).
    """
    monitor = AnomalyMonitor(detectors)
    state = replay_shards(results, slo=slo, monitor=monitor)
    telemetry = state.telemetry
    incidents = final_incidents(slo, telemetry)
    hypotheses: List[Hypothesis] = []
    for incident in incidents:
        hypotheses.extend(_event_hypotheses(
            incident, state.cells, state.events, telemetry))
        for build in (_fallback_hypothesis,):
            hypothesis = build(incident, telemetry)
            if hypothesis is not None:
                hypotheses.append(hypothesis)
        hypothesis = _snapshot_hypothesis(
            incident, telemetry, snapshot_ref, snapshot_digest)
        if hypothesis is not None:
            hypotheses.append(hypothesis)
        hypothesis = _stage_hypothesis(incident, telemetry)
        if hypothesis is not None:
            hypotheses.append(hypothesis)
    event_rows = tuple(
        {"scenario": scenario, **dict(row)}
        for scenario in sorted(state.events)
        for row in state.events[scenario])
    evaluator = state.evaluator
    return DiagnosisReport(
        fleet=fleet,
        slo=slo.name,
        mode="checkpoint",
        snapshot_ref=snapshot_ref,
        snapshot_digest=snapshot_digest,
        incidents=tuple(incidents),
        hypotheses=rank_hypotheses(hypotheses),
        events=event_rows,
        anomalies=tuple(monitor.anomalies()),
        episodes=tuple(_timeline_episodes(
            evaluator.timeline.records)),
        timeline_digest=evaluator.timeline.digest())


def diagnose_telemetry(rows: Sequence[Dict], slo: SloSpec,
                       label: str = "") -> DiagnosisReport:
    """Diagnose a telemetry JSONL export (point-in-time, degraded).

    Exports carry snapshots (percentile readouts, counter totals), not
    mergeable states, so there is no timeline, no anomaly stream and
    no event capture -- breaches come from the point health view
    (:func:`repro.obs.monitor.point_statuses`) and hypotheses from the
    counter taxonomy alone.
    """
    from repro.obs.monitor import point_statuses

    telemetry = Telemetry()
    for row in rows:
        if row.get("type") == "counter":
            telemetry.counter(str(row.get("metric", "")),
                              row.get("labels")).inc(
                float(row.get("value", 0.0)))
    incidents: List[Dict] = []
    for status in point_statuses(slo, rows):
        if status.severity is None:
            continue
        incidents.append({
            "objective": status.objective.name,
            "kind": status.objective.kind,
            "instrument": status.objective.instrument,
            "severity": status.severity,
            "burn": round(status.burn_fast, 9),
            "value": round(status.value, 9),
        })
    hypotheses: List[Hypothesis] = []
    for incident in incidents:
        hypothesis = _fallback_hypothesis(incident, telemetry)
        if hypothesis is not None:
            hypotheses.append(hypothesis)
        stage_rows = [
            {"kind": "stage",
             "stage": str(row["metric"])[len("stage_"):-len("_ms")],
             "count": int(row.get("count", 0)),
             "wall": {"mean_ms": float(row.get("mean", 0.0))}}
            for row in rows
            if row.get("type") == "histogram"
            and str(row.get("metric", "")).startswith("stage_")
            and str(row.get("metric", "")).endswith("_ms")
            and not row.get("labels")
        ]
        if stage_rows and incident["kind"] in ("latency", "mean"):
            hypotheses.append(Hypothesis(
                incident=incident["objective"], kind="stage",
                label=("stage:serve-path latency profile (wall-clock "
                       f"evidence) -> {incident['instrument']} "
                       f"{incident['severity']}"),
                score=0.25, evidence=tuple(stage_rows)))
    return DiagnosisReport(
        fleet=label,
        slo=slo.name,
        mode="telemetry",
        snapshot_ref="",
        snapshot_digest="",
        incidents=tuple(incidents),
        hypotheses=rank_hypotheses(hypotheses))


# ---- rendering -------------------------------------------------------

def format_report(report: DiagnosisReport, top: int = 5) -> str:
    """Human-readable rendering (the ``obs diagnose`` output)."""
    title = (f"diagnosis -- {report.fleet or report.mode} "
             f"[slo {report.slo}]")
    lines = [title, "=" * len(title)]
    if report.snapshot_ref:
        lines.append(f"snapshot {report.snapshot_ref} "
                     f"(digest {report.snapshot_digest[:12]})")
    if not report.incidents:
        lines.append("no objective breaches: nothing to diagnose")
    else:
        lines.append(f"{len(report.incidents)} breached "
                     "objective(s): " + ", ".join(
                         f"{row['objective']} [{row['severity']}, "
                         f"burn {row['burn']:.1f}x]"
                         for row in report.incidents))
        shown = report.hypotheses[:top] if top else report.hypotheses
        lines.append(f"top hypotheses ({len(shown)} of "
                     f"{len(report.hypotheses)}):")
        for i, hypothesis in enumerate(shown, start=1):
            lines.append(f"  {i}. [{hypothesis.score:.3f}] "
                         f"{hypothesis.label}")
            for row in hypothesis.evidence[:4]:
                detail = ", ".join(
                    f"{key}={value}" for key, value
                    in sorted(row.items())
                    if key not in ("kind", VOLATILE_EVIDENCE_KEY))
                lines.append(f"       - {row.get('kind')}: {detail}")
    if report.anomalies:
        lines.append(f"{len(report.anomalies)} anomalous point(s) in "
                     "replay:")
        for point in report.anomalies[-4:]:
            lines.append(
                f"  [{'/'.join(point['kinds'])}] {point['detector']} "
                f"at t={point['at']:g} value {point['value']:.4f} "
                f"z {point['z']:.1f} shift {point['shift']:.1f}")
    if report.episodes:
        lines.append(f"{len(report.episodes)} timeline episode(s):")
        for row in report.episodes:
            state = "resolved" if row["resolved"] else "open"
            lines.append(
                f"  [{row['severity']}] {row['incident']} "
                f"t={row['opened_at']:g}..{row['last_at']:g} "
                f"({state})")
    if report.timeline_digest:
        lines.append(f"timeline digest {report.timeline_digest[:16]}")
    lines.append(f"diagnosis digest {report.digest()}")
    return "\n".join(lines)
