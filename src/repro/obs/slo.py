"""SLOs over telemetry: burn-rate alerting and incident timelines.

The paper's core promise is *safe* online slicing -- SLA violations
are the failure signal behind the Eq. 8 fallback -- yet everything
below this module only *records*: counters, histograms, traces.  This
module is the layer that *judges*, continuously: a declarative
:class:`SloSpec` expresses objectives over existing
:class:`~repro.obs.metrics.Telemetry` instruments (latency budgets
per slice class, SLA-violation-rate ceilings, cost ceilings,
fallback-rate bounds), and a streaming :class:`SloEvaluator` checks
them with Google-SRE-style **multi-window burn-rate alerting**.

Burn rate
    An objective grants an *error budget*: the fraction of traffic
    allowed to be bad (for a p99 latency budget, 1% may exceed it; for
    a violation-rate ceiling of 0.1, 10% of episodes may violate).
    The burn rate over a window is ``bad_fraction / budget_fraction``
    -- 1.0 spends the budget exactly on schedule, 14.4 spends a
    30-day budget in ~2 days.  An alert fires only when **both** a
    fast and a slow window burn above the threshold: the slow window
    keeps one noisy blip from paging, the fast window makes the alert
    *resolve* promptly once the condition clears.  Two severities
    (``page`` above :attr:`SloObjective.page_burn`, ``warn`` above
    :attr:`SloObjective.warn_burn`) follow the SRE-workbook defaults.

Windows are measured in whatever unit the caller's ``at`` timestamps
use -- wall seconds for a live service, served slots for a
:class:`~repro.serve.loadgen.LoadGenerator`, shard-checkpoint indices
for the fleet coordinator -- which is what makes evaluation
*deterministic* when the time axis is logical.

Firing transitions are deduplicated into an :class:`IncidentTimeline`
-- structured JSONL ``open`` / ``update`` / ``resolve`` records
carrying the offending instrument key, burn rates, optional per-cell /
per-scenario attribution, and exemplar trace-span references when a
tracer is active -- with a deterministic :meth:`IncidentTimeline
.digest` (volatile fields excluded, clock injectable) so CI can pin
whole alert sequences.  :meth:`SloEvaluator.compare` is the
point-in-time verdict the future canary controller will call:
"is the candidate's telemetry at least as healthy as the incumbent's,
objective by objective?".

Import discipline: like the rest of :mod:`repro.obs` this module
depends only on the standard library and numpy; the tagged-JSON
registration of its dataclasses lives in
:mod:`repro.runtime.serialization` (a downward import, no cycle).
"""

from __future__ import annotations

import bisect
import hashlib
import json
import operator
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Telemetry

TIMELINE_FORMAT = 1

#: Objective kinds (see :class:`SloObjective`).
KINDS = ("latency", "ratio", "mean")

#: SRE-workbook default thresholds: a page-severity burn of 14.4
#: spends a 30-day budget in ~2 days; warn at 6x spends it in 5 days.
DEFAULT_PAGE_BURN = 14.4
DEFAULT_WARN_BURN = 6.0

#: Burn-history samples kept per objective for sparkline rendering.
HISTORY_LIMIT = 120

_sample_at = operator.itemgetter(0)


@dataclass(frozen=True)
class SloObjective:
    """One objective over one (or two) telemetry instruments.

    kind="latency"
        ``instrument`` names a histogram; the SLI over a window is the
        fraction of its observations above ``budget_ms``
        (:meth:`~repro.obs.metrics.Histogram.count_over` deltas).  The
        error budget is ``(100 - percentile) / 100`` -- a p99
        objective tolerates 1% of traffic over budget.
    kind="ratio"
        ``instrument`` and ``total`` name counters (bad / all); the
        SLI is their windowed-delta ratio and ``ceiling`` is the error
        budget (allowed bad fraction).
    kind="mean"
        ``instrument`` names a histogram (windowed ``sum/count``
        mean), or a counter whose windowed delta is divided by the
        ``total`` counter's delta; ``ceiling`` is the allowed mean.
        Burn is ``mean / ceiling``, so thresholds near 1.0 (not the
        SRE defaults) are the sensible choice for mean objectives.
    """

    name: str
    kind: str
    instrument: str
    #: Denominator counter key (ratio kind; mean kind over counters).
    total: str = ""
    #: Latency budget in the instrument's own unit (latency kind).
    budget_ms: float = 0.0
    #: Which percentile the latency budget protects (latency kind).
    percentile: float = 99.0
    #: Allowed bad fraction (ratio) / allowed mean (mean).
    ceiling: float = 0.0
    #: Burn-rate windows, in the caller's ``at`` time unit.
    fast_window: float = 5.0
    slow_window: float = 30.0
    page_burn: float = DEFAULT_PAGE_BURN
    warn_burn: float = DEFAULT_WARN_BURN
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective name must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if not self.instrument:
            raise ValueError(f"objective {self.name!r} names no "
                             "instrument")
        if self.kind == "latency":
            if self.budget_ms <= 0:
                raise ValueError(f"objective {self.name!r}: latency "
                                 "objectives need budget_ms > 0")
            if not 0.0 < self.percentile < 100.0:
                raise ValueError(f"objective {self.name!r}: percentile "
                                 "must be in (0, 100)")
        elif self.ceiling <= 0:
            raise ValueError(f"objective {self.name!r}: {self.kind} "
                             "objectives need ceiling > 0")
        if self.kind == "ratio" and not self.total:
            raise ValueError(f"objective {self.name!r}: ratio "
                             "objectives need a total counter")
        if not 0 < self.fast_window <= self.slow_window:
            raise ValueError(f"objective {self.name!r}: need "
                             "0 < fast_window <= slow_window")
        if not 0 < self.warn_burn <= self.page_burn:
            raise ValueError(f"objective {self.name!r}: need "
                             "0 < warn_burn <= page_burn")

    @property
    def allowance(self) -> float:
        """The error budget the burn rate is measured against."""
        if self.kind == "latency":
            return (100.0 - self.percentile) / 100.0
        return self.ceiling


@dataclass(frozen=True)
class SloSpec:
    """A named set of objectives -- the declarative health contract.

    Frozen, hashable and tagged-JSON-serialisable (via
    :mod:`repro.runtime.serialization`), like ``ScenarioSpec`` and
    ``FleetSpec``, so ``fleet run --slo spec.json`` round-trips it
    and CI can pin the spec that produced a timeline.
    """

    name: str
    objectives: Tuple[SloObjective, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("slo spec name must be non-empty")
        if not self.objectives:
            raise ValueError("slo spec needs at least one objective")
        seen = set()
        for objective in self.objectives:
            if objective.name in seen:
                raise ValueError(f"duplicate objective name "
                                 f"{objective.name!r}")
            seen.add(objective.name)


def default_slo_spec(latency_budget_ms: float = 200.0,
                     violation_ceiling: float = 0.05,
                     fallback_ceiling: float = 0.10,
                     cost_ceiling: float = 1.0,
                     fast_window: float = 1.0,
                     slow_window: float = 3.0) -> SloSpec:
    """The stock health contract over the serving stack's instruments.

    The 200 ms latency budget sits comfortably above the default
    scenario's simulated end-to-end envelope (~145-155 ms) and
    comfortably below a sustained transport degradation (the
    ``transport_brownout`` scenario adds 60 ms), so healthy fleets
    read ``ok`` and brownouts page.  Ratio ceilings are chosen so the
    SRE thresholds are *reachable* (a ceiling of c caps burn at 1/c);
    the fallback objective overrides them, since a fallback rate of
    1.0 only burns 10x against its 0.10 ceiling.

    Windows default to (1, 3) in the caller's time unit -- tuned for
    the fleet coordinator's shard-checkpoint axis, where a fast window
    of one checkpoint reacts to the newest shard and the slow window
    smooths over three.  Live services passing wall-clock seconds
    should widen both.
    """
    return SloSpec(name="default", objectives=(
        SloObjective(
            name="slice-latency-p99", kind="latency",
            instrument="slice_latency_ms",
            budget_ms=latency_budget_ms, percentile=99.0,
            fast_window=fast_window, slow_window=slow_window,
            description="simulated end-to-end slice latency "
                        "(transport + core + edge) p99 budget"),
        SloObjective(
            name="sla-violation-rate", kind="ratio",
            instrument="sla_violations", total="sla_episodes",
            ceiling=violation_ceiling,
            fast_window=fast_window, slow_window=slow_window,
            description="fraction of (episode, slice) pairs whose "
                        "mean cost broke the paper's SLA threshold"),
        SloObjective(
            name="fallback-rate", kind="ratio",
            instrument="fallbacks", total="decisions",
            ceiling=fallback_ceiling, page_burn=8.0, warn_burn=4.0,
            fast_window=fast_window, slow_window=slow_window,
            description="fraction of decisions served by the Eq. 8 "
                        "safe fallback instead of the learned policy"),
        SloObjective(
            name="mean-slot-cost", kind="mean",
            instrument="slice_cost_total", total="slice_slots",
            ceiling=cost_ceiling, page_burn=1.5, warn_burn=1.0,
            fast_window=fast_window, slow_window=slow_window,
            description="mean per-slot Eq. 10 cost across slices"),
    ))


# ---- incident timeline ----------------------------------------------

#: Record fields that participate in :meth:`IncidentTimeline.digest`.
#: ``wall_time`` (real clock) and ``exemplars`` (trace file paths
#: carry pids) are deliberately volatile; everything else is a pure
#: function of the evaluated telemetry stream.
DIGEST_FIELDS = ("seq", "event", "incident", "objective", "severity",
                 "kind", "instrument", "at", "burn_fast", "burn_slow",
                 "value", "attribution")


class IncidentTimeline:
    """Append-only JSONL incident log with a deterministic digest.

    ``path=None`` keeps records in memory (tests, ad-hoc evaluation);
    with a path every appended record lands as one JSON line, headed
    by a self-describing header row.  ``clock`` is injectable (like
    :class:`~repro.obs.metrics.Telemetry`): ``wall_time`` stamps are
    display metadata and never enter the digest.
    """

    def __init__(self, path: Optional[str] = None,
                 clock: Callable[[], float] = time.time,
                 records: Optional[List[Dict]] = None) -> None:
        self.path = path
        self._clock = clock
        self.records: List[Dict] = list(records or [])
        self._fh = None
        if path is not None and records is None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")
            self._fh.write(json.dumps(
                {"kind": "header", "format": TIMELINE_FORMAT}) + "\n")
            self._fh.flush()

    @classmethod
    def load(cls, path: str, append: bool = False,
             clock: Callable[[], float] = time.time
             ) -> "IncidentTimeline":
        """Parse a timeline file; ``append=True`` keeps it open for
        further records (the evaluator-restart path).  Tolerates a
        torn trailing line, like the fleet checkpoint reader."""
        records: List[Dict] = []
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except ValueError:
                    break
                # incident rows carry an "event"; the header (and any
                # future non-incident row kinds) do not
                if "event" in row:
                    records.append(row)
        timeline = cls(path=path if append else None, clock=clock,
                       records=records)
        if append:
            timeline._fh = open(path, "a", encoding="utf-8")
        return timeline

    def append(self, record: Dict) -> Dict:
        record = dict(record)
        record["seq"] = len(self.records)
        record["wall_time"] = self._clock()
        self.records.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record) + "\n")
            self._fh.flush()
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def open_incidents(self) -> Dict[str, Dict]:
        """Objective name -> latest unresolved open/update record."""
        open_by_objective: Dict[str, Dict] = {}
        for record in self.records:
            objective = record["objective"]
            if record["event"] in ("open", "update"):
                open_by_objective[objective] = record
            elif record["event"] == "resolve":
                open_by_objective.pop(objective, None)
        return open_by_objective

    def digest(self) -> str:
        """SHA-256 over the deterministic projection of every record
        (see :data:`DIGEST_FIELDS`) -- pinnable in CI whenever the
        evaluated stream used a logical time axis."""
        sha = hashlib.sha256()
        for record in self.records:
            projection = []
            for key in DIGEST_FIELDS:
                value = record.get(key)
                if isinstance(value, float):
                    value = round(value, 9)
                projection.append(value)
            sha.update(json.dumps(projection,
                                  sort_keys=True).encode("utf-8"))
        return sha.hexdigest()


# ---- streaming evaluation -------------------------------------------

@dataclass
class ObjectiveStatus:
    """One objective's latest evaluation, for dashboards."""

    objective: SloObjective
    severity: Optional[str] = None      # None | "warn" | "page"
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    value: float = 0.0                  # fast-window SLI
    at: Optional[float] = None
    incident: Optional[str] = None
    #: Recent fast-window burns, oldest first (sparkline fodder).
    history: List[float] = field(default_factory=list)


class SloEvaluator:
    """Streams periodic :class:`Telemetry` snapshots through the
    spec's objectives and appends deduplicated firing transitions to
    an :class:`IncidentTimeline`.

    Feed it *cumulative* registries (the natural shape of this repo's
    telemetry: counters and histograms only ever grow, and fleet
    prefixes merge monotonically); the evaluator keeps a bounded ring
    of (at, numerator, denominator) samples per objective and reads
    windowed rates as deltas against the newest sample at or before
    the window start.  Restarting mid-stream is safe: pass the loaded
    timeline and already-open incidents stay open (no duplicate
    ``open`` records), resolving normally when the burn clears.
    """

    def __init__(self, spec: SloSpec,
                 timeline: Optional[IncidentTimeline] = None,
                 attribution_hook: Optional[
                     Callable[[SloObjective, Dict], Sequence[Dict]]]
                 = None) -> None:
        self.spec = spec
        self.timeline = timeline if timeline is not None \
            else IncidentTimeline()
        #: Called with (objective, record) for every open/update/
        #: resolve transition; the dict rows it returns are appended
        #: to the record's attribution.  Rows enter the timeline
        #: digest, so hooks must emit deterministic fields only (the
        #: diagnosis layer's event hook attaches scenario event
        #: windows this way).
        self.attribution_hook = attribution_hook
        self._samples: Dict[str, List[Tuple[float, float, float]]] = \
            {o.name: [] for o in spec.objectives}
        self._status: Dict[str, ObjectiveStatus] = \
            {o.name: ObjectiveStatus(objective=o)
             for o in spec.objectives}
        self._counts: Dict[str, int] = {o.name: 0
                                        for o in spec.objectives}
        # Restart dedup: adopt the loaded timeline's open incidents so
        # a persisting condition updates/resolves them instead of
        # re-opening duplicates.
        for record in self.timeline.records:
            name = record["objective"]
            if name in self._counts:
                self._counts[name] = max(
                    self._counts[name],
                    int(record["incident"].rsplit("#", 1)[-1]))
        for name, record in self.timeline.open_incidents().items():
            status = self._status.get(name)
            if status is not None:
                status.severity = record["severity"]
                status.incident = record["incident"]

    # ---- reading the registry ---------------------------------------

    @staticmethod
    def _cumulative(objective: SloObjective, telemetry: Telemetry
                    ) -> Tuple[float, float]:
        """(numerator, denominator) running totals for one objective."""
        if objective.kind == "latency":
            histogram = telemetry.find_histogram(objective.instrument)
            if histogram is None:
                return 0.0, 0.0
            return (histogram.count_over(objective.budget_ms),
                    float(histogram.count))
        if objective.kind == "mean" and not objective.total:
            histogram = telemetry.find_histogram(objective.instrument)
            if histogram is None:
                return 0.0, 0.0
            return float(histogram.total), float(histogram.count)
        bad = telemetry.find_counter(objective.instrument)
        total = telemetry.find_counter(objective.total)
        return (bad.value if bad is not None else 0.0,
                total.value if total is not None else 0.0)

    def _window_rate(self, name: str, at: float, window: float
                     ) -> float:
        """Windowed SLI: delta ratio against the newest sample at or
        before ``at - window`` (the zero origin before any sample)."""
        samples = self._samples[name]
        # newest sample (excluding the one just appended) at or
        # before the window start; samples are at-sorted, so bisect
        index = bisect.bisect_right(samples, at - window,
                                    hi=len(samples) - 1,
                                    key=_sample_at)
        anchor_num = anchor_den = 0.0
        if index > 0:
            _, anchor_num, anchor_den = samples[index - 1]
        _, num, den = samples[-1]
        delta_den = den - anchor_den
        if delta_den <= 0:
            return 0.0
        return (num - anchor_num) / delta_den

    # ---- the streaming step -----------------------------------------

    def observe(self, telemetry: Telemetry, at: float,
                attribution: Optional[Sequence[Dict]] = None
                ) -> List[Dict]:
        """Evaluate one cumulative snapshot at logical time ``at``.

        ``attribution`` (e.g. the worst cells of the shard that just
        landed, deterministic fields only) is attached to any record
        this step emits.  Returns the records appended (empty when
        nothing changed -- the dedup guarantee).
        """
        at = float(at)
        emitted: List[Dict] = []
        exemplars: Optional[List[Dict]] = None
        for objective in self.spec.objectives:
            name = objective.name
            samples = self._samples[name]
            if samples and at <= samples[-1][0]:
                raise ValueError(
                    f"observation at {at} is not after the previous "
                    f"sample at {samples[-1][0]} (objective {name!r})")
            num, den = self._cumulative(objective, telemetry)
            samples.append((at, num, den))
            # prune beyond the slow window, keeping one anchor sample
            # at/before every reachable window start
            horizon = at - objective.slow_window
            keep = 0
            for i, (sample_at, _, _) in enumerate(samples):
                if sample_at > horizon:     # at-sorted: done
                    break
                keep = i
            del samples[:keep]

            sli_fast = self._window_rate(name, at,
                                         objective.fast_window)
            sli_slow = self._window_rate(name, at,
                                         objective.slow_window)
            burn_fast = sli_fast / objective.allowance
            burn_slow = sli_slow / objective.allowance
            severity = None
            if (burn_fast >= objective.page_burn
                    and burn_slow >= objective.page_burn):
                severity = "page"
            elif (burn_fast >= objective.warn_burn
                    and burn_slow >= objective.warn_burn):
                severity = "warn"

            status = self._status[name]
            previous = status.severity
            status.burn_fast = burn_fast
            status.burn_slow = burn_slow
            status.value = sli_fast
            status.at = at
            status.history.append(burn_fast)
            del status.history[:-HISTORY_LIMIT]

            if severity == previous:
                continue
            if severity is not None and previous is None:
                event = "open"
                self._counts[name] += 1
                status.incident = f"{name}#{self._counts[name]}"
            elif severity is not None:
                event = "update"         # severity changed while open
            else:
                event = "resolve"
            if exemplars is None:
                exemplars = _trace_exemplars()
            record = {
                "event": event,
                "incident": status.incident,
                "objective": name,
                "severity": severity if severity is not None
                else previous,
                "kind": objective.kind,
                "instrument": objective.instrument,
                "at": at,
                "burn_fast": burn_fast,
                "burn_slow": burn_slow,
                "value": sli_fast,
                "attribution": [dict(row) for row in attribution]
                if attribution else [],
            }
            if self.attribution_hook is not None:
                record["attribution"].extend(
                    dict(row) for row in
                    self.attribution_hook(objective, record))
            if exemplars:
                record["exemplars"] = exemplars
            emitted.append(self.timeline.append(record))
            status.severity = severity
            if severity is None:
                status.incident = None
        return emitted

    # ---- readouts ----------------------------------------------------

    def statuses(self) -> List[ObjectiveStatus]:
        """Latest per-objective evaluation, in spec order."""
        return [self._status[o.name] for o in self.spec.objectives]

    @property
    def paging(self) -> bool:
        """True while any objective has an open page-severity
        incident -- the ``fleet run --slo --fail-fast`` trigger."""
        return any(status.severity == "page"
                   for status in self._status.values())

    # ---- the canary verdict -----------------------------------------

    def compare(self, incumbent: Telemetry, candidate: Telemetry,
                tolerance: float = 0.10) -> Dict:
        """Point-in-time verdict: is ``candidate`` at least as healthy
        as ``incumbent``?

        For every objective the *whole-registry* SLI of both sides is
        compared: the candidate passes if it is within the objective's
        own error budget, or no more than ``tolerance`` (relative)
        worse than the incumbent -- a candidate must not be punished
        for inheriting an already-burning objective.  This is the
        reusable verdict function a canary controller calls before
        promoting a snapshot; it streams nothing and opens no
        incidents.
        """
        rows: List[Dict] = []
        ok = True
        for objective in self.spec.objectives:
            inc_num, inc_den = self._cumulative(objective, incumbent)
            cand_num, cand_den = self._cumulative(objective, candidate)
            inc_value = inc_num / inc_den if inc_den > 0 else 0.0
            cand_value = cand_num / cand_den if cand_den > 0 else 0.0
            within_budget = cand_value <= objective.allowance
            regressed = cand_value > inc_value * (1.0 + tolerance) \
                + 1e-12
            row_ok = within_budget or not regressed
            ok = ok and row_ok
            rows.append({
                "objective": objective.name,
                "kind": objective.kind,
                "instrument": objective.instrument,
                "allowance": objective.allowance,
                "incumbent": inc_value,
                "candidate": cand_value,
                "within_budget": within_budget,
                "regressed": regressed,
                "ok": row_ok,
            })
        return {"spec": self.spec.name, "tolerance": tolerance,
                "rows": rows, "candidate_ok": ok}


def _trace_exemplars(limit: int = 3) -> List[Dict]:
    """Exemplar span references from the active tracer, if any.

    Volatile by nature (trace file names carry pids, counts depend on
    flush timing) -- attached to incident records for debugging,
    excluded from the timeline digest.
    """
    # repro.obs re-exports trace() the *function*, which shadows the
    # submodule on attribute-style imports; resolve the module itself
    import importlib

    trace_module = importlib.import_module("repro.obs.trace")
    tracer = trace_module.active()
    if tracer is None:
        return []
    rollup = tracer.rollup()
    top = sorted(rollup.items(),
                 key=lambda item: -item[1]["total_ms"])[:limit]
    exemplars = []
    for (path, attrs), entry in top:
        exemplars.append({"span": path, "attrs": dict(attrs),
                          "count": int(entry["count"]),
                          "trace_file": tracer.path})
    return exemplars
