"""Opt-in per-kernel profiling hooks: wall-clock and allocation laps.

The engine's numeric kernels (:func:`repro.engine.kernels
.evaluate_rows`) are instrumented with *laps*: at each kernel-stage
boundary the active profiler records the time (and optionally the net
traced allocation) since the previous boundary.  When no profiler is
active -- the default -- the hook is one module-global read per
``evaluate_rows`` call, so the hot path stays hot.

Sampling: a :class:`KernelProfiler` with ``sample_interval=N`` laps
every N-th ``evaluate_rows`` call and scales totals back up in the
report, so profiling a long campaign costs a fraction of full
instrumentation.  Allocation tracking (``alloc=True``) uses
``tracemalloc`` and is markedly slower; it is for directed
memory-hunting sessions, not steady-state runs.

Usage::

    profiler = KernelProfiler(sample_interval=4)
    with profiler:                     # activate() / deactivate()
        run_episode(...)
    print(format_profile(profiler.report()))

``python -m repro obs profile`` wraps this around one scenario
episode and prints the per-kernel cost breakdown that directs the
ROADMAP's kernel-optimisation pass.
"""

from __future__ import annotations

import time
import tracemalloc
from typing import Callable, Dict, List, Optional


class _Lap:
    """One sampled ``evaluate_rows`` call's stage stopwatch."""

    __slots__ = ("_profiler", "_last", "_last_alloc")

    def __init__(self, profiler: "KernelProfiler") -> None:
        self._profiler = profiler
        self._last_alloc = (tracemalloc.get_traced_memory()[0]
                            if profiler.alloc else 0)
        self._last = profiler._clock()

    def lap(self, kernel: str) -> None:
        """Close the stage that just ran under ``kernel``'s name."""
        profiler = self._profiler
        now = profiler._clock()
        alloc = 0
        if profiler.alloc:
            current = tracemalloc.get_traced_memory()[0]
            alloc = current - self._last_alloc
            self._last_alloc = current
        stats = profiler._stats.get(kernel)
        if stats is None:
            stats = profiler._stats[kernel] = [0, 0.0, 0]
        stats[0] += 1
        stats[1] += now - self._last
        stats[2] += alloc
        self._last = now


class KernelProfiler:
    """Sampling per-kernel cost recorder (see module docstring)."""

    def __init__(self, sample_interval: int = 1, alloc: bool = False,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.sample_interval = sample_interval
        self.alloc = alloc
        self._clock = clock
        self._calls = 0
        # kernel -> [laps, seconds, alloc_bytes]
        self._stats: Dict[str, List[float]] = {}

    # ---- hook side (called from the kernels) -------------------------

    def begin(self) -> Optional[_Lap]:
        """Start timing one kernel call, or ``None`` if this call
        falls between samples."""
        self._calls += 1
        if (self._calls - 1) % self.sample_interval:
            return None
        return _Lap(self)

    # ---- lifecycle ---------------------------------------------------

    def __enter__(self) -> "KernelProfiler":
        activate(self)
        return self

    def __exit__(self, *exc) -> bool:
        deactivate()
        return False

    # ---- reading -----------------------------------------------------

    @property
    def calls(self) -> int:
        return self._calls

    def report(self) -> List[Dict[str, object]]:
        """Per-kernel rows, costliest first.  ``est_total_ms`` scales
        the sampled time by the sampling interval (the estimate of the
        kernel's full cost); ``share`` is its fraction of the summed
        estimates."""
        total = sum(stats[1] for stats in self._stats.values())
        rows = []
        for kernel, stats in sorted(self._stats.items(),
                                    key=lambda kv: -kv[1][1]):
            row: Dict[str, object] = {
                "kernel": kernel,
                "laps": int(stats[0]),
                "sampled_ms": stats[1] * 1e3,
                "est_total_ms": stats[1] * 1e3 * self.sample_interval,
                "share": (stats[1] / total) if total else 0.0,
            }
            if self.alloc:
                row["alloc_bytes"] = int(stats[2])
            rows.append(row)
        return rows


# ---- module-level switchboard ---------------------------------------

_ACTIVE: Optional[KernelProfiler] = None


def activate(profiler: KernelProfiler) -> KernelProfiler:
    """Install ``profiler`` as the process-wide kernel profiler."""
    global _ACTIVE
    if profiler.alloc and not tracemalloc.is_tracing():
        tracemalloc.start()
    _ACTIVE = profiler
    return profiler


def deactivate() -> None:
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE.alloc \
            and tracemalloc.is_tracing():
        tracemalloc.stop()
    _ACTIVE = None


def active() -> Optional[KernelProfiler]:
    return _ACTIVE


def begin() -> Optional[_Lap]:
    """The kernel-side hook: ``None`` (one global read) when profiling
    is off or this call is unsampled, else a started :class:`_Lap`."""
    profiler = _ACTIVE
    if profiler is None:
        return None
    return profiler.begin()


def format_profile(rows: List[Dict[str, object]]) -> str:
    """Text table for :meth:`KernelProfiler.report` rows."""
    if not rows:
        return "(no kernel laps recorded)"
    has_alloc = "alloc_bytes" in rows[0]
    header = (f"{'kernel':<12}  {'laps':>7}  {'sampled ms':>11}  "
              f"{'est total ms':>13}  {'share':>6}")
    if has_alloc:
        header += f"  {'alloc kB':>10}"
    lines = [header]
    for row in rows:
        line = (f"{row['kernel']:<12}  {row['laps']:>7}  "
                f"{row['sampled_ms']:>11.2f}  "
                f"{row['est_total_ms']:>13.2f}  "
                f"{row['share']:>6.1%}")
        if has_alloc:
            line += f"  {row['alloc_bytes'] / 1024.0:>10.1f}"
        lines.append(line)
    return "\n".join(lines)
