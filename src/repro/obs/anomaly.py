"""Streaming anomaly detection over telemetry instruments.

The SLO layer (:mod:`repro.obs.slo`) judges telemetry against a
declared contract; this module notices *change* without one.  A
:class:`StreamingDetector` follows a single instrument-derived series
(a histogram's windowed mean, a counter ratio, or a counter rate) and
flags two shapes of trouble:

spike
    The newest windowed value sits far from the recent robust centre:
    ``|value - median| / (1.4826 * MAD)`` beyond
    :attr:`DetectorSpec.z_threshold`.  Median/MAD instead of mean/std
    keeps one outlier from poisoning the baseline it is judged
    against.
level shift
    The median of the newer half of the history has moved away from
    the median of the older half by more than
    :attr:`DetectorSpec.shift_threshold` robust sigmas -- the
    signature of a sustained regime change (a transport brownout, a
    fallback latch) rather than a blip.

Detectors keep the same discipline as :class:`~repro.obs.slo
.SloEvaluator`: they are fed *cumulative* registries on a logical
time axis, keep a bounded ``(at, numerator, denominator)`` ring, and
derive per-step windowed values as deltas -- so a fleet replay that
merges shard prefixes in shard-index order produces bit-identical
anomaly series no matter how the underlying observations were split
across shards (see ``tests/test_anomaly_props.py``).

An EWMA of the series is maintained alongside (``alpha`` smoothing)
purely as a cheap trend readout for dashboards; flagging decisions
use the robust statistics only.

Import discipline: standard library only (numpy not even needed --
histories are tiny by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import Telemetry

#: Series modes a detector understands (see :class:`DetectorSpec`).
MODES = ("mean", "ratio", "rate")

#: Flagged points kept per detector (oldest evicted first).
POINT_LIMIT = 256

#: Z-scores are clamped here: a zero-MAD baseline makes any deviation
#: "infinitely" surprising, which is true but unhelpful to render.
Z_CLAMP = 999.0

#: Relative floor on the robust scale, so a near-constant baseline
#: (MAD ~ 0) does not turn float dust into paging z-scores.
SCALE_FLOOR = 0.05


@dataclass(frozen=True)
class DetectorSpec:
    """One streaming detector over one (or two) instruments.

    mode="mean"
        ``instrument`` names a histogram; the series is its windowed
        mean (delta sum / delta count per step).
    mode="ratio"
        ``instrument`` / ``total`` name counters; the series is their
        windowed delta ratio (e.g. fallbacks per decision).
    mode="rate"
        ``instrument`` names a counter; the series is its delta per
        unit of the caller's ``at`` axis.
    """

    name: str
    instrument: str
    mode: str = "mean"
    #: Denominator counter key (ratio mode only).
    total: str = ""
    #: EWMA smoothing for the trend readout.
    alpha: float = 0.3
    #: Robust z-score beyond which a point is a spike.
    z_threshold: float = 4.0
    #: Half-median divergence (in robust sigmas) that is a level shift.
    shift_threshold: float = 2.0
    #: Bounded history of windowed values per detector.
    history: int = 32
    #: Steps observed before spike flagging engages.
    warmup: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("detector name must be non-empty")
        if self.mode not in MODES:
            raise ValueError(f"unknown detector mode {self.mode!r}; "
                             f"expected one of {MODES}")
        if not self.instrument:
            raise ValueError(f"detector {self.name!r} names no "
                             "instrument")
        if self.mode == "ratio" and not self.total:
            raise ValueError(f"detector {self.name!r}: ratio mode "
                             "needs a total counter")
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError(f"detector {self.name!r}: alpha must be "
                             "in (0, 1]")
        if self.z_threshold <= 0 or self.shift_threshold <= 0:
            raise ValueError(f"detector {self.name!r}: thresholds "
                             "must be positive")
        if self.history < 8:
            raise ValueError(f"detector {self.name!r}: history must "
                             "be >= 8 (level shift halves it)")
        if self.warmup < 1:
            raise ValueError(f"detector {self.name!r}: warmup must "
                             "be >= 1")


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _robust_scale(values: Sequence[float], centre: float) -> float:
    """1.4826 * MAD, floored relative to the centre (see module
    docstring): the unit spikes and shifts are measured in."""
    mad = _median([abs(v - centre) for v in values])
    return max(1.4826 * mad, SCALE_FLOOR * abs(centre), 1e-12)


class StreamingDetector:
    """Follows one :class:`DetectorSpec` series through cumulative
    telemetry snapshots (see module docstring for the algebra)."""

    def __init__(self, spec: DetectorSpec) -> None:
        self.spec = spec
        #: Cumulative (at, numerator, denominator) ring.
        self._samples: List[Tuple[float, float, float]] = []
        #: Windowed values, oldest first, bounded by ``spec.history``.
        self._values: List[float] = []
        self.ewma: Optional[float] = None
        self._points: List[Dict] = []
        self._last: Optional[Dict] = None

    # ---- reading the registry ---------------------------------------

    def _cumulative(self, telemetry: Telemetry
                    ) -> Tuple[float, float]:
        spec = self.spec
        if spec.mode == "mean":
            histogram = telemetry.find_histogram(spec.instrument)
            if histogram is None:
                return 0.0, 0.0
            return float(histogram.total), float(histogram.count)
        numerator = telemetry.find_counter(spec.instrument)
        num = numerator.value if numerator is not None else 0.0
        if spec.mode == "rate":
            return num, -1.0        # denominator is the at axis
        total = telemetry.find_counter(spec.total)
        return num, total.value if total is not None else 0.0

    # ---- the streaming step -----------------------------------------

    def observe(self, telemetry: Telemetry, at: float
                ) -> Optional[Dict]:
        """Ingest one cumulative snapshot at logical time ``at``;
        returns the flagged point dict, or ``None`` when the step is
        unremarkable (the common case)."""
        at = float(at)
        spec = self.spec
        if self._samples and at <= self._samples[-1][0]:
            raise ValueError(
                f"observation at {at} is not after the previous "
                f"sample at {self._samples[-1][0]} (detector "
                f"{spec.name!r})")
        num, den = self._cumulative(telemetry)
        previous = self._samples[-1] if self._samples else None
        self._samples.append((at, num, den))
        del self._samples[:-2]          # only step deltas are needed

        if spec.mode == "rate":
            prev_at, prev_num = (previous[0], previous[1]) \
                if previous else (0.0, 0.0)
            span = at - prev_at
            value = (num - prev_num) / span if span > 0 else 0.0
        else:
            prev_num, prev_den = (previous[1], previous[2]) \
                if previous else (0.0, 0.0)
            delta_den = den - prev_den
            if delta_den <= 0:          # idle step: series holds
                value = self._values[-1] if self._values else 0.0
            else:
                value = (num - prev_num) / delta_den

        # baseline excludes this step: statistics read self._values
        # *before* the append below
        window = self._values
        self.ewma = value if self.ewma is None else \
            spec.alpha * value + (1.0 - spec.alpha) * self.ewma

        # The robust scale is floored at SCALE_FLOOR * |centre|, so
        # |value - centre| / floor upper-bounds |z| (and the window
        # spread / floor upper-bounds |shift|).  When the bound sits
        # below the threshold, no flag is possible and the exact
        # median-of-deviations pass is skipped -- flag decisions are
        # bit-identical, quiet-step z/shift readouts carry the (still
        # deterministic, sub-threshold) floored bound.  This keeps the
        # every-batch serving cadence within the bench overhead gate.
        kinds: List[str] = []
        z = 0.0
        shift = 0.0
        if len(window) >= spec.warmup:
            centre = _median(window)
            gap = value - centre
            floor = max(SCALE_FLOOR * abs(centre), 1e-12)
            if abs(gap) / floor >= spec.z_threshold:
                scale = _robust_scale(window, centre)
                z = min(max(gap / scale, -Z_CLAMP), Z_CLAMP)
                if abs(z) >= spec.z_threshold:
                    kinds.append("spike")
            else:
                z = gap / floor
        if len(window) + 1 >= 8:
            lo = min(min(window), value)
            hi = max(max(window), value)
            full = window + [value]
            centre_full = _median(full)
            floor = max(SCALE_FLOOR * abs(centre_full), 1e-12)
            if (hi - lo) / floor >= spec.shift_threshold:
                half = len(full) // 2
                older_med = _median(full[:half])
                newer_med = _median(full[half:])
                scale = _robust_scale(full, centre_full)
                shift = min(max((newer_med - older_med) / scale,
                                -Z_CLAMP), Z_CLAMP)
                if abs(shift) >= spec.shift_threshold:
                    kinds.append("level_shift")
        window.append(value)
        del window[:-spec.history]

        point = {
            "detector": spec.name,
            "instrument": spec.instrument,
            "mode": spec.mode,
            "at": round(at, 9),
            "value": round(value, 9),
            "ewma": round(self.ewma, 9),
            "z": round(z, 9),
            "shift": round(shift, 9),
            "kinds": tuple(kinds),
        }
        self._last = point
        if kinds:
            self._points.append(point)
            del self._points[:-POINT_LIMIT]
            return point
        return None

    # ---- readouts ----------------------------------------------------

    @property
    def points(self) -> List[Dict]:
        """Flagged points, oldest first (bounded)."""
        return list(self._points)

    @property
    def last(self) -> Optional[Dict]:
        """The most recent point (flagged or not), for dashboards."""
        return self._last


class AnomalyMonitor:
    """A detector set fed as one unit -- the anomaly-side counterpart
    of :class:`~repro.obs.slo.SloEvaluator`, with the same
    ``observe(telemetry, at)`` streaming contract."""

    def __init__(self, detectors: Optional[Sequence[DetectorSpec]]
                 = None) -> None:
        specs = tuple(detectors) if detectors is not None \
            else default_detectors()
        seen = set()
        for spec in specs:
            if spec.name in seen:
                raise ValueError(f"duplicate detector name "
                                 f"{spec.name!r}")
            seen.add(spec.name)
        self.detectors: Tuple[StreamingDetector, ...] = \
            tuple(StreamingDetector(spec) for spec in specs)

    def observe(self, telemetry: Telemetry, at: float) -> List[Dict]:
        """One streaming step for every detector; returns the points
        flagged *this* step (usually empty)."""
        flagged = []
        for detector in self.detectors:
            point = detector.observe(telemetry, at)
            if point is not None:
                flagged.append(point)
        return flagged

    def anomalies(self) -> List[Dict]:
        """Every flagged point so far, ordered by (at, detector)."""
        points: List[Dict] = []
        for detector in self.detectors:
            points.extend(detector.points)
        points.sort(key=lambda p: (p["at"], p["detector"]))
        return points

    def statuses(self) -> List[Dict]:
        """The latest point per detector (flagged or not), in
        detector order -- the dashboard readout."""
        return [detector.last for detector in self.detectors
                if detector.last is not None]


def default_detectors() -> Tuple[DetectorSpec, ...]:
    """The stock detector set over the serving stack's *deterministic*
    instruments -- simulated latencies, decision counters -- never the
    wall-clock ones (``decision_latency_ms`` et al.), so fleet-replay
    anomaly series are reproducible and shard-count-invariant."""
    return (
        DetectorSpec(
            name="slice-latency-mean", instrument="slice_latency_ms",
            mode="mean"),
        DetectorSpec(
            name="fallback-rate", instrument="fallbacks",
            total="decisions", mode="ratio"),
        DetectorSpec(
            name="sla-violation-rate", instrument="sla_violations",
            total="sla_episodes", mode="ratio"),
        DetectorSpec(
            name="slot-cost-mean", instrument="slice_cost_total",
            total="slice_slots", mode="ratio"),
    )
