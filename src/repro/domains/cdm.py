"""Core domain manager (CDM).

Fronts the CUPS EPC: slice lifecycle creates/deletes per-slice SPGW-U
pools, users attach via the IMSI-keyed HSS with round-robin SPGW-U
selection, and the user-plane CPU/RAM of a slice is applied across its
pool with ``docker update`` semantics.  The workstation CPU it shares
with the edge is coordinated by the EDM, so the CDM owns no constrained
resource kind itself; it reports its configured shares for accounting.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.domains.base import DomainManager
from repro.sim.core_network import CoreNetwork, CoreReport, Session


class CoreDomainManager(DomainManager):
    """Manages SPGW-U pools and user attachment for slices."""

    resource_kinds = ()

    def __init__(self, core: CoreNetwork) -> None:
        super().__init__("cdm")
        self.core = core
        self._cpu_shares: Dict[str, float] = {}
        self.route("POST", "/slices/{name}", self._create_slice)
        self.route("DELETE", "/slices/{name}", self._delete_slice)
        self.route("PUT", "/slices/{name}/resources", self._configure)
        self.route("POST", "/subscribers/{imsi}/attach", self._attach)
        self.route("GET", "/slices/{name}/sessions", self._sessions)

    def _create_slice(self, params, body):
        pool = self.create_slice(params["name"],
                                 int(body.get("num_instances", 0)) or None)
        return {"slice": params["name"], "pool": pool}

    def _delete_slice(self, params, _body):
        self.delete_slice(params["name"])
        return {"slice": params["name"], "deleted": True}

    def _configure(self, params, body):
        self.configure_slice(params["name"],
                             cpu_share=float(body["cpu_share"]),
                             ram_gb=float(body.get("ram_gb", 0.0)))
        return {"slice": params["name"], "configured": True}

    def _attach(self, params, _body):
        session = self.attach(params["imsi"])
        return {"imsi": session.imsi, "slice": session.slice_name,
                "spgwu": session.sgwu_name}

    def _sessions(self, params, _body):
        sessions = self.core.sessions_of(params["name"])
        return {"sessions": [s.imsi for s in sessions]}

    def create_slice(self, name: str, num_instances=None) -> List[str]:
        self._cpu_shares[name] = 0.0
        return self.core.create_slice_pool(name, num_instances)

    def delete_slice(self, name: str) -> None:
        self.core.delete_slice_pool(name)
        self._cpu_shares.pop(name, None)

    def configure_slice(self, name: str, cpu_share: float,
                        ram_gb: float = 0.0) -> None:
        cpu_share = float(np.clip(cpu_share, 0.0, 1.0))
        self.core.set_slice_resources(name, cpu_share, max(ram_gb, 0.0))
        self._cpu_shares[name] = cpu_share

    def attach(self, imsi: str) -> Session:
        return self.core.attach(imsi)

    def requested_share(self, slice_name: str, kind: str) -> float:
        raise KeyError("CDM owns no constrained resource kinds; the "
                       "co-located workstation CPU/RAM are coordinated "
                       "by the EDM")

    def evaluate(self, name: str, offered_bps: float) -> CoreReport:
        return self.core.evaluate(name, offered_bps)
