"""Parameter coordinator: the dual side of distributed coordination.

Paper Eq. 14: each domain manager updates its coordinating parameters by
sub-gradient descent on the over-request,

    beta_k <- [beta_k + eps * (sum_i a_hat_i_k - L_k_max)]^+

so beta grows while a resource is over-requested and decays back to zero
once the slices fit.  "To accelerate the convergence of the
interactions, we use the coordinating parameters at the last time slot
as the start point at the current time slot" -- the warm start is
:meth:`ParameterCoordinator.begin_slot`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

import numpy as np


class ParameterCoordinator:
    """Tracks ``beta_k`` for the resource kinds of one domain manager."""

    def __init__(self, resource_kinds: Iterable[str],
                 step_size: float = 0.5, capacity: float = 1.0,
                 warm_start: bool = True) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.resource_kinds = tuple(resource_kinds)
        if not self.resource_kinds:
            raise ValueError("coordinator needs at least one resource")
        self.step_size = step_size
        self.capacity = capacity
        self.warm_start = warm_start
        self._beta: Dict[str, float] = {
            kind: 0.0 for kind in self.resource_kinds}
        self._carry: Dict[str, float] = dict(self._beta)

    @property
    def beta(self) -> Dict[str, float]:
        """Current coordinating parameters (copy)."""
        return dict(self._beta)

    def begin_slot(self) -> Dict[str, float]:
        """Initialise beta for a new slot (warm start or zeros)."""
        if self.warm_start:
            self._beta = dict(self._carry)
        else:
            self._beta = {kind: 0.0 for kind in self.resource_kinds}
        return self.beta

    def update(self, requested_totals: Mapping[str, float]
               ) -> Dict[str, float]:
        """One sub-gradient step from the total requested shares.

        ``requested_totals[kind]`` is ``sum_i a_hat_i_k``; the capacity
        ``L_k_max`` is normalised to ``self.capacity`` (1.0 by default).
        """
        for kind in self.resource_kinds:
            total = float(requested_totals.get(kind, 0.0))
            residual = total - self.capacity
            self._beta[kind] = max(
                self._beta[kind] + self.step_size * residual, 0.0)
        self._carry = dict(self._beta)
        return self.beta

    def satisfied(self, requested_totals: Mapping[str, float],
                  tolerance: float = 1e-3) -> bool:
        """True when no owned resource is over-requested."""
        return all(
            float(requested_totals.get(kind, 0.0))
            <= self.capacity + tolerance
            for kind in self.resource_kinds)

    def reset(self) -> None:
        self._beta = {kind: 0.0 for kind in self.resource_kinds}
        self._carry = dict(self._beta)
