"""Domain-manager base: REST-style interface + resource accounting.

The paper: "We create a unified interface based on the REST API to
facilitate the interactions between OnSlicing agents and domain
managers" (Sec. 6).  :class:`Request`/:class:`Response` model that
interface without an HTTP server (the agents are in-process); managers
register route handlers exactly like a small REST framework, so the
orchestration code reads like real controller traffic.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


class ResourceConstraintError(RuntimeError):
    """Raised when a configuration would exceed infrastructure capacity."""


@dataclass(frozen=True)
class Request:
    """A REST-style request toward a domain manager."""

    method: str                 # "GET" | "POST" | "PUT" | "DELETE"
    path: str                   # e.g. "/slices/MAR/resources"
    body: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """Result of dispatching a :class:`Request`."""

    status: int
    body: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


Handler = Callable[[Dict[str, str], Dict[str, Any]], Dict[str, Any]]


class DomainManager(abc.ABC):
    """Base class with route registration and dispatch.

    Subclasses call :meth:`route` in ``__init__`` and implement the
    domain logic in plain methods; :meth:`handle` dispatches REST
    requests onto them.  Each manager also declares which constrained
    resource kinds it owns (:attr:`resource_kinds`) so parameter
    coordination knows where each ``beta_k`` lives.
    """

    #: Resource kinds (keys of sim.network.CONSTRAINED_RESOURCES) this
    #: domain is responsible for.
    resource_kinds: Tuple[str, ...] = ()

    def __init__(self, name: str) -> None:
        self.name = name
        self._routes: List[Tuple[str, re.Pattern, Handler]] = []

    def route(self, method: str, pattern: str, handler: Handler) -> None:
        """Register a handler; ``{param}`` segments capture path params."""
        regex = re.compile(
            "^" + re.sub(r"\{(\w+)\}", r"(?P<\1>[^/]+)", pattern) + "$")
        self._routes.append((method.upper(), regex, handler))

    def handle(self, request: Request) -> Response:
        """Dispatch a request to the first matching route."""
        for method, regex, handler in self._routes:
            if method != request.method.upper():
                continue
            match = regex.match(request.path)
            if match is None:
                continue
            try:
                body = handler(match.groupdict(), dict(request.body))
            except (KeyError, ValueError) as exc:
                return Response(status=400, body={"error": str(exc)})
            except ResourceConstraintError as exc:
                return Response(status=409, body={"error": str(exc)})
            return Response(status=200, body=body)
        return Response(status=404,
                        body={"error": f"no route for {request.method} "
                                       f"{request.path}"})

    @abc.abstractmethod
    def requested_share(self, slice_name: str, kind: str) -> float:
        """Currently-configured share of a constrained resource kind."""

    def total_requested(self, kind: str,
                        slice_names: List[str]) -> float:
        return sum(self.requested_share(name, kind)
                   for name in slice_names)
