"""Edge domain manager (EDM).

Manages edge-server containers through Docker runtime interfaces
(``docker update`` of CPU and RAM).  Because the paper co-locates each
slice's edge server with its SPGW-U containers on the workstation, the
EDM owns the shared ``cpu`` and ``ram`` constrained resource kinds.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.domains.base import DomainManager, ResourceConstraintError
from repro.domains.coordinator import ParameterCoordinator
from repro.sim.edge import EdgeReport, EdgeServerPool


class EdgeDomainManager(DomainManager):
    """Manages per-slice edge compute and the workstation capacity."""

    resource_kinds = ("cpu", "ram")

    def __init__(self, pool: EdgeServerPool,
                 coordinator_step: float = 0.5) -> None:
        super().__init__("edm")
        self.pool = pool
        self._cpu: Dict[str, float] = {}
        self._ram: Dict[str, float] = {}
        self.coordinator = ParameterCoordinator(
            self.resource_kinds, step_size=coordinator_step)
        self.route("POST", "/slices/{name}", self._create)
        self.route("DELETE", "/slices/{name}", self._delete)
        self.route("PUT", "/slices/{name}/resources", self._configure)
        self.route("GET", "/slices/{name}", self._get)

    def _create(self, params, _body):
        self.create_slice(params["name"])
        return {"slice": params["name"], "created": True}

    def _delete(self, params, _body):
        self.delete_slice(params["name"])
        return {"slice": params["name"], "deleted": True}

    def _configure(self, params, body):
        self.configure_slice(params["name"],
                             cpu_share=float(body["cpu_share"]),
                             ram_share=float(body["ram_share"]))
        return {"slice": params["name"], "configured": True}

    def _get(self, params, _body):
        name = params["name"]
        if name not in self._cpu:
            raise KeyError(f"no edge slice {name!r}")
        return {"cpu_share": self._cpu[name],
                "ram_share": self._ram[name]}

    def create_slice(self, name: str) -> None:
        self.pool.create_server(name)
        self._cpu[name] = 0.0
        self._ram[name] = 0.0

    def delete_slice(self, name: str) -> None:
        self.pool.delete_server(name)
        self._cpu.pop(name, None)
        self._ram.pop(name, None)

    def configure_slice(self, name: str, cpu_share: float,
                        ram_share: float) -> None:
        """Apply CPU/RAM shares, enforcing workstation capacity."""
        if name not in self._cpu:
            raise KeyError(f"no edge slice {name!r}")
        cpu_share = float(np.clip(cpu_share, 0.0, 1.0))
        ram_share = float(np.clip(ram_share, 0.0, 1.0))
        others_cpu = sum(v for n, v in self._cpu.items() if n != name)
        others_ram = sum(v for n, v in self._ram.items() if n != name)
        if others_cpu + cpu_share > 1.0 + 1e-9:
            raise ResourceConstraintError(
                f"CPU over-committed: {others_cpu + cpu_share:.3f} > 1")
        if others_ram + ram_share > 1.0 + 1e-9:
            raise ResourceConstraintError(
                f"RAM over-committed: {others_ram + ram_share:.3f} > 1")
        self.pool.set_resources(name, cpu_share, ram_share)
        self._cpu[name] = cpu_share
        self._ram[name] = ram_share

    def requested_share(self, slice_name: str, kind: str) -> float:
        if kind == "cpu":
            return self._cpu[slice_name]
        if kind == "ram":
            return self._ram[slice_name]
        raise KeyError(f"EDM does not own resource {kind!r}")

    def evaluate(self, name: str, offered_rate_ups: float,
                 compute_units_per_request: float = 1.0) -> EdgeReport:
        return self.pool.evaluate(name, offered_rate_ups,
                                  compute_units_per_request)
