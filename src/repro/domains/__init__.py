"""Domain managers: RDM, TDM, CDM, EDM (paper Sec. 6).

Each manager virtualises one technical domain's infrastructure, exposes
a unified REST-style interface toward the OnSlicing agents, enforces
per-slice isolation, and hosts a :class:`ParameterCoordinator` that
updates the coordinating parameters ``beta_k`` of the distributed
coordination mechanism (paper Eq. 14).
"""

from repro.domains.base import (
    DomainManager,
    Request,
    Response,
    ResourceConstraintError,
)
from repro.domains.coordinator import ParameterCoordinator
from repro.domains.rdm import RadioDomainManager
from repro.domains.tdm import TransportDomainManager
from repro.domains.cdm import CoreDomainManager
from repro.domains.edm import EdgeDomainManager

__all__ = [
    "CoreDomainManager",
    "DomainManager",
    "EdgeDomainManager",
    "ParameterCoordinator",
    "RadioDomainManager",
    "Request",
    "Response",
    "ResourceConstraintError",
    "TransportDomainManager",
]
