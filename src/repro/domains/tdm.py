"""Transport domain manager (TDM).

Creates/modifies/deletes transport slices on the SDN fabric: each slice
gets an OpenFlow-meter rate cap (the ``meters API limits the maximum
data rate of associated flows``) and a reserved path.  Owns the
``transport_bandwidth`` constrained resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.domains.base import DomainManager, ResourceConstraintError
from repro.domains.coordinator import ParameterCoordinator
from repro.sim.transport import TransportFabric, TransportReport


@dataclass
class TransportSliceConfig:
    """Per-slice transport configuration (meter + path)."""

    meter_share: float = 0.0
    path_index: int = 0


class TransportDomainManager(DomainManager):
    """Manages per-slice meters and reserved paths on the fabric."""

    resource_kinds = ("transport_bandwidth",)

    def __init__(self, fabric: TransportFabric,
                 coordinator_step: float = 0.5) -> None:
        super().__init__("tdm")
        self.fabric = fabric
        self._configs: Dict[str, TransportSliceConfig] = {}
        self.coordinator = ParameterCoordinator(
            self.resource_kinds, step_size=coordinator_step)
        self.route("POST", "/slices/{name}", self._create_slice)
        self.route("DELETE", "/slices/{name}", self._delete_slice)
        self.route("PUT", "/slices/{name}/meter", self._configure)
        self.route("GET", "/slices/{name}", self._get_slice)

    def _create_slice(self, params, _body):
        self.create_slice(params["name"])
        return {"slice": params["name"], "created": True}

    def _delete_slice(self, params, _body):
        self.delete_slice(params["name"])
        return {"slice": params["name"], "deleted": True}

    def _configure(self, params, body):
        self.configure_slice(params["name"],
                             meter_share=float(body["meter_share"]),
                             path_index=int(body.get("path_index", 0)))
        return {"slice": params["name"], "configured": True}

    def _get_slice(self, params, _body):
        cfg = self._get_config(params["name"])
        return {"meter_share": cfg.meter_share,
                "path_index": cfg.path_index}

    def create_slice(self, name: str) -> None:
        if name in self._configs:
            raise ValueError(f"slice {name!r} already exists in TDM")
        self._configs[name] = TransportSliceConfig()

    def delete_slice(self, name: str) -> None:
        if name not in self._configs:
            raise KeyError(f"no transport slice {name!r}")
        del self._configs[name]

    def _get_config(self, name: str) -> TransportSliceConfig:
        try:
            return self._configs[name]
        except KeyError as exc:
            raise KeyError(f"no transport slice {name!r}") from exc

    def configure_slice(self, name: str, meter_share: float,
                        path_index: int = 0) -> None:
        """Set a slice's meter cap and reserved path.

        The aggregate of all meters must fit the link capacity (the
        normalised shares sum to at most 1); the path index must exist
        on the fabric.
        """
        cfg = self._get_config(name)
        if not 0 <= path_index < self.fabric.num_paths:
            raise ValueError(f"path index out of range: {path_index}")
        meter_share = float(np.clip(meter_share, 0.0, 1.0))
        others = sum(c.meter_share for n, c in self._configs.items()
                     if n != name)
        if others + meter_share > 1.0 + 1e-9:
            raise ResourceConstraintError(
                f"transport bandwidth over-committed: "
                f"{others + meter_share:.3f} > 1")
        cfg.meter_share = meter_share
        cfg.path_index = path_index

    def requested_share(self, slice_name: str, kind: str) -> float:
        if kind != "transport_bandwidth":
            raise KeyError(f"TDM does not own resource {kind!r}")
        return self._get_config(slice_name).meter_share

    def carry(self, name: str, offered_bps: float) -> TransportReport:
        """Evaluate a slice's traffic over its configured meter/path."""
        cfg = self._get_config(name)
        return self.fabric.evaluate(cfg.path_index, cfg.meter_share,
                                    offered_bps)
