"""Radio domain manager (RDM).

Slices 4G LTE / 5G NR RAN with exclusive PRB/RBG assignment per slice
and the customised CQI-MCS mapping tables of the paper: each slice may
request an MCS offset per direction so the used MCS is the vanilla
CQI-derived MCS minus the offset (robustness vs capacity trade).
The RDM owns the ``uplink_prb`` and ``downlink_prb`` constrained
resources and rejects configurations that over-commit the cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.config import MAX_MCS_OFFSET
from repro.domains.base import DomainManager, ResourceConstraintError
from repro.domains.coordinator import ParameterCoordinator
from repro.sim.channel import ChannelProcess
from repro.sim.ran import RadioCell, Scheduler


@dataclass
class RadioSliceConfig:
    """Per-slice RAN configuration held by the RDM."""

    uplink_share: float = 0.0
    downlink_share: float = 0.0
    uplink_mcs_offset: int = 0
    downlink_mcs_offset: int = 0
    uplink_scheduler: Scheduler = Scheduler.ROUND_ROBIN
    downlink_scheduler: Scheduler = Scheduler.ROUND_ROBIN


class RadioDomainManager(DomainManager):
    """Manages one cell's slice partitions and custom MCS tables."""

    resource_kinds = ("uplink_prb", "downlink_prb")

    def __init__(self, cell: RadioCell,
                 coordinator_step: float = 0.5) -> None:
        super().__init__("rdm")
        self.cell = cell
        self._configs: Dict[str, RadioSliceConfig] = {}
        self.coordinator = ParameterCoordinator(
            self.resource_kinds, step_size=coordinator_step)
        self.route("POST", "/slices/{name}", self._create_slice)
        self.route("DELETE", "/slices/{name}", self._delete_slice)
        self.route("PUT", "/slices/{name}/resources",
                   self._configure_slice)
        self.route("GET", "/slices/{name}", self._get_slice)

    # ---- REST handlers ------------------------------------------------

    def _create_slice(self, params, _body):
        self.create_slice(params["name"])
        return {"slice": params["name"], "created": True}

    def _delete_slice(self, params, _body):
        self.delete_slice(params["name"])
        return {"slice": params["name"], "deleted": True}

    def _configure_slice(self, params, body):
        self.configure_slice(
            params["name"],
            uplink_share=float(body.get("uplink_share", 0.0)),
            downlink_share=float(body.get("downlink_share", 0.0)),
            uplink_mcs_offset=int(body.get("uplink_mcs_offset", 0)),
            downlink_mcs_offset=int(body.get("downlink_mcs_offset", 0)),
            uplink_scheduler=Scheduler(
                int(body.get("uplink_scheduler", 0))),
            downlink_scheduler=Scheduler(
                int(body.get("downlink_scheduler", 0))))
        return {"slice": params["name"], "configured": True}

    def _get_slice(self, params, _body):
        cfg = self._config(params["name"])
        return {
            "uplink_share": cfg.uplink_share,
            "downlink_share": cfg.downlink_share,
            "uplink_mcs_offset": cfg.uplink_mcs_offset,
            "downlink_mcs_offset": cfg.downlink_mcs_offset,
            "uplink_scheduler": cfg.uplink_scheduler.value,
            "downlink_scheduler": cfg.downlink_scheduler.value,
        }

    # ---- domain API --------------------------------------------------

    def create_slice(self, name: str) -> None:
        if name in self._configs:
            raise ValueError(f"slice {name!r} already exists in RDM")
        self._configs[name] = RadioSliceConfig()

    def delete_slice(self, name: str) -> None:
        if name not in self._configs:
            raise KeyError(f"no RAN slice {name!r}")
        del self._configs[name]

    def _config(self, name: str) -> RadioSliceConfig:
        try:
            return self._configs[name]
        except KeyError as exc:
            raise KeyError(f"no RAN slice {name!r}") from exc

    def configure_slice(self, name: str, uplink_share: float,
                        downlink_share: float,
                        uplink_mcs_offset: int = 0,
                        downlink_mcs_offset: int = 0,
                        uplink_scheduler: Scheduler =
                        Scheduler.ROUND_ROBIN,
                        downlink_scheduler: Scheduler =
                        Scheduler.ROUND_ROBIN) -> None:
        """Apply a slice's radio configuration, enforcing capacity.

        Raises :class:`ResourceConstraintError` if the cell would be
        over-committed in either direction -- isolation means exclusive
        PRBs, so shares must sum to at most 1.
        """
        cfg = self._config(name)
        if not 0 <= uplink_mcs_offset <= MAX_MCS_OFFSET:
            raise ValueError("uplink MCS offset out of range")
        if not 0 <= downlink_mcs_offset <= MAX_MCS_OFFSET:
            raise ValueError("downlink MCS offset out of range")
        uplink_share = float(np.clip(uplink_share, 0.0, 1.0))
        downlink_share = float(np.clip(downlink_share, 0.0, 1.0))
        others_ul = sum(c.uplink_share for n, c in self._configs.items()
                        if n != name)
        others_dl = sum(c.downlink_share
                        for n, c in self._configs.items() if n != name)
        if others_ul + uplink_share > 1.0 + 1e-9:
            raise ResourceConstraintError(
                f"uplink PRBs over-committed: "
                f"{others_ul + uplink_share:.3f} > 1")
        if others_dl + downlink_share > 1.0 + 1e-9:
            raise ResourceConstraintError(
                f"downlink PRBs over-committed: "
                f"{others_dl + downlink_share:.3f} > 1")
        cfg.uplink_share = uplink_share
        cfg.downlink_share = downlink_share
        cfg.uplink_mcs_offset = uplink_mcs_offset
        cfg.downlink_mcs_offset = downlink_mcs_offset
        cfg.uplink_scheduler = uplink_scheduler
        cfg.downlink_scheduler = downlink_scheduler

    def requested_share(self, slice_name: str, kind: str) -> float:
        cfg = self._config(slice_name)
        if kind == "uplink_prb":
            return cfg.uplink_share
        if kind == "downlink_prb":
            return cfg.downlink_share
        raise KeyError(f"RDM does not own resource {kind!r}")

    # ---- measurements (Fig. 5 / Fig. 6 support) ------------------------

    def measure_slice_rate(self, name: str, channel: ChannelProcess,
                           uplink: bool) -> float:
        """Achievable rate of a slice at its current configuration."""
        cfg = self._config(name)
        share = cfg.uplink_share if uplink else cfg.downlink_share
        offset = (cfg.uplink_mcs_offset if uplink
                  else cfg.downlink_mcs_offset)
        sched = (cfg.uplink_scheduler if uplink
                 else cfg.downlink_scheduler)
        report = self.cell.slice_capacity(share, offset, sched, channel,
                                          uplink=uplink)
        return report.capacity_bps

    def measure_retransmission(self, mcs_offset: int,
                               uplink: bool) -> float:
        """Retransmission probability at an offset (Fig. 6's iperf runs)."""
        return self.cell.phy.retransmission_probability(
            mcs_offset, uplink)
