"""Declarative fleet campaigns.

A :class:`FleetSpec` scales the serving stack from one cell to N: it
names how many cells to simulate, which registered scenarios they
cycle through, how each cell's population/horizon is shaped, and the
single fleet seed every cell seed derives from.  Like
:class:`~repro.scenarios.spec.ScenarioSpec` it is a frozen,
hashable, tagged-JSON-serialisable dataclass, so fleet experiment
units are content-keyed into the result cache and checkpoints can pin
exactly which campaign produced them.

Cell seeds come from :func:`numpy.random.SeedSequence` spawn keys --
documented-stable hashing, so cell ``i`` of a fleet sees the same
traffic no matter how many shards run the fleet or which shard it
lands on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.config import TrafficConfig
from repro.runtime.serialization import register_dataclass
from repro.scenarios import ROBUSTNESS_MATRIX, ScenarioSpec, population
from repro.scenarios import get as get_scenario


def derive_cell_seed(fleet_seed: int, cell: int) -> int:
    """Deterministic, well-spread per-cell seed from the fleet seed."""
    sequence = np.random.SeedSequence(entropy=fleet_seed,
                                      spawn_key=(cell,))
    return int(sequence.generate_state(1, np.uint32)[0])


@dataclass(frozen=True)
class CellPlan:
    """One cell of a fleet: which scenario it runs, under which seed."""

    cell: int
    scenario: str
    seed: int


@register_dataclass
@dataclass(frozen=True)
class FleetSpec:
    """A named, declarative N-cell serving campaign."""

    name: str
    #: Number of simulated cells (each its own ScenarioSimulator).
    cells: int = 8
    #: Registered scenario names cells cycle through; empty means the
    #: robustness matrix (the paper world plus every stress regime).
    scenarios: Tuple[str, ...] = ()
    #: Re-populate every cell to N slices (``population(N)``);
    #: ``None`` keeps each scenario's own population.
    slices: Optional[int] = None
    #: Episodes served per cell.
    episodes: int = 1
    #: Horizon override (slots per episode); ``None`` keeps each
    #: scenario's own horizon.
    slots: Optional[int] = None
    #: Fleet-level seed; every cell seed derives from it.
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fleet name must be non-empty")
        if self.cells < 1:
            raise ValueError("cells must be >= 1")
        if self.episodes < 1:
            raise ValueError("episodes must be >= 1")
        if self.slices is not None and self.slices < 1:
            raise ValueError("slices must be >= 1")
        if self.slots is not None and self.slots < 2:
            raise ValueError("slots must be >= 2")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")

    def scenario_cycle(self) -> Tuple[str, ...]:
        """The scenario names cells are assigned from, in cycle order."""
        return self.scenarios if self.scenarios else ROBUSTNESS_MATRIX

    def cell_plans(self) -> Tuple[CellPlan, ...]:
        """Every cell's (scenario, seed) assignment, in cell order."""
        cycle = self.scenario_cycle()
        return tuple(
            CellPlan(cell=index, scenario=cycle[index % len(cycle)],
                     seed=derive_cell_seed(self.seed, index))
            for index in range(self.cells))

    def resolve_scenarios(self) -> Dict[str, ScenarioSpec]:
        """Name -> registry spec for every scenario in the cycle.

        Resolved in the coordinator process so shard workers never
        depend on user registrations being replayed under spawn-style
        start methods (mirrors how experiment units carry their spec).
        """
        return {name: get_scenario(name)
                for name in self.scenario_cycle()}

    def cell_scenario(self, base: ScenarioSpec) -> ScenarioSpec:
        """Shape a registry scenario for one cell of this fleet
        (population and horizon overrides applied)."""
        spec = base
        if self.slices is not None:
            spec = dataclasses.replace(spec,
                                       slices=population(self.slices))
        if self.slots is not None:
            traffic = spec.traffic_cfg if spec.traffic_cfg is not None \
                else TrafficConfig()
            spec = dataclasses.replace(
                spec, traffic_cfg=dataclasses.replace(
                    traffic, slots_per_episode=self.slots))
        return spec


register_dataclass(CellPlan)
