"""The fleet coordinator: shard fan-out, streaming merge, checkpoints.

:func:`run_fleet` is the campaign driver.  It pins a snapshot (ref +
content digest) from the :class:`~repro.serve.policy_store
.PolicyStore`, round-robins the spec's cells over ``shards`` worker
processes, and consumes :class:`~repro.fleet.shard.ShardResult`\\ s *as
they complete* -- each one is merged into the rolling aggregate and
appended to the JSONL checkpoint before the next arrives, so the
coordinator holds O(shards) telemetry at any moment and a kill at any
point loses at most the in-flight shards.

Checkpoint files are self-describing JSONL: a header line pins the
spec (content key), the snapshot digest and the shard count; each
subsequent line is one completed shard.  ``resume=True`` replays
completed shards from the file and runs only the missing ones -- and
because every cell's seed derives from the fleet seed, the resumed
campaign's report digest is identical to an uninterrupted run's.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.fleet.report import FleetReport, build_report
from repro.fleet.shard import ShardPlan, ShardResult, run_fleet_shard
from repro.fleet.spec import CellPlan, FleetSpec
from repro.obs.diagnose import make_event_hook, replay_shards, \
    worst_cells
from repro.obs.slo import IncidentTimeline, SloEvaluator, SloSpec
from repro.runtime.cache import content_key
from repro.runtime.serialization import from_jsonable, to_jsonable
from repro.serve.policy_store import PolicyStore
from repro.serve.telemetry import Telemetry

CHECKPOINT_FORMAT = 1

#: Optional progress sink: called with one line per fleet event.
Progress = Optional[Callable[[str], None]]


def plan_shards(spec: FleetSpec, shards: int, store_dir: str,
                snapshot_ref: str, snapshot_digest: str,
                scenarios: Optional[Dict] = None,
                engine: str = "vector") -> List[ShardPlan]:
    """Deal the fleet's cells over ``shards`` worker plans.

    Cells are dealt scenario group by scenario group so every shard
    draws a balanced mix (within one cell per scenario) -- a naive
    ``cells[i::shards]`` stride aliases with the scenario cycle
    whenever ``gcd(shards, len(cycle)) > 1``, handing each shard a
    *disjoint* scenario subset and letting one heavy scenario
    serialise a whole shard.  Cells of one scenario cost roughly the
    same, so the balanced mix balances wall time without measuring
    anything.

    ``scenarios`` overrides registry resolution with already-resolved
    specs (fleet experiment units carry them across process
    boundaries, where user registrations may not exist).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    shards = min(shards, spec.cells)
    if scenarios is None:
        scenarios = spec.resolve_scenarios()
    groups: Dict[str, List[CellPlan]] = {}
    for cell in spec.cell_plans():
        groups.setdefault(cell.scenario, []).append(cell)
    assigned: List[List[CellPlan]] = [[] for _ in range(shards)]
    index = 0
    for name in groups:               # first-appearance cycle order
        for cell in groups[name]:
            assigned[index % shards].append(cell)
            index += 1
    return [
        ShardPlan(shard=shard, spec=spec,
                  cells=tuple(sorted(cells, key=lambda c: c.cell)),
                  scenarios=scenarios, store_dir=store_dir,
                  snapshot_ref=snapshot_ref,
                  snapshot_digest=snapshot_digest,
                  engine=engine)
        for shard, cells in enumerate(assigned)
    ]


class FleetSloBreach(RuntimeError):
    """Raised by :func:`run_fleet` under ``fail_fast=True`` when an
    objective sustains a page-severity burn.  Carries the evaluator so
    the caller (the CLI's exit-code path, tests) can read the open
    incidents and the timeline digest at the moment of abort."""

    def __init__(self, message: str, evaluator: SloEvaluator) -> None:
        super().__init__(message)
        self.evaluator = evaluator


class _SloDriver:
    """Prefix-ordered SLO evaluation over completing shards.

    Shard *completion* order is nondeterministic (``as_completed``
    over a process pool), so results are buffered and the merged
    telemetry is evaluated strictly in shard-index order -- shard k's
    evaluation point is the cumulative merge of shards 0..k at logical
    time ``k + 1``.  That makes the incident timeline (and its digest)
    a pure function of the campaign, bit-identical across runs, shard
    counts permitting, and resume/replay paths.
    """

    def __init__(self, evaluator: SloEvaluator) -> None:
        self.evaluator = evaluator
        self._telemetry = Telemetry()
        self._cells: List = []
        self._events: Dict[str, tuple] = {}
        self._pending: Dict[int, ShardResult] = {}
        self._next = 0
        # Incident records cite the injected-event windows of the
        # scenarios the worst cells ran (the diagnosis layer's event
        # hook); rows are deterministic, so the timeline digest stays
        # a pure function of the campaign.
        if evaluator.attribution_hook is None:
            evaluator.attribution_hook = make_event_hook(self._events)

    def offer(self, result: ShardResult) -> List[Dict]:
        """Buffer one completed shard; evaluate any ready prefix."""
        self._pending[result.shard] = result
        emitted: List[Dict] = []
        while self._next in self._pending:
            shard = self._pending.pop(self._next)
            self._telemetry.merge(shard.telemetry())
            self._cells.extend(shard.cells)
            for name, rows in getattr(shard, "events", {}).items():
                self._events.setdefault(
                    name, tuple(dict(row) for row in rows))
            emitted.extend(self.evaluator.observe(
                self._telemetry, at=float(self._next + 1),
                attribution=worst_cells(self._cells)))
            self._next += 1
        return emitted

    @property
    def paging(self) -> bool:
        return self.evaluator.paging


def evaluate_checkpoint_slo(checkpoint: "str | FleetCheckpoint",
                            slo: SloSpec,
                            timeline: "str | IncidentTimeline | None"
                            = None) -> SloEvaluator:
    """Replay a checkpoint's shards through an SLO evaluator.

    The offline twin of ``run_fleet(..., slo=...)``: shards evaluate
    in shard-index order, so the resulting timeline -- and its digest
    -- is identical to the one the live run wrote.  This is the entry
    point ``repro obs watch --checkpoint`` and the CI smoke replay
    use.  ``timeline`` may be a path (a fresh JSONL timeline is
    written there) or an :class:`IncidentTimeline`; ``None`` keeps
    records in memory.
    """
    if isinstance(checkpoint, str):
        checkpoint = load_checkpoint(checkpoint)
    if isinstance(timeline, str):
        timeline = IncidentTimeline(path=timeline)
    state = replay_shards(checkpoint.results.values(), slo=slo,
                          timeline=timeline)
    return state.evaluator


@dataclass(frozen=True)
class FleetCheckpoint:
    """A parsed checkpoint file: the pinned campaign + shards done."""

    spec: FleetSpec
    spec_key: str
    scenario_key: str
    snapshot_ref: str
    snapshot_digest: str
    shards: int
    results: Dict[int, ShardResult]

    @property
    def complete(self) -> bool:
        return len(self.results) >= self.shards


def load_checkpoint(path: str) -> FleetCheckpoint:
    """Parse a checkpoint JSONL file written by :func:`run_fleet`.

    Tolerant of a truncated final line (the signature of a kill
    mid-append): parsing stops there and the shards read so far stand.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError(f"checkpoint {path!r} is empty")
    header = json.loads(lines[0])
    if (header.get("kind") != "fleet"
            or header.get("format") != CHECKPOINT_FORMAT):
        raise ValueError(f"{path!r} is not a fleet checkpoint "
                         f"(format {CHECKPOINT_FORMAT})")
    results: Dict[int, ShardResult] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            break  # truncated tail: the run was killed mid-append
        if row.get("kind") != "shard":
            continue
        result = from_jsonable(row["result"])
        results[result.shard] = result
    return FleetCheckpoint(
        spec=from_jsonable(header["spec"]),
        spec_key=header["spec_key"],
        scenario_key=header["scenario_key"],
        snapshot_ref=header["snapshot_ref"],
        snapshot_digest=header["snapshot_digest"],
        shards=int(header["shards"]),
        results=results)


def report_from_checkpoint(
        checkpoint: "str | FleetCheckpoint") -> FleetReport:
    """Rebuild a :class:`FleetReport` from a checkpoint alone.

    Accepts a path or an already-parsed :class:`FleetCheckpoint` (so
    callers that inspect the checkpoint first never parse it twice).
    Works on partial checkpoints (the report covers the shards that
    finished).  No live wall clock exists here, so throughput is
    derived from the *summed* shard times -- a serial-equivalent
    figure, not the live parallel one.
    """
    if isinstance(checkpoint, str):
        checkpoint = load_checkpoint(checkpoint)
    results = [checkpoint.results[shard]
               for shard in sorted(checkpoint.results)]
    wall = sum(result.elapsed_s for result in results)
    return build_report(checkpoint.spec, checkpoint.snapshot_ref,
                        checkpoint.snapshot_digest, results,
                        shards=checkpoint.shards, wall_time_s=wall)


def _scenario_key(spec: FleetSpec, scenarios: Dict) -> str:
    """Content key over the *resolved* scenario cycle.

    The spec key alone pins only scenario names; this pins their
    definitions, so a scenario edited between a kill and a resume
    fails loudly instead of yielding a silently mixed-workload report.
    """
    return content_key(tuple(scenarios[name]
                             for name in spec.scenario_cycle()))


def _checkpoint_header(spec: FleetSpec, snapshot_ref: str,
                       snapshot_digest: str, shards: int,
                       scenario_key: str) -> Dict:
    return {"kind": "fleet", "format": CHECKPOINT_FORMAT,
            "spec": to_jsonable(spec), "spec_key": content_key(spec),
            "scenario_key": scenario_key,
            "snapshot_ref": snapshot_ref,
            "snapshot_digest": snapshot_digest, "shards": shards}


def run_fleet(spec: FleetSpec, store_dir: str,
              snapshot_ref: Optional[str] = None,
              shards: int = 1,
              checkpoint_path: Optional[str] = None,
              resume: bool = False,
              progress: Progress = None,
              scenarios: Optional[Dict] = None,
              snapshot=None,
              engine: str = "vector",
              slo: Optional[SloSpec] = None,
              slo_timeline: "str | IncidentTimeline | None" = None,
              fail_fast: bool = False) -> FleetReport:
    """Run a fleet campaign end to end and return its report.

    Parameters
    ----------
    spec:
        The campaign (cells, scenario cycle, per-cell shaping, seed).
    store_dir / snapshot_ref:
        The policy store and snapshot every shard serves from;
        ``None`` pins the newest stored snapshot.  The resolved
        content digest travels with every shard plan, so a snapshot
        swapped mid-campaign fails loudly.
    shards:
        Worker processes (clamped to the cell count).  ``1`` runs
        inline -- the deterministic path tests and cached units use.
    checkpoint_path / resume:
        JSONL checkpoint streaming (see module docstring).
    progress:
        Optional callable receiving one human-readable line per event.
    scenarios:
        Pre-resolved scenario specs by name (see :func:`plan_shards`);
        ``None`` resolves the spec's cycle from the registry.
    snapshot:
        An already-loaded :class:`PolicySnapshot`; callers that
        resolved one (the CLI, execute_unit) pass it back in so the
        coordinator never decodes the same file twice.  It must still
        live in ``store_dir`` under its own ref -- worker shards load
        it from there.
    engine:
        "vector" (default) steps each shard's cells in one lockstep
        :class:`~repro.engine.batch.BatchSimulator`; "scalar" keeps
        the sequential per-cell loop.  Both engines share one kernel
        code path, so reports (and their digests) are identical --
        which is why the choice is deliberately absent from fleet
        experiment-unit cache keys and checkpoint headers.
    slo / slo_timeline / fail_fast:
        With an :class:`SloSpec`, the coordinator streams every
        shard-checkpoint boundary through a :class:`SloEvaluator` --
        in shard-index order regardless of completion order, so the
        incident timeline is deterministic.  ``slo_timeline`` is a
        JSONL path (rewritten fresh each run; on resume the replayed
        shards are re-evaluated first, so a resumed timeline equals an
        uninterrupted one's -- same convention as the checkpoint
        rewrite) or a live :class:`IncidentTimeline`.  ``fail_fast``
        aborts with :class:`FleetSloBreach` the moment any objective
        sustains a page-severity burn.  Reports and their digests are
        untouched either way: evaluation only *reads* the merged
        telemetry.
    """
    if spec.cells < shards:
        shards = spec.cells
    if snapshot is None:
        store = PolicyStore(store_dir)
        if snapshot_ref is not None:
            snapshot = store.load(snapshot_ref)
        else:
            latest = store.latest()
            if latest is None:
                raise ValueError(
                    f"policy store {store_dir!r} is empty; train one "
                    "with 'python -m repro train --save'")
            snapshot = store.load(latest.ref)
    if scenarios is None:
        scenarios = spec.resolve_scenarios()
    scenario_key = _scenario_key(spec, scenarios)
    done: Dict[int, ShardResult] = {}
    if (checkpoint_path and not resume
            and os.path.exists(checkpoint_path)):
        # Refuse to clobber resumable progress: an existing checkpoint
        # of this *exact* campaign (same spec, scenario definitions
        # and snapshot) holding shard records was almost certainly
        # meant to be resumed, and overwriting it reruns every
        # completed shard.  Mismatched or unparseable files (a
        # different campaign, junk) overwrite as before.
        try:
            existing = load_checkpoint(checkpoint_path)
        except (OSError, ValueError):
            existing = None
        if (existing is not None and existing.results
                and existing.spec_key == content_key(spec)
                and existing.scenario_key == scenario_key
                and existing.snapshot_digest == snapshot.digest):
            raise ValueError(
                f"checkpoint {checkpoint_path!r} already holds "
                f"{len(existing.results)}/{existing.shards} completed "
                "shard(s) of this exact campaign; pass --resume to "
                "continue it, or delete the file to restart")
    if checkpoint_path and resume and os.path.exists(checkpoint_path):
        checkpoint = load_checkpoint(checkpoint_path)
        spec_key = content_key(spec)
        if checkpoint.spec_key != spec_key:
            raise ValueError(
                f"checkpoint {checkpoint_path!r} was written for a "
                f"different fleet spec (key {checkpoint.spec_key[:12]} "
                f"!= {spec_key[:12]})")
        if checkpoint.scenario_key != scenario_key:
            raise ValueError(
                f"checkpoint {checkpoint_path!r} pins different "
                "scenario *definitions* -- a scenario in the cycle "
                "was edited since the run was checkpointed; rerun "
                "without --resume")
        if checkpoint.snapshot_digest != snapshot.digest:
            raise ValueError(
                f"checkpoint {checkpoint_path!r} pins snapshot digest "
                f"{checkpoint.snapshot_digest[:12]}, but "
                f"{snapshot.ref} has {snapshot.digest[:12]}")
        if checkpoint.shards != min(shards, spec.cells):
            raise ValueError(
                f"checkpoint {checkpoint_path!r} was sharded "
                f"{checkpoint.shards}-way; resume with --shards "
                f"{checkpoint.shards}")
        done = dict(checkpoint.results)
        if progress:
            progress(f"resuming: {len(done)}/{checkpoint.shards} "
                     "shard(s) already checkpointed")
    plans = plan_shards(spec, shards, store_dir, snapshot.ref,
                        snapshot.digest, scenarios=scenarios,
                        engine=engine)
    shards = len(plans)
    pending = [plan for plan in plans if plan.shard not in done]

    driver = None
    owns_timeline = slo is not None and isinstance(slo_timeline, str)
    if slo is not None:
        timeline = IncidentTimeline(path=slo_timeline) \
            if owns_timeline else slo_timeline
        driver = _SloDriver(SloEvaluator(slo, timeline=timeline))

    def check_breach() -> None:
        if fail_fast and driver is not None and driver.paging:
            timeline = driver.evaluator.timeline
            paged = sorted(
                name for name, record
                in timeline.open_incidents().items()
                if record["severity"] == "page")
            raise FleetSloBreach(
                "fleet slo breach: sustained page-severity burn on "
                + ", ".join(paged), driver.evaluator)

    if driver is not None:
        # Replayed shards evaluate first, in shard order: a resumed
        # run's timeline is identical to an uninterrupted one's (the
        # timeline, like the checkpoint, is rewritten fresh).
        for shard_id in sorted(done):
            driver.offer(done[shard_id])
        check_breach()
    fh = None
    if checkpoint_path:
        directory = os.path.dirname(os.path.abspath(checkpoint_path))
        os.makedirs(directory, exist_ok=True)
        # (Re)write header + known shards, then append from there.  On
        # resume this also repairs the torn trailing line a mid-append
        # kill leaves behind -- appending after it would corrupt the
        # next record.
        tmp = f"{checkpoint_path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as out:
            out.write(json.dumps(_checkpoint_header(
                spec, snapshot.ref, snapshot.digest, shards,
                scenario_key)) + "\n")
            for shard_id in sorted(done):
                out.write(json.dumps(
                    {"kind": "shard", "shard": shard_id,
                     "result": to_jsonable(done[shard_id])}) + "\n")
        os.replace(tmp, checkpoint_path)
        fh = open(checkpoint_path, "a", encoding="utf-8")

    def record(result: ShardResult) -> None:
        done[result.shard] = result
        if fh is not None:
            fh.write(json.dumps({"kind": "shard",
                                 "shard": result.shard,
                                 "result": to_jsonable(result)})
                     + "\n")
            fh.flush()
        if progress:
            progress(f"shard {result.shard}: {len(result.cells)} "
                     f"cell(s), {result.decisions} decisions in "
                     f"{result.elapsed_s:.2f}s "
                     f"[{len(done)}/{shards} done]")
        if driver is not None:
            for event in driver.offer(result):
                if progress:
                    progress(
                        f"slo {event['event']}: {event['objective']} "
                        f"[{event['severity']}] burn "
                        f"{event['burn_fast']:.1f}x/"
                        f"{event['burn_slow']:.1f}x "
                        f"at checkpoint {event['at']:g}")
            check_breach()

    # Replayed shards contribute their *recorded* time, so a resumed
    # run's throughput is not inflated by decisions it never re-made
    # (same serial-equivalent convention as report_from_checkpoint).
    replayed_s = sum(result.elapsed_s for result in done.values())
    start = time.perf_counter()
    try:
        if len(pending) <= 1 or shards == 1:
            for plan in pending:
                record(run_fleet_shard(plan, snapshot=snapshot))
        else:
            with ProcessPoolExecutor(max_workers=len(pending)) as pool:
                futures = [pool.submit(run_fleet_shard, plan)
                           for plan in pending]
                try:
                    for future in as_completed(futures):
                        record(future.result())
                except FleetSloBreach:
                    for future in futures:
                        future.cancel()
                    raise
    finally:
        if fh is not None:
            fh.close()
        if owns_timeline and driver is not None:
            driver.evaluator.timeline.close()
    wall = time.perf_counter() - start + replayed_s
    results = [done[shard] for shard in sorted(done)]
    return build_report(spec, snapshot.ref, snapshot.digest, results,
                        shards=shards, wall_time_s=wall)
