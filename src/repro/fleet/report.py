"""Fleet-level aggregation: scenario SLA table, outliers, digest.

:func:`build_report` folds per-shard results (already merged per
shard) into one :class:`FleetReport`: fleet-wide p50/p99 decision
latency from the merged bounded histograms, a per-scenario SLA table,
and the per-cell outliers an operator would page on.  The report's
``digest`` covers only the *deterministic* outcome -- the fleet spec,
the snapshot digest, and every cell's decision digest and SLA
accounting -- never wall-clock timings, so an interrupted-then-resumed
campaign reproduces the digest of an uninterrupted one bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.fleet.shard import CellStats, ShardResult
from repro.fleet.spec import FleetSpec
from repro.runtime.cache import content_key
from repro.runtime.serialization import register_dataclass
from repro.serve.service import DECISION_STAGES
from repro.serve.telemetry import Telemetry

#: Cells reported as outliers (largest SLA deviation first).
OUTLIER_LIMIT = 5


@register_dataclass
@dataclass(frozen=True)
class ScenarioRow:
    """Aggregate SLA health of every cell running one scenario."""

    scenario: str
    cells: int
    decisions: int
    violation_rate: float           # mean over the scenario's cells
    mean_usage: float
    fallback_rate: float


@register_dataclass
@dataclass(frozen=True)
class StageRow:
    """Fleet-wide latency of one decision-path stage.

    Built from the merged ``stage_<name>_ms`` histograms every
    :class:`~repro.serve.service.SlicingService` records per decide
    call, so the breakdown survives shard fan-in exactly like the
    decision-latency histogram does.  ``share`` is the stage's
    fraction of the summed stage time -- where a fleet's decision
    latency actually goes.
    """

    stage: str
    count: int
    mean_ms: float
    p50_ms: float
    p99_ms: float
    total_ms: float
    share: float


@register_dataclass
@dataclass(frozen=True)
class CellOutlier:
    """One cell whose SLA health deviates most from its scenario."""

    cell: int
    scenario: str
    violation_rate: float
    deviation: float                # |cell rate - scenario mean|
    p99_latency_ms: float


@register_dataclass
@dataclass(frozen=True)
class FleetReport:
    """The coordinator's final aggregate over a fleet campaign."""

    spec: FleetSpec
    snapshot_ref: str
    snapshot_digest: str
    shards: int
    cells: int
    decisions: int
    fallbacks: int
    violation_rate: float           # mean over all cells
    mean_usage: float
    p50_latency_ms: float
    p99_latency_ms: float
    wall_time_s: float
    decisions_per_sec: float
    scenarios: Tuple[ScenarioRow, ...]
    outliers: Tuple[CellOutlier, ...]
    #: Content hash of the deterministic outcome (see module doc).
    digest: str
    #: Per-stage decision latency (empty for pre-obs checkpoints).
    stages: Tuple[StageRow, ...] = ()

    def row(self) -> Dict[str, object]:
        """Flat summary for CLI/JSON output."""
        return {
            "fleet": self.spec.name,
            "cells": self.cells,
            "shards": self.shards,
            "decisions": self.decisions,
            "fallbacks": self.fallbacks,
            "violation_rate": self.violation_rate,
            "mean_usage": self.mean_usage,
            "p50_latency_ms": self.p50_latency_ms,
            "p99_latency_ms": self.p99_latency_ms,
            "wall_time_s": self.wall_time_s,
            "decisions_per_sec": self.decisions_per_sec,
            "digest": self.digest,
        }


def fleet_digest(spec: FleetSpec, snapshot_digest: str,
                 cells: List[CellStats]) -> str:
    """Deterministic identity of a campaign's outcome.

    Hashes the spec, the snapshot digest and each cell's deterministic
    fields in cell order -- explicitly *not* latencies or wall time,
    which vary run to run even for identical decisions.
    """
    return content_key({
        "spec": spec,
        "snapshot_digest": snapshot_digest,
        "cells": [(stats.cell, stats.scenario, stats.seed,
                   stats.slices, stats.episodes, stats.decisions,
                   stats.fallbacks, stats.violation_rate,
                   stats.mean_usage, stats.decision_digest)
                  for stats in sorted(cells, key=lambda s: s.cell)],
    })


def build_report(spec: FleetSpec, snapshot_ref: str,
                 snapshot_digest: str, results: List[ShardResult],
                 shards: int, wall_time_s: float) -> FleetReport:
    """Fold shard results into the fleet aggregate.

    Shard results are merged in shard order regardless of completion
    order, and counters/histograms are commutative, so the aggregate
    is independent of scheduling.  Memory is O(shards + cells): live
    histograms exist only per shard (bounded buckets), never per
    decision.
    """
    results = sorted(results, key=lambda r: r.shard)
    telemetry = Telemetry()
    cells: List[CellStats] = []
    for result in results:
        telemetry.merge(result.telemetry())
        cells.extend(result.cells)
    cells.sort(key=lambda stats: stats.cell)
    decisions = sum(stats.decisions for stats in cells)
    fallbacks = sum(stats.fallbacks for stats in cells)
    by_scenario: Dict[str, List[CellStats]] = {}
    for stats in cells:
        by_scenario.setdefault(stats.scenario, []).append(stats)
    scenario_rows = []
    scenario_means: Dict[str, float] = {}
    for name in sorted(by_scenario):
        group = by_scenario[name]
        group_decisions = sum(s.decisions for s in group)
        mean_violation = (sum(s.violation_rate for s in group)
                          / len(group))
        scenario_means[name] = mean_violation
        scenario_rows.append(ScenarioRow(
            scenario=name, cells=len(group),
            decisions=group_decisions,
            violation_rate=mean_violation,
            mean_usage=sum(s.mean_usage for s in group) / len(group),
            fallback_rate=(sum(s.fallbacks for s in group)
                           / group_decisions if group_decisions
                           else 0.0)))
    ranked = sorted(
        cells,
        key=lambda s: (-abs(s.violation_rate
                            - scenario_means[s.scenario]), s.cell))
    outliers = tuple(
        CellOutlier(cell=stats.cell, scenario=stats.scenario,
                    violation_rate=stats.violation_rate,
                    deviation=abs(stats.violation_rate
                                  - scenario_means[stats.scenario]),
                    p99_latency_ms=stats.p99_latency_ms)
        for stats in ranked[:OUTLIER_LIMIT])
    latency = telemetry.histogram("decision_latency_ms")
    stage_rows = _stage_rows(telemetry)
    return FleetReport(
        spec=spec,
        snapshot_ref=snapshot_ref,
        snapshot_digest=snapshot_digest,
        shards=shards,
        cells=len(cells),
        decisions=decisions,
        fallbacks=fallbacks,
        violation_rate=(sum(s.violation_rate for s in cells)
                        / len(cells) if cells else 0.0),
        mean_usage=(sum(s.mean_usage for s in cells) / len(cells)
                    if cells else 0.0),
        p50_latency_ms=latency.percentile(50.0),
        p99_latency_ms=latency.percentile(99.0),
        wall_time_s=wall_time_s,
        decisions_per_sec=(decisions / wall_time_s
                           if wall_time_s > 0 else 0.0),
        scenarios=tuple(scenario_rows),
        outliers=outliers,
        digest=fleet_digest(spec, snapshot_digest, cells),
        stages=stage_rows)


def _stage_rows(telemetry: Telemetry) -> Tuple[StageRow, ...]:
    """Per-stage latency rows from the merged ``stage_*_ms``
    histograms, in decision-pipeline order (then any extra stages
    alphabetically)."""
    histograms = telemetry.histograms()
    names = [name for name in histograms
             if name.startswith("stage_") and name.endswith("_ms")]
    if not names:
        return ()
    order = {stage: i for i, stage in enumerate(DECISION_STAGES)}
    stages = sorted((name[len("stage_"):-len("_ms")] for name in names),
                    key=lambda s: (order.get(s, len(order)), s))
    total = sum(histograms[f"stage_{stage}_ms"].total
                for stage in stages)
    rows = []
    for stage in stages:
        histogram = histograms[f"stage_{stage}_ms"]
        rows.append(StageRow(
            stage=stage,
            count=histogram.count,
            mean_ms=histogram.mean,
            p50_ms=histogram.percentile(50.0),
            p99_ms=histogram.percentile(99.0),
            total_ms=histogram.total,
            share=histogram.total / total if total else 0.0))
    return tuple(rows)


def format_report(report: FleetReport) -> str:
    """Human-readable rendering (the CLI's non-JSON output)."""
    lines = [
        f"== fleet {report.spec.name} ==",
        f"  snapshot          {report.snapshot_ref} "
        f"(digest {report.snapshot_digest[:12]})",
        f"  cells             {report.cells} over {report.shards} "
        "shard(s)",
        f"  decisions         {report.decisions} "
        f"({report.fallbacks} fallbacks)",
        f"  throughput        {report.decisions_per_sec:,.0f} "
        f"decisions/s over {report.wall_time_s:.2f}s",
        f"  decision latency  p50 {report.p50_latency_ms:.3f} ms   "
        f"p99 {report.p99_latency_ms:.3f} ms",
        f"  SLA violation     {100.0 * report.violation_rate:.1f}% "
        "of (episode, slice)",
        f"  mean usage        {100.0 * report.mean_usage:.1f}%",
        f"  report digest     {report.digest[:16]}",
        "  -- per-scenario SLA --",
    ]
    lines.append(f"  {'scenario':<18} {'cells':>5} {'decisions':>10} "
                 f"{'violation':>10} {'usage':>7} {'fallback':>9}")
    for row in report.scenarios:
        lines.append(
            f"  {row.scenario:<18} {row.cells:>5} {row.decisions:>10} "
            f"{100.0 * row.violation_rate:>9.1f}% "
            f"{100.0 * row.mean_usage:>6.1f}% "
            f"{100.0 * row.fallback_rate:>8.1f}%")
    if report.stages:
        lines.append("  -- decision stage latency --")
        lines.append(f"  {'stage':<12} {'count':>10} {'mean ms':>9} "
                     f"{'p50 ms':>9} {'p99 ms':>9} {'share':>6}")
        for stage in report.stages:
            lines.append(
                f"  {stage.stage:<12} {stage.count:>10} "
                f"{stage.mean_ms:>9.4f} {stage.p50_ms:>9.4f} "
                f"{stage.p99_ms:>9.4f} {100.0 * stage.share:>5.1f}%")
    if report.outliers:
        lines.append("  -- cell outliers (|violation - scenario "
                     "mean|) --")
        for outlier in report.outliers:
            lines.append(
                f"  cell {outlier.cell:<4} {outlier.scenario:<18} "
                f"violation {100.0 * outlier.violation_rate:>5.1f}% "
                f"(dev {100.0 * outlier.deviation:>5.1f}%)  "
                f"p99 {outlier.p99_latency_ms:.3f} ms")
    return "\n".join(lines)
