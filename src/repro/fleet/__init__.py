"""Fleet layer: sharded multi-cell campaigns over the serving stack.

The paper evaluates one base station; the ROADMAP's north star is a
system serving millions of users.  This package is the first layer
where that is a code path rather than an extrapolation: a
:class:`FleetSpec` declares N cells -- each an independent
:class:`~repro.sim.env.ScenarioSimulator` running its own registered
scenario under a seed derived from the fleet seed -- sharded across
worker processes that all serve decisions from one digest-pinned
:class:`~repro.serve.policy_store.PolicyStore` snapshot through
per-shard :class:`~repro.serve.service.SlicingService` instances.

* :mod:`repro.fleet.spec` -- :class:`FleetSpec` / :class:`CellPlan`:
  declarative campaigns, tagged-JSON serialisable and content-keyed
  like scenario specs;
* :mod:`repro.fleet.shard` -- :func:`run_fleet_shard`: one worker's
  cells, merged into O(instruments) mergeable telemetry;
* :mod:`repro.fleet.coordinator` -- :func:`run_fleet`: shard fan-out,
  streaming O(shards) aggregation, JSONL checkpoints and resume, and
  deterministic per-checkpoint SLO evaluation (``--slo``);
* :mod:`repro.fleet.report` -- :class:`FleetReport`: fleet p50/p99
  latency, the per-scenario SLA table, per-cell outliers, and a
  deterministic report digest (resume-safe by construction).

CLI: ``python -m repro fleet run --cells 32`` / ``fleet report``;
``fleet_sweep`` runs fleets as cached experiment units.
"""

from repro.fleet.coordinator import (
    FleetCheckpoint,
    FleetSloBreach,
    evaluate_checkpoint_slo,
    load_checkpoint,
    plan_shards,
    report_from_checkpoint,
    run_fleet,
)
from repro.fleet.report import (
    CellOutlier,
    FleetReport,
    ScenarioRow,
    build_report,
    fleet_digest,
    format_report,
)
from repro.fleet.shard import (
    CellStats,
    ShardPlan,
    ShardResult,
    run_fleet_shard,
)
from repro.fleet.spec import CellPlan, FleetSpec, derive_cell_seed

__all__ = [
    "CellOutlier",
    "CellPlan",
    "CellStats",
    "FleetCheckpoint",
    "FleetReport",
    "FleetSloBreach",
    "FleetSpec",
    "ScenarioRow",
    "ShardPlan",
    "ShardResult",
    "build_report",
    "derive_cell_seed",
    "evaluate_checkpoint_slo",
    "fleet_digest",
    "format_report",
    "load_checkpoint",
    "plan_shards",
    "report_from_checkpoint",
    "run_fleet",
    "run_fleet_shard",
]
