"""Shard execution: one worker's slice of a fleet campaign.

A :class:`ShardPlan` is everything one worker process needs to run its
cells without talking to anyone: the fleet spec, its cell assignments,
the *resolved* scenario specs (so worker processes never re-resolve
the registry), and the digest-pinned snapshot reference.  The shard
loads the snapshot from the :class:`~repro.serve.policy_store
.PolicyStore` exactly once, verifies the digest, then drives each cell
through a :class:`~repro.serve.loadgen.LoadGenerator` -- a per-cell
:class:`~repro.serve.service.SlicingService` over the shared snapshot.

Telemetry never leaves the shard raw: per-cell counters and bounded
histograms merge into one shard-level :class:`~repro.serve.telemetry
.Telemetry`, and the :class:`ShardResult` shipped to the coordinator
is O(instruments) + O(cells-in-shard) small, no matter how many
decisions the shard served.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.fleet.spec import CellPlan, FleetSpec
from repro.obs.trace import configure_from_env, flush as trace_flush, \
    trace
from repro.runtime.serialization import register_dataclass
from repro.scenarios import ScenarioSpec
from repro.serve.loadgen import LoadGenerator
from repro.serve.policy_store import PolicySnapshot, PolicyStore
from repro.serve.telemetry import Histogram, Telemetry, parse_key


@register_dataclass
@dataclass(frozen=True)
class CellStats:
    """One cell's deterministic outcome plus its latency readout."""

    cell: int
    scenario: str
    seed: int
    slices: int
    episodes: int
    decisions: int
    fallbacks: int
    violation_rate: float
    mean_usage: float
    service_time_s: float
    p50_latency_ms: float
    p99_latency_ms: float
    #: SHA-256 over every action the cell's service produced, in
    #: order -- the replayable identity of the cell's run.
    decision_digest: str


@register_dataclass
@dataclass(frozen=True)
class ShardResult:
    """One shard's merged telemetry and per-cell rows."""

    shard: int
    cells: Tuple[CellStats, ...]
    #: Merged counter totals across the shard's cells.
    counters: Dict[str, float]
    #: Merged histogram states (:meth:`Histogram.state`) by name.
    histograms: Dict[str, Dict]
    elapsed_s: float
    #: Resolved injected-event timelines by scenario name
    #: (:meth:`~repro.scenarios.ScenarioSpec.event_timeline` rows for
    #: every scenario this shard ran) -- the diagnosis layer's "what
    #: was injected when".  Defaults empty so checkpoints written
    #: before event capture still decode.
    events: Dict[str, Tuple[Dict, ...]] = field(default_factory=dict)

    @property
    def decisions(self) -> int:
        return sum(stats.decisions for stats in self.cells)

    def telemetry(self) -> Telemetry:
        """Rebuild live instruments from the serialised states."""
        telemetry = Telemetry()
        for key in sorted(self.counters):
            name, labels = parse_key(key)
            telemetry.counter(name, labels).inc(self.counters[key])
        for key in sorted(self.histograms):
            telemetry.adopt(Histogram.from_state(self.histograms[key]))
        return telemetry


@dataclass(frozen=True)
class ShardPlan:
    """One worker's self-contained slice of a fleet campaign.

    Travels to worker processes by pickle (never JSON), so it carries
    live :class:`ScenarioSpec` objects keyed by name.
    """

    shard: int
    spec: FleetSpec
    cells: Tuple[CellPlan, ...]
    scenarios: Dict[str, ScenarioSpec]
    store_dir: str
    snapshot_ref: str
    snapshot_digest: str
    #: "vector" (and the "vector-compat" reference tier) step every
    #: cell of the shard in one lockstep
    #: :class:`~repro.engine.batch.BatchSimulator`; "scalar" runs the
    #: classic sequential per-cell loop.  Cell results (decision
    #: digests included) are identical across those three -- they share
    #: one float64 kernel code path -- so the choice never enters
    #: cache keys.  "vector-fast" trades that bit-parity for speed
    #: (float32 + optional numba); never use it for digest-bearing
    #: runs.
    engine: str = "vector"


def _drive_cells_lockstep(generators, episodes: int,
                          engine: str = "vector") -> None:
    """Advance every cell's episodes through one batched engine.

    Each slot serves every active cell's decision batch through its
    own :class:`~repro.serve.service.SlicingService` (per-cell
    fallback state, coordination and digests untouched), then steps
    all cells' simulators in one kernel evaluation.  Cells with
    shorter horizons roll into their next episode independently.
    """
    from repro.engine.batch import BatchSimulator

    batch = BatchSimulator([g.simulator for g in generators],
                           engine=engine)
    active = []
    for index, generator in enumerate(generators):
        generator.begin_run(episodes)
        generator.begin_episode(observations=batch.reset_world(index))
        active.append(index)
    while active:
        actions = [None] * len(generators)
        for cell in active:
            actions[cell] = generators[cell].serve_slot()
        step = batch.step(actions)
        still_active = []
        for i, cell in enumerate(active):
            rows = step.rows_of(cell)
            names = step.names[i]
            generators[cell].record_step(
                {n: float(step.costs[rows][j])
                 for j, n in enumerate(names)},
                {n: float(step.usages[rows][j])
                 for j, n in enumerate(names)},
                {n: step.observations[rows][j]
                 for j, n in enumerate(names)},
                {n: float(step.latencies[rows][j])
                 for j, n in enumerate(names)})
            if step.dones[i] or generators[cell]._stopped:
                # _stopped mirrors LoadGenerator.run's per-slot
                # max_decisions check (the fleet never sets one, but
                # the drive modes must stay interchangeable)
                generators[cell].end_episode()
                if generators[cell].want_more_episodes:
                    generators[cell].begin_episode(
                        observations=batch.reset_world(cell))
                    still_active.append(cell)
            else:
                still_active.append(cell)
        active = still_active


def run_fleet_shard(plan: ShardPlan,
                    snapshot: Optional[PolicySnapshot] = None
                    ) -> ShardResult:
    """Run every cell of ``plan`` to completion (in this process).

    Top-level so :class:`concurrent.futures.ProcessPoolExecutor` can
    run it; the inline (1-shard) path passes the already-loaded
    ``snapshot`` to skip the redundant store read.  Deterministic
    given the plan and snapshot: cell seeds are fixed by the fleet
    spec, so the same cells produce the same decision digests on any
    shard of any run.
    """
    start = time.perf_counter()
    # Worker processes join the trace session here (the coordinator
    # process configured itself before fanning out); each process
    # appends to its own file, merged at report time.
    configure_from_env(label="shard")
    if snapshot is None:
        snapshot = PolicyStore(plan.store_dir).load(plan.snapshot_ref)
    if snapshot.digest != plan.snapshot_digest:
        raise ValueError(
            f"snapshot {plan.snapshot_ref!r} changed since the fleet "
            f"was planned (digest {snapshot.digest[:12]} != "
            f"{plan.snapshot_digest[:12]}); re-plan the fleet")
    from repro.engine.batch import BATCH_ENGINES

    if plan.engine != "scalar" and plan.engine not in BATCH_ENGINES:
        raise ValueError(
            f"unknown engine {plan.engine!r}; expected 'scalar' or "
            f"one of {BATCH_ENGINES}")
    with trace("fleet.shard", shard=plan.shard):
        aggregate = Telemetry()
        generators = []
        telemetries = []
        events: Dict[str, Tuple[Dict, ...]] = {}
        for cell in plan.cells:
            scenario = plan.spec.cell_scenario(
                plan.scenarios[cell.scenario])
            if cell.scenario not in events:
                events[cell.scenario] = scenario.event_timeline()
            telemetry = Telemetry()
            telemetries.append(telemetry)
            generators.append(LoadGenerator(
                snapshot, scenario, seed=cell.seed,
                telemetry=telemetry,
                trace_attrs={"cell": cell.cell,
                             "scenario": cell.scenario}))
        if plan.engine != "scalar" and len(generators) > 1:
            _drive_cells_lockstep(generators, plan.spec.episodes,
                                  engine=plan.engine)
            reports = [generator.finish_run()
                       for generator in generators]
        else:
            reports = [generator.run(episodes=plan.spec.episodes)
                       for generator in generators]
        rows = []
        for cell, telemetry, report in zip(plan.cells, telemetries,
                                           reports):
            aggregate.merge(telemetry)
            aggregate.counter("cells").inc()
            rows.append(CellStats(
                cell=cell.cell, scenario=cell.scenario, seed=cell.seed,
                slices=report.slices, episodes=report.episodes,
                decisions=report.decisions,
                fallbacks=report.fallbacks,
                violation_rate=report.violation_rate,
                mean_usage=report.mean_usage,
                service_time_s=report.service_time_s,
                p50_latency_ms=report.p50_latency_ms,
                p99_latency_ms=report.p99_latency_ms,
                decision_digest=report.decision_digest))
    # shards run in pool workers that may be reused or killed;
    # flushing per shard keeps every trace file complete and
    # delta-consistent regardless
    trace_flush()
    return ShardResult(
        shard=plan.shard,
        cells=tuple(rows),
        counters={name: counter.value for name, counter
                  in aggregate.counters().items()},
        histograms={name: histogram.state() for name, histogram
                    in aggregate.histograms().items()},
        elapsed_s=time.perf_counter() - start,
        events=events)
