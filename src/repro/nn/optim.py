"""First-order optimisers operating on :class:`repro.nn.layers.Parameter`."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.layers import Parameter


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is <= max_norm.

    Returns the pre-clipping norm (useful for diagnostics).
    """
    total = 0.0
    for param in params:
        total += float(np.sum(param.grad ** 2))
    norm = float(np.sqrt(total))
    if max_norm > 0 and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            param.grad *= scale
    return norm


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params: List[Parameter] = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        for param, vel in zip(self.params, self._velocity):
            if self.momentum:
                vel *= self.momentum
                vel += param.grad
                param.value -= self.lr * vel
            else:
                param.value -= self.lr * param.grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(self, params: Sequence[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params: List[Parameter] = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.params, self._m, self._v):
            grad = param.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
