"""Loss functions returning ``(value, grad_wrt_prediction)`` pairs."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def mse_loss(pred: np.ndarray,
             target: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean-squared error; gradient averaged over all elements."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    diff = pred - target
    value = float(np.mean(diff ** 2))
    grad = 2.0 * diff / diff.size
    return value, grad


def huber_loss(pred: np.ndarray, target: np.ndarray,
               delta: float = 1.0) -> Tuple[float, np.ndarray]:
    """Huber loss (quadratic near zero, linear in the tails)."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    diff = pred - target
    abs_diff = np.abs(diff)
    quadratic = abs_diff <= delta
    value = float(np.mean(np.where(
        quadratic, 0.5 * diff ** 2, delta * (abs_diff - 0.5 * delta))))
    grad = np.where(quadratic, diff, delta * np.sign(diff)) / diff.size
    return value, grad


def gaussian_nll(mean: np.ndarray, log_std: np.ndarray,
                 target: np.ndarray) -> Tuple[float, np.ndarray, np.ndarray]:
    """Negative log-likelihood of ``target`` under ``N(mean, exp(log_std)^2)``.

    Returns ``(value, grad_mean, grad_log_std)`` -- the gradients needed
    to train heteroscedastic regression heads and the variational cost
    estimator's likelihood term.
    """
    mean = np.asarray(mean, dtype=np.float64)
    log_std = np.broadcast_to(
        np.asarray(log_std, dtype=np.float64), mean.shape)
    target = np.asarray(target, dtype=np.float64)
    inv_var = np.exp(-2.0 * log_std)
    diff = mean - target
    per_sample = log_std + 0.5 * diff ** 2 * inv_var \
        + 0.5 * np.log(2.0 * np.pi)
    value = float(np.mean(per_sample))
    n = mean.size
    grad_mean = diff * inv_var / n
    grad_log_std = (1.0 - diff ** 2 * inv_var) / n
    return value, grad_mean, grad_log_std
