"""Mean-field variational (Bayes-by-backprop) networks.

The paper's proactive baseline switching (Sec. 3) needs the *posterior
distribution* of the baseline policy's cost-to-go, not just a point
estimate: "if the cost value has a small mean value but a large
deviation, switching to the baseline merely based on the mean value
could be too late".  It trains a probabilistic policy pi_phi with
variational inference by maximising the ELBO (paper Eq. 6-7).

We implement that here from scratch:

* :class:`VariationalDense` -- a dense layer whose weights follow a
  factorised Gaussian posterior ``q(W) = N(mu, softplus(rho)^2)``,
  trained with the *local reparameterisation trick* (sampling the
  pre-activations rather than the weights, which lowers gradient
  variance and keeps the backward pass closed-form).
* :class:`BayesianMLP` -- a stack of variational layers with an
  analytic KL term against a zero-mean Gaussian prior; ``elbo_step``
  maximises ``E_q[log p(D|phi)] - KL(q || p)`` exactly as Eq. 7, and
  ``predict`` returns the posterior predictive mean and deviation by
  Monte-Carlo over weight draws.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.layers import Module, Parameter, make_activation

_SOFTPLUS_INV_1 = float(np.log(np.expm1(1.0)))  # softplus(x) = 1


def _softplus(x: np.ndarray) -> np.ndarray:
    return np.logaddexp(0.0, x)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))


class VariationalDense(Module):
    """Dense layer with a Gaussian weight posterior.

    Forward pass (local reparameterisation)::

        act_mean = x @ mu_W + mu_b
        act_var  = x^2 @ sigma_W^2 + sigma_b^2
        out      = act_mean + sqrt(act_var) * eps,   eps ~ N(0, I)

    ``sigma = softplus(rho)`` keeps deviations positive.  ``backward``
    propagates gradients to ``mu`` and ``rho`` through both the mean and
    the variance paths.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 initial_rho: float = -5.0,
                 name: str = "vdense") -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        scale = 1.0 / np.sqrt(in_features)
        self.weight_mu = Parameter(
            rng.uniform(-scale, scale, size=(in_features, out_features)),
            name=f"{name}.weight_mu")
        self.weight_rho = Parameter(
            np.full((in_features, out_features), initial_rho),
            name=f"{name}.weight_rho")
        self.bias_mu = Parameter(np.zeros(out_features),
                                 name=f"{name}.bias_mu")
        self.bias_rho = Parameter(np.full(out_features, initial_rho),
                                  name=f"{name}.bias_rho")
        self._rng = rng
        self._cache: Optional[dict] = None
        self.sample_noise = True

    def parameters(self) -> List[Parameter]:
        return [self.weight_mu, self.weight_rho, self.bias_mu,
                self.bias_rho]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        sigma_w = _softplus(self.weight_rho.value)
        sigma_b = _softplus(self.bias_rho.value)
        act_mean = x @ self.weight_mu.value + self.bias_mu.value
        act_var = (x ** 2) @ (sigma_w ** 2) + sigma_b ** 2
        act_std = np.sqrt(np.maximum(act_var, 1e-16))
        if self.sample_noise:
            eps = self._rng.standard_normal(act_mean.shape)
        else:
            eps = np.zeros_like(act_mean)
        self._cache = {
            "x": x, "sigma_w": sigma_w, "sigma_b": sigma_b,
            "act_std": act_std, "eps": eps,
        }
        return act_mean + act_std * eps

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        grad_out = np.atleast_2d(grad_out)

        # Mean path: identical to an ordinary dense layer.
        self.weight_mu.grad += x.T @ grad_out
        self.bias_mu.grad += grad_out.sum(axis=0)
        grad_in = grad_out @ self.weight_mu.value.T

        # Variance path: out includes sqrt(act_var) * eps.
        grad_std = grad_out * cache["eps"]            # dL/d act_std
        grad_var = grad_std / (2.0 * cache["act_std"])  # dL/d act_var
        sigma_w = cache["sigma_w"]
        sigma_b = cache["sigma_b"]
        # d act_var / d sigma_w^2 = x^2 (outer product structure)
        grad_sigma_w_sq = (x ** 2).T @ grad_var
        grad_sigma_w = 2.0 * sigma_w * grad_sigma_w_sq
        self.weight_rho.grad += grad_sigma_w * _sigmoid(
            self.weight_rho.value)
        grad_sigma_b = 2.0 * sigma_b * grad_var.sum(axis=0)
        self.bias_rho.grad += grad_sigma_b * _sigmoid(self.bias_rho.value)
        # d act_var / d x = 2 x sigma_w^2
        grad_in += 2.0 * x * (grad_var @ (sigma_w ** 2).T)
        return grad_in

    def kl_divergence(self, prior_std: float = 1.0) -> float:
        """Analytic KL(q(W,b) || N(0, prior_std^2 I))."""
        total = 0.0
        for mu_p, rho_p in ((self.weight_mu, self.weight_rho),
                            (self.bias_mu, self.bias_rho)):
            sigma = _softplus(rho_p.value)
            total += float(np.sum(
                np.log(prior_std / sigma)
                + (sigma ** 2 + mu_p.value ** 2) / (2.0 * prior_std ** 2)
                - 0.5))
        return total

    def accumulate_kl_grad(self, weight: float,
                           prior_std: float = 1.0) -> None:
        """Add ``weight * dKL/dparam`` into the parameter gradients."""
        for mu_p, rho_p in ((self.weight_mu, self.weight_rho),
                            (self.bias_mu, self.bias_rho)):
            sigma = _softplus(rho_p.value)
            mu_p.grad += weight * mu_p.value / prior_std ** 2
            grad_sigma = sigma / prior_std ** 2 - 1.0 / sigma
            rho_p.grad += weight * grad_sigma * _sigmoid(rho_p.value)


class BayesianMLP(Module):
    """Stack of variational dense layers for probabilistic regression.

    Trained by maximising the ELBO of paper Eq. 7: a Gaussian likelihood
    (with a learnable homoscedastic observation noise) minus the KL of
    the weight posterior against the prior.
    """

    def __init__(self, in_features: int, out_features: int = 1,
                 hidden_sizes: Sequence[int] = (64, 32),
                 activation: str = "relu",
                 rng: Optional[np.random.Generator] = None,
                 prior_std: float = 1.0,
                 name: str = "bmlp") -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.prior_std = prior_std
        self.layers: List[Module] = []
        self._vlayers: List[VariationalDense] = []
        sizes = [in_features, *hidden_sizes, out_features]
        for i in range(len(sizes) - 1):
            vdense = VariationalDense(sizes[i], sizes[i + 1], rng=rng,
                                      name=f"{name}.v{i}")
            self.layers.append(vdense)
            self._vlayers.append(vdense)
            if i < len(sizes) - 2:
                self.layers.append(make_activation(activation))
        #: Learnable log observation-noise std (aleatoric term).
        self.log_noise = Parameter(np.array([-1.0]),
                                   name=f"{name}.log_noise")

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        params.append(self.log_noise)
        return params

    def _set_sampling(self, flag: bool) -> None:
        for vlayer in self._vlayers:
            vlayer.sample_noise = flag

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = np.atleast_2d(grad_out)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def kl_divergence(self) -> float:
        return sum(v.kl_divergence(self.prior_std) for v in self._vlayers)

    def elbo_step(self, x: np.ndarray, y: np.ndarray,
                  kl_weight: float = 1e-3) -> Tuple[float, float]:
        """Accumulate gradients of the *negative* ELBO for one batch.

        Returns ``(nll, kl)`` so callers can log both terms.  The caller
        owns ``zero_grad`` and the optimiser step.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.asarray(y, dtype=np.float64).reshape(x.shape[0], -1)
        self._set_sampling(True)
        pred = self.forward(x)
        noise_var = float(np.exp(2.0 * self.log_noise.value[0]))
        diff = pred - y
        n = diff.size
        nll = float(np.mean(
            0.5 * diff ** 2 / noise_var
            + self.log_noise.value[0] + 0.5 * np.log(2.0 * np.pi)))
        grad_pred = diff / (noise_var * n)
        self.backward(grad_pred)
        # d nll / d log_noise = 1 - diff^2 / noise_var (averaged)
        self.log_noise.grad += float(np.mean(1.0 - diff ** 2 / noise_var))
        kl = self.kl_divergence()
        for vlayer in self._vlayers:
            vlayer.accumulate_kl_grad(kl_weight, self.prior_std)
        return nll, kl

    def predict(self, x: np.ndarray, num_samples: int = 16,
                rng: Optional[np.random.Generator] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior-predictive mean and standard deviation.

        Draws ``num_samples`` stochastic forward passes (epistemic
        uncertainty) and folds in the learned observation noise
        (aleatoric).  Accepts single or batched inputs.
        """
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        x2d = np.atleast_2d(x)
        if rng is not None:
            for vlayer in self._vlayers:
                vlayer._rng = rng
        self._set_sampling(True)
        draws = np.stack([self.forward(x2d) for _ in range(num_samples)])
        mean = draws.mean(axis=0)
        epistemic_var = draws.var(axis=0)
        noise_var = float(np.exp(2.0 * self.log_noise.value[0]))
        std = np.sqrt(epistemic_var + noise_var)
        if single:
            return mean[0], std[0]
        return mean, std

    def predict_mean(self, x: np.ndarray) -> np.ndarray:
        """Deterministic forward pass through the posterior means."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        self._set_sampling(False)
        out = self.forward(np.atleast_2d(x))
        self._set_sampling(True)
        return out[0] if single else out
