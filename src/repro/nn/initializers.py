"""Weight initialisers for dense layers."""

from __future__ import annotations

import numpy as np


def he_uniform(rng: np.random.Generator, fan_in: int,
               fan_out: int) -> np.ndarray:
    """He/Kaiming uniform initialisation, suited to ReLU networks."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def xavier_uniform(rng: np.random.Generator, fan_in: int,
                   fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation, suited to sigmoid/tanh."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros_init(_rng: np.random.Generator, fan_in: int,
               fan_out: int) -> np.ndarray:
    """All-zero initialisation (used for final value-head layers)."""
    return np.zeros((fan_in, fan_out))
