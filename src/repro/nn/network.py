"""Multi-layer perceptron container.

The paper (Sec. 6) uses 3-layer fully-connected 128x64x32 networks with
ReLU hidden activations; actor heads finish with Sigmoid so actions fall
in [0, 1].  :class:`MLP` chains :class:`~repro.nn.layers.Dense` layers
with activations and exposes forward/backward plus (de)serialisation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.nn.layers import Dense, Module, Parameter, make_activation


class MLP(Module):
    """Fully-connected network with manual backprop.

    Parameters
    ----------
    in_features / out_features:
        Input and output dimensionality.
    hidden_sizes:
        Width of each hidden layer, e.g. ``(128, 64, 32)``.
    activation:
        Hidden activation name (default ReLU per the paper).
    output_activation:
        Final activation (``sigmoid`` for actors, ``identity`` for
        critics).
    """

    def __init__(self, in_features: int, out_features: int,
                 hidden_sizes: Sequence[int] = (128, 64, 32),
                 activation: str = "relu",
                 output_activation: str = "identity",
                 rng: Optional[np.random.Generator] = None,
                 name: str = "mlp") -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.layers: List[Module] = []
        sizes = [in_features, *hidden_sizes, out_features]
        hidden_init = "he" if activation == "relu" else "xavier"
        for i in range(len(sizes) - 1):
            is_last = i == len(sizes) - 2
            init = "xavier" if is_last else hidden_init
            self.layers.append(Dense(sizes[i], sizes[i + 1], rng=rng,
                                     init=init, name=f"{name}.dense{i}"))
            act_name = output_activation if is_last else activation
            self.layers.append(make_activation(act_name))

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.atleast_2d(np.asarray(x, dtype=np.float64))
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = np.atleast_2d(grad_out)
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Forward pass that preserves 1-D inputs as 1-D outputs."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        out = self.forward(x)
        return out[0] if single else out

    def predict_batch(self, states: Sequence[np.ndarray]) -> np.ndarray:
        """One vectorised forward pass over a batch of state vectors.

        ``states`` is a sequence of 1-D vectors (or an ``(n, in)``
        array); the result is always ``(n, out)``.  This is the serving
        fast path: N decisions cost one stacked matmul chain instead of
        N python-level forward passes.
        """
        batch = np.asarray(states, dtype=np.float64)
        if batch.ndim == 1:
            batch = batch[None, :]
        if batch.ndim != 2 or batch.shape[1] != self.in_features:
            raise ValueError(
                f"expected (n, {self.in_features}) states, "
                f"got {batch.shape}")
        return self.forward(batch)

    # -- persistence ------------------------------------------------

    def get_weights(self) -> List[np.ndarray]:
        return [p.value.copy() for p in self.parameters()]

    def set_weights(self, weights: Iterable[np.ndarray]) -> None:
        params = self.parameters()
        weights = list(weights)
        if len(weights) != len(params):
            raise ValueError(
                f"expected {len(params)} arrays, got {len(weights)}")
        for param, value in zip(params, weights):
            value = np.asarray(value, dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {param.name}: "
                    f"{value.shape} vs {param.value.shape}")
            param.value = value.copy()

    def copy_from(self, other: "MLP") -> None:
        """Copy weights from another identically-shaped network."""
        self.set_weights(other.get_weights())

    def num_parameters(self) -> int:
        return int(sum(p.value.size for p in self.parameters()))
