"""Minimal-but-complete numpy deep-learning substrate.

The paper implements its agents with PyTorch 1.5; PyTorch is not
available offline, so this subpackage provides the pieces the paper's
agents need -- dense layers with manual backpropagation, Adam, Gaussian
policy heads, and mean-field variational (Bayes-by-backprop) layers for
the cost-value estimator pi_phi -- with exact, unit-tested gradients.
"""

from repro.nn.initializers import he_uniform, xavier_uniform, zeros_init
from repro.nn.layers import (
    Dense,
    Identity,
    Parameter,
    ReLU,
    Sigmoid,
    Softplus,
    Tanh,
    make_activation,
)
from repro.nn.network import MLP
from repro.nn.optim import SGD, Adam, clip_grad_norm
from repro.nn.losses import gaussian_nll, huber_loss, mse_loss
from repro.nn.distributions import DiagGaussian
from repro.nn.bayesian import BayesianMLP, VariationalDense

__all__ = [
    "Adam",
    "BayesianMLP",
    "Dense",
    "DiagGaussian",
    "Identity",
    "MLP",
    "Parameter",
    "ReLU",
    "SGD",
    "Sigmoid",
    "Softplus",
    "Tanh",
    "VariationalDense",
    "clip_grad_norm",
    "gaussian_nll",
    "he_uniform",
    "huber_loss",
    "make_activation",
    "mse_loss",
    "xavier_uniform",
    "zeros_init",
]
