"""Diagonal-Gaussian policy head for continuous-action PPO.

The actor MLP outputs the mean (already squashed to [0, 1] by a Sigmoid
per the paper, Sec. 6); the log standard deviation is a free,
state-independent :class:`~repro.nn.layers.Parameter` vector -- the
standard PPO parameterisation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import Parameter

_LOG_2PI = float(np.log(2.0 * np.pi))


class DiagGaussian:
    """Factorised Gaussian over action vectors.

    Parameters
    ----------
    dim:
        Action dimensionality.
    initial_log_std:
        Starting value of every log-std component.
    min_log_std / max_log_std:
        Clamp range applied whenever the parameter is read, keeping a
        minimum exploration floor and numeric safety.
    """

    def __init__(self, dim: int, initial_log_std: float = -1.0,
                 min_log_std: float = -3.5,
                 max_log_std: float = 1.0) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if min_log_std > max_log_std:
            raise ValueError("min_log_std must be <= max_log_std")
        self.dim = dim
        self.min_log_std = min_log_std
        self.max_log_std = max_log_std
        init = float(np.clip(initial_log_std, min_log_std, max_log_std))
        self.log_std = Parameter(np.full(dim, init), name="policy.log_std")

    def parameters(self) -> List[Parameter]:
        return [self.log_std]

    def _clamped_log_std(self) -> np.ndarray:
        return np.clip(self.log_std.value, self.min_log_std,
                       self.max_log_std)

    @property
    def std(self) -> np.ndarray:
        return np.exp(self._clamped_log_std())

    def sample(self, mean: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Draw actions ``a ~ N(mean, std^2)`` clipped to [0, 1]."""
        mean = np.asarray(mean, dtype=np.float64)
        noise = rng.standard_normal(mean.shape)
        return np.clip(mean + noise * self.std, 0.0, 1.0)

    def log_prob(self, mean: np.ndarray,
                 actions: np.ndarray) -> np.ndarray:
        """Log-density of ``actions`` under ``N(mean, std^2)``, summed
        over action dimensions. Works for batched or single inputs."""
        mean = np.asarray(mean, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.float64)
        log_std = self._clamped_log_std()
        z = (actions - mean) / np.exp(log_std)
        per_dim = -0.5 * z ** 2 - log_std - 0.5 * _LOG_2PI
        return per_dim.sum(axis=-1)

    def log_prob_grads(self, mean: np.ndarray, actions: np.ndarray
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Gradients of ``log pi(a|s)`` w.r.t. the mean and the log-std.

        Returns ``(d_logp/d_mean, d_logp/d_log_std)`` with the same
        batch shape as ``mean``.  Used by the PPO learner to chain the
        surrogate-loss gradient through the actor network.
        """
        mean = np.asarray(mean, dtype=np.float64)
        actions = np.asarray(actions, dtype=np.float64)
        log_std = self._clamped_log_std()
        inv_var = np.exp(-2.0 * log_std)
        diff = actions - mean
        grad_mean = diff * inv_var
        grad_log_std = diff ** 2 * inv_var - 1.0
        return grad_mean, grad_log_std

    def entropy(self) -> float:
        """Differential entropy of the Gaussian (state independent)."""
        log_std = self._clamped_log_std()
        return float(np.sum(log_std + 0.5 * (1.0 + _LOG_2PI)))

    def entropy_grad_log_std(self) -> np.ndarray:
        """d entropy / d log_std == 1 for every dimension."""
        return np.ones(self.dim)

    def kl_divergence(self, other_mean: np.ndarray, mean: np.ndarray,
                      other_log_std: Optional[np.ndarray] = None
                      ) -> np.ndarray:
        """KL(new || old) between two diagonal Gaussians sharing shapes.

        Used for the PPO ``target_kl`` early-stopping heuristic.
        """
        log_std = self._clamped_log_std()
        if other_log_std is None:
            other_log_std = log_std
        var = np.exp(2.0 * log_std)
        other_var = np.exp(2.0 * other_log_std)
        mean = np.asarray(mean, dtype=np.float64)
        other_mean = np.asarray(other_mean, dtype=np.float64)
        per_dim = (other_log_std - log_std
                   + (var + (mean - other_mean) ** 2) / (2.0 * other_var)
                   - 0.5)
        return per_dim.sum(axis=-1)
