"""Dense layers and activations with hand-written backpropagation.

Each module implements ``forward(x)`` and ``backward(grad_out)``.
``backward`` consumes the gradient of the loss with respect to the
module output and returns the gradient with respect to the module
input, accumulating parameter gradients into :class:`Parameter.grad`
along the way.  Gradients accumulate until :meth:`zero_grad` -- the same
contract as PyTorch, which keeps the training loops familiar.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.nn.initializers import he_uniform, xavier_uniform


class Parameter:
    """A trainable tensor with an accumulated gradient."""

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "param") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self):
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Parameter({self.name}, shape={self.value.shape})"


class Module:
    """Base class: parameter bookkeeping shared by all layers."""

    def parameters(self) -> List[Parameter]:
        return []

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- weight round-trips ------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Export every parameter as ``{name: value copy}``.

        Parameter names must be unique within the module (they are for
        every network built here -- layers embed their position in the
        name), otherwise a silent key collision would drop weights.
        """
        params = self.parameters()
        out = {p.name: p.value.copy() for p in params}
        if len(out) != len(params):
            names = [p.name for p in params]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate parameter names: {dupes}")
        return out

    def load_state_dict(self, state: Mapping[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_dict`: strict name/shape matching."""
        params = {p.name: p for p in self.parameters()}
        missing = sorted(set(params) - set(state))
        unexpected = sorted(set(state) - set(params))
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing {missing}, "
                f"unexpected {unexpected}")
        for name, value in state.items():
            param = params[name]
            value = np.asarray(value, dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.value.shape}")
            param.value = value.copy()

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Module):
    """Affine layer ``y = x @ W + b`` with cached-input backprop."""

    def __init__(self, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None,
                 init: str = "he", name: str = "dense") -> None:
        if rng is None:
            rng = np.random.default_rng(0)
        if init == "he":
            weight = he_uniform(rng, in_features, out_features)
        elif init == "xavier":
            weight = xavier_uniform(rng, in_features, out_features)
        elif init == "zeros":
            weight = np.zeros((in_features, out_features))
        else:
            raise ValueError(f"unknown init {init!r}")
        self.weight = Parameter(weight, name=f"{name}.weight")
        self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias")
        self.in_features = in_features
        self.out_features = out_features
        self._input: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input dim {self.in_features}, got {x.shape[1]}")
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.atleast_2d(grad_out)
        self.weight.grad += self._input.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.value.T


class _Activation(Module):
    """Base for parameter-free elementwise activations."""

    def __init__(self) -> None:
        self._cache: Optional[np.ndarray] = None


class ReLU(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._cache = x > 0
        return np.where(self._cache, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._cache


class Sigmoid(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = np.empty_like(x)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        self._cache = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        sig = self._cache
        return grad_out * sig * (1.0 - sig)


class Tanh(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.tanh(np.asarray(x, dtype=np.float64))
        self._cache = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._cache ** 2)


class Softplus(_Activation):
    """Numerically stable ``log(1 + exp(x))``."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._cache = x
        return np.logaddexp(0.0, x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        sig = 1.0 / (1.0 + np.exp(-np.clip(self._cache, -500, 500)))
        return grad_out * sig


class Identity(_Activation):
    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


_ACTIVATIONS = {
    "relu": ReLU,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "softplus": Softplus,
    "identity": Identity,
    "linear": Identity,
    "none": Identity,
}


def make_activation(name: str) -> Module:
    """Instantiate an activation module by name."""
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError as exc:
        raise ValueError(f"unknown activation {name!r}") from exc
