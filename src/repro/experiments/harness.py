"""Method builders and phase runners for the evaluation.

The harness assembles each comparison method exactly as Sec. 7.1
describes and exposes three phases:

* ``build_onslicing``   -- offline stage (baseline fit, rollouts, BC,
  pi_phi, surrogate, pi_a), returning a ready orchestrator bundle;
* ``run_online_phase``  -- the online learning phase, recording the
  per-epoch trajectory;
* ``test_performance``  -- deterministic post-convergence evaluation
  (Table 1's "test performances").

Baseline policies go through the shared runtime result cache so the
grid search runs once per process -- and once per *machine* when a
cache directory is configured (see :mod:`repro.runtime.cache`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines.model_based import ModelBasedPolicy
from repro.baselines.onrl import OnRLAgent, OnRLConfig
from repro.baselines.projection import project_actions
from repro.baselines.rule_based import (
    RuleBasedPolicy,
    fit_rule_based_policy,
)
from repro.config import ExperimentConfig, NUM_ACTIONS, SwitchingConfig
from repro.core.agent import OnSlicingAgent
from repro.core.offline import (
    OfflineDataset,
    collect_baseline_rollouts,
    pretrain_agent,
)
from repro.core.orchestrator import DomainManagerSet, OnSlicingOrchestrator
from repro.experiments.metrics import (
    MethodResult,
    TrajectoryPoint,
    online_phase_summary,
    usage_percent,
    violation_percent,
)
from repro.sim.env import STATE_DIM, ScenarioSimulator
from repro.sim.network import EndToEndNetwork


def resolve_scenario(scenario):
    """Normalise a scenario reference to a spec (or ``None``).

    Accepts a registered scenario name, a
    :class:`~repro.scenarios.spec.ScenarioSpec`, or ``None`` (the plain
    paper world described entirely by the config).
    """
    if scenario is None:
        return None
    if isinstance(scenario, str):
        from repro import scenarios

        return scenarios.get(scenario)
    return scenario


def make_simulator(cfg: ExperimentConfig,
                   scenario=None) -> ScenarioSimulator:
    """Build the simulator for ``cfg``, honouring a scenario's traffic
    model and event timeline when one is named."""
    spec = resolve_scenario(scenario)
    if spec is None:
        return ScenarioSimulator(cfg)
    return spec.build_simulator(cfg)


def make_simulators(cfg: ExperimentConfig, scenario=None,
                    count: int = 1) -> List[ScenarioSimulator]:
    """``count`` independent worlds of one scenario/config.

    World seeds derive from ``cfg.seed`` through
    :class:`numpy.random.SeedSequence` spawns (documented-stable), so
    world ``i`` sees the same traffic regardless of the batch size it
    runs in.  World 0 keeps the plain ``default_rng(cfg.seed)`` stream
    so a 1-world batch is the scalar simulator, bit for bit.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    spec = resolve_scenario(scenario)
    sims: List[ScenarioSimulator] = []
    seeds = np.random.SeedSequence(cfg.seed).spawn(count)
    for index in range(count):
        rng = (np.random.default_rng(cfg.seed) if index == 0
               else np.random.default_rng(seeds[index]))
        if spec is None:
            sims.append(ScenarioSimulator(cfg, rng=rng))
        else:
            sims.append(spec.build_simulator(cfg, rng=rng))
    return sims


def run_episodes(simulators: List[ScenarioSimulator], policy,
                 episodes: int = 1, engine: str = "vector",
                 project: bool = True
                 ) -> List[List[Dict[str, Dict[str, float]]]]:
    """Run every world for ``episodes`` episodes under one policy.

    The workhorse of batched evaluation: ``policy`` is a
    :class:`~repro.engine.policies.BatchPolicy` (stacked observations
    in, stacked actions out); with ``engine="vector"`` all worlds
    advance in lockstep through one
    :class:`~repro.engine.batch.BatchSimulator`, with
    ``engine="scalar"`` each world runs the classic per-slot loop.
    Both traverse the same kernels, so their results are bit-identical
    -- the parity suite asserts it.  ``"vector-compat"`` is the
    allocating reference tier (same bits, no arena reuse) and
    ``"vector-fast"`` the float32/numba tier (fast, *not*
    bit-identical; see :mod:`repro.engine.fastpath`).

    Returns ``result[world][episode][slice] == {"cost": total,
    "usage": total}`` (sum over the episode's slots).
    """
    from repro.engine.batch import BATCH_ENGINES, BatchSimulator
    from repro.engine.policies import project_actions_batch

    if engine != "scalar" and engine not in BATCH_ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected "
                         f"'scalar' or one of {BATCH_ENGINES}")
    if episodes < 1:
        raise ValueError("episodes must be >= 1")

    if engine == "scalar":
        results = []
        for sim in simulators:
            world_episodes = []
            for _ in range(episodes):
                observations = sim.reset()
                names = sim.slice_names
                totals = {n: {"cost": 0.0, "usage": 0.0}
                          for n in names}
                states = np.stack([observations[n].vector()
                                   for n in names])
                while not sim.done:
                    matrix = np.asarray(
                        policy.act_batch(states, names), dtype=float)
                    if project:
                        matrix = project_actions_batch(
                            matrix, np.array([0, len(names)]))
                    step = sim.step(
                        {n: matrix[i] for i, n in enumerate(names)})
                    for i, n in enumerate(names):
                        totals[n]["cost"] += step[n].cost
                        totals[n]["usage"] += step[n].usage
                        step[n].observation.vector(out=states[i])
                world_episodes.append(totals)
            results.append(world_episodes)
        return results

    batch = BatchSimulator(simulators, engine=engine)
    results = [[] for _ in simulators]
    remaining = [episodes] * len(simulators)
    totals: List[Optional[Dict]] = [None] * len(simulators)
    states = [None] * len(simulators)
    for b in range(len(simulators)):
        states[b] = batch.reset_world(b)
        remaining[b] -= 1
        totals[b] = {n: {"cost": 0.0, "usage": 0.0}
                     for n in batch.slice_names(b)}
    active = set(range(len(simulators)))
    while active:
        worlds = sorted(active)
        stacked = np.concatenate([states[b] for b in worlds])
        names = [n for b in worlds for n in batch.slice_names(b)]
        matrix = np.asarray(policy.act_batch(stacked, names),
                            dtype=float)
        offsets = np.concatenate(
            [[0], np.cumsum([len(states[b]) for b in worlds])])
        if project:
            matrix = project_actions_batch(matrix, offsets)
        actions: List[Optional[np.ndarray]] = [None] * len(simulators)
        for i, b in enumerate(worlds):
            actions[b] = matrix[offsets[i]:offsets[i + 1]]
        step = batch.step(actions)
        for i, b in enumerate(worlds):
            rows = step.rows_of(b)
            for j, n in enumerate(step.names[i]):
                totals[b][n]["cost"] += float(step.costs[rows][j])
                totals[b][n]["usage"] += float(step.usages[rows][j])
            states[b] = step.observations[rows]
            if step.dones[i]:
                results[b].append(totals[b])
                if remaining[b] > 0:
                    states[b] = batch.reset_world(b)
                    remaining[b] -= 1
                    totals[b] = {n: {"cost": 0.0, "usage": 0.0}
                                 for n in batch.slice_names(b)}
                else:
                    active.discard(b)
    return results


def fit_baselines(cfg: ExperimentConfig,
                  use_cache: bool = True) -> Dict[str, RuleBasedPolicy]:
    """Grid-search the rule-based baseline for every slice (cached).

    Fitted policies go through the shared runtime result cache
    (:func:`repro.runtime.cache.shared_cache`), keyed by the slice
    spec, the network config and the code version: repeated calls in
    one process return the same objects, and when a disk directory is
    configured (CLI runs, parallel workers) the grid search is shared
    across processes as well.
    """
    # Imported here, not at module top: repro.runtime.serialization
    # depends on this package, so a top-level import would be circular.
    from repro.runtime.cache import (
        MISSING,
        code_version,
        content_key,
        shared_cache,
    )

    policies = {}
    cache = shared_cache()
    for spec in cfg.slices:
        key = content_key({
            "kind": "rule_based_policy",
            "slice": dataclasses.asdict(spec),
            "network": dataclasses.asdict(cfg.network),
            "code_version": code_version(),
        })
        if use_cache:
            hit = cache.fetch(key)
            if hit is not MISSING:
                policies[spec.name] = hit
                continue
        policy = fit_rule_based_policy(spec, cfg.network)
        if use_cache:
            cache.put(key, policy)
        policies[spec.name] = policy
    return policies


@dataclass
class OnSlicingBundle:
    """Everything needed to run/evaluate OnSlicing on one scenario."""

    cfg: ExperimentConfig
    simulator: ScenarioSimulator
    baselines: Dict[str, RuleBasedPolicy]
    agents: Dict[str, OnSlicingAgent]
    orchestrator: OnSlicingOrchestrator
    datasets: Dict[str, OfflineDataset]
    pretrain_reports: Dict[str, object]


def build_onslicing(cfg: Optional[ExperimentConfig] = None,
                    variant: str = "full",
                    offline_episodes: int = 4,
                    exploration_episodes: int = 6,
                    seed: int = 42,
                    scenario=None) -> OnSlicingBundle:
    """Run the offline stage and assemble an OnSlicing deployment.

    ``variant`` selects the ablations of Tables 2/3:

    * ``full``        -- the complete system;
    * ``nb``          -- OnSlicing-NB: no baseline switching;
    * ``ne``          -- OnSlicing-NE: reactive switch (no estimator);
    * ``est_noise``   -- Gaussian noise (std 1.0) on pi_phi's output;
    * ``projection``  -- projection instead of the action modifier;
    * ``md_noise``    -- Gaussian noise (std 1.0) on pi_a's output.

    ``scenario`` (a registered name or
    :class:`~repro.scenarios.spec.ScenarioSpec`) drives offline *and*
    online phases with the scenario's traffic model and event timeline;
    its config is used when ``cfg`` is not given.
    """
    scenario = resolve_scenario(scenario)
    if cfg is None:
        cfg = (scenario.build_config() if scenario is not None
               else ExperimentConfig())
    agent_cfg = cfg.agent
    if variant == "nb":
        agent_cfg = dataclasses.replace(
            agent_cfg, switching=SwitchingConfig(enabled=False))
    elif variant == "ne":
        agent_cfg = dataclasses.replace(
            agent_cfg, switching=SwitchingConfig(use_estimator=False))
    elif variant == "est_noise":
        agent_cfg = dataclasses.replace(
            agent_cfg,
            switching=SwitchingConfig(estimator_noise_std=1.0))
    elif variant == "projection":
        agent_cfg = dataclasses.replace(
            agent_cfg, modifier=dataclasses.replace(
                agent_cfg.modifier, use_projection=True))
    elif variant == "md_noise":
        agent_cfg = dataclasses.replace(
            agent_cfg, modifier=dataclasses.replace(
                agent_cfg.modifier, modifier_noise_std=1.0))
    elif variant != "full":
        raise ValueError(f"unknown OnSlicing variant {variant!r}")
    cfg = cfg.replace(agent=agent_cfg)

    simulator = make_simulator(cfg, scenario)
    baselines = fit_baselines(cfg)
    rng = np.random.default_rng(seed)
    datasets = collect_baseline_rollouts(
        simulator, baselines, num_episodes=offline_episodes)
    exploration = collect_baseline_rollouts(
        simulator, baselines, num_episodes=exploration_episodes,
        exploration_std=0.12, rng=rng)
    agents: Dict[str, OnSlicingAgent] = {}
    reports: Dict[str, object] = {}
    for spec in cfg.slices:
        # str hash() is process-salted (PYTHONHASHSEED); use a stable
        # per-slice offset so runs are reproducible across processes.
        name_offset = sum(ord(ch) for ch in spec.name) % 1000
        agent = OnSlicingAgent(
            spec.name, baselines[spec.name], simulator.horizon,
            spec.sla.cost_threshold, cfg=cfg.agent,
            rng=np.random.default_rng(seed + name_offset))
        reports[spec.name] = pretrain_agent(
            agent, datasets[spec.name],
            exploration_dataset=exploration[spec.name])
        agents[spec.name] = agent
    orchestrator = OnSlicingOrchestrator(simulator, agents, cfg=cfg)
    return OnSlicingBundle(cfg=cfg, simulator=simulator,
                           baselines=baselines, agents=agents,
                           orchestrator=orchestrator,
                           datasets=datasets, pretrain_reports=reports)


def run_online_phase(bundle: OnSlicingBundle, epochs: int = 12,
                     episodes_per_epoch: int = 3,
                     estimator_refresh_every: int = 4
                     ) -> List[TrajectoryPoint]:
    """Run the online learning phase, returning the epoch trajectory."""
    trajectory: List[TrajectoryPoint] = []
    for epoch in range(epochs):
        stats = bundle.orchestrator.run_epoch(
            episodes=episodes_per_epoch)
        if estimator_refresh_every and \
                epoch % estimator_refresh_every == estimator_refresh_every - 1:
            bundle.orchestrator.refresh_estimators()
        trajectory.append(TrajectoryPoint(
            epoch=epoch, mean_usage=stats.mean_usage,
            mean_cost=stats.mean_cost,
            violation_rate=stats.violation_rate,
            mean_interactions=stats.mean_interactions,
            switch_rate=stats.switch_rate,
            per_slice_usage=stats.per_slice_usage,
            per_slice_violation=stats.per_slice_violation))
    return trajectory


def test_performance(bundle: OnSlicingBundle, episodes: int = 3
                     ) -> MethodResult:
    """Deterministic post-training evaluation (Table 1 protocol)."""
    stats = bundle.orchestrator.run_epoch(
        episodes=episodes, deterministic=True, learn=False)
    return MethodResult(
        method="OnSlicing",
        avg_resource_usage=usage_percent(stats.mean_usage),
        avg_sla_violation=violation_percent(stats.violation_rate),
        mean_interactions=stats.mean_interactions,
        per_slice_usage=stats.per_slice_usage,
        per_slice_violation=stats.per_slice_violation)


# ---- static policies (Baseline / Model_Based) -------------------------


def evaluate_static_policies(cfg: ExperimentConfig,
                             policies: Dict[str, object],
                             episodes: int = 3,
                             method: str = "Baseline",
                             scenario=None) -> MethodResult:
    """Run observation->action policies with projection for capacity.

    Used for both the rule-based Baseline and Model_Based -- the two
    non-learning comparison methods, which resolve over-requests with
    the projection method (paper Sec. 7.1).
    """
    simulator = make_simulator(cfg, scenario)
    per_slice_u: Dict[str, List[float]] = {
        n: [] for n in simulator.slice_names}
    per_slice_v: Dict[str, List[float]] = {
        n: [] for n in simulator.slice_names}
    for _ in range(episodes):
        observations = simulator.reset()
        totals = {n: {"cost": 0.0, "usage": 0.0}
                  for n in simulator.slice_names}
        while not simulator.done:
            proposals = {
                name: np.asarray(policies[name].act(observations[name]),
                                 dtype=float)
                for name in simulator.slice_names
            }
            actions = project_actions(proposals)
            results = simulator.step(actions)
            for name, result in results.items():
                totals[name]["cost"] += result.cost
                totals[name]["usage"] += result.usage
                observations[name] = result.observation
        horizon = simulator.horizon
        for spec in cfg.slices:
            mean_cost = totals[spec.name]["cost"] / horizon
            mean_usage = totals[spec.name]["usage"] / horizon
            per_slice_u[spec.name].append(mean_usage)
            per_slice_v[spec.name].append(
                float(mean_cost > spec.sla.cost_threshold))
    per_usage = {n: float(np.mean(v)) for n, v in per_slice_u.items()}
    per_viol = {n: float(np.mean(v)) for n, v in per_slice_v.items()}
    return MethodResult(
        method=method,
        avg_resource_usage=usage_percent(
            float(np.mean(list(per_usage.values())))),
        avg_sla_violation=violation_percent(
            float(np.mean(list(per_viol.values())))),
        per_slice_usage=per_usage,
        per_slice_violation=per_viol)


def make_model_based_policies(cfg: ExperimentConfig
                              ) -> Dict[str, ModelBasedPolicy]:
    return {spec.name: ModelBasedPolicy(spec, cfg.network)
            for spec in cfg.slices}


# ---- OnRL ------------------------------------------------------------


def make_onrl_agents(cfg: ExperimentConfig, seed: int = 17,
                     onrl_cfg: Optional[OnRLConfig] = None
                     ) -> Dict[str, OnRLAgent]:
    """Per-slice learn-from-scratch OnRL agents (paper Sec. 7.1)."""
    return {
        spec.name: OnRLAgent(
            spec.name, STATE_DIM, 10, cfg=onrl_cfg,
            rng=np.random.default_rng(seed + i))
        for i, spec in enumerate(cfg.slices)
    }


def run_onrl_episode(simulator: ScenarioSimulator,
                     agents: Dict[str, OnRLAgent],
                     learn: bool = True,
                     deterministic: bool = False
                     ) -> Dict[str, Dict[str, float]]:
    """One joint episode under independent OnRL agents + projection.

    Returns per-slice ``{"cost", "usage"}`` totals.  With
    ``learn=False`` actions are taken but never observed (the Table 1
    deterministic-test protocol); the caller owns ``end_episode``.
    """
    observations = simulator.reset()
    totals = {n: {"cost": 0.0, "usage": 0.0} for n in agents}
    while not simulator.done:
        proposals = {
            name: agent.act(observations[name].vector(),
                            deterministic=deterministic)
            for name, agent in agents.items()
        }
        if not learn:
            for agent in agents.values():
                agent.discard_pending()  # test only, no learning
        actions = project_actions(proposals)
        results = simulator.step(actions)
        for name, result in results.items():
            if learn:
                agents[name].observe(result.reward, result.cost)
            totals[name]["cost"] += result.cost
            totals[name]["usage"] += result.usage
            observations[name] = result.observation
        if learn:
            for agent in agents.values():
                agent.maybe_update()
    return totals


def run_onrl_episode_batch(batch, vec_agents: Dict[str, object],
                           learn: bool = True,
                           deterministic: bool = False
                           ) -> List[Dict[str, Dict[str, float]]]:
    """One lockstep episode of every world under shared OnRL agents.

    ``batch`` is a :class:`~repro.engine.batch.BatchSimulator` whose
    worlds all share one slice population; ``vec_agents`` maps slice
    names to :class:`~repro.engine.policies.VecOnRLAgent` wrappers.
    Each slot runs one batched forward per agent over the worlds and
    one kernel evaluation over every (world, slice) row -- the
    vectorised-env analogue of :func:`run_onrl_episode`.  Returns
    per-world episode totals.
    """
    from repro.engine.policies import project_actions_batch

    num_envs = batch.num_worlds
    names = batch.slice_names(0)
    s = len(names)
    obs = batch.reset()
    totals = [{n: {"cost": 0.0, "usage": 0.0} for n in names}
              for _ in range(num_envs)]
    offsets = np.arange(num_envs + 1) * s
    while not all(batch.dones):
        matrix = np.empty((num_envs * s, NUM_ACTIONS))
        for j, name in enumerate(names):
            actions = vec_agents[name].act_many(
                obs[j::s], deterministic=deterministic)
            matrix[j::s] = actions
        if not learn:
            for agent in vec_agents.values():
                agent.discard_pending()
        matrix = project_actions_batch(matrix, offsets)
        step = batch.step([matrix[offsets[b]:offsets[b + 1]]
                           for b in range(num_envs)])
        obs = step.observations
        for j, name in enumerate(names):
            if learn:
                vec_agents[name].observe_many(step.rewards[j::s],
                                              step.costs[j::s])
            for b in range(num_envs):
                totals[b][name]["cost"] += float(step.costs[b * s + j])
                totals[b][name]["usage"] += float(
                    step.usages[b * s + j])
        if learn:
            for agent in vec_agents.values():
                agent.maybe_update()
    return totals


def train_onrl(cfg: ExperimentConfig, epochs: int = 12,
               episodes_per_epoch: int = 3, seed: int = 17,
               onrl_cfg: Optional[OnRLConfig] = None,
               scenario=None, envs: int = 1) -> Dict[str, object]:
    """The OnRL online phase, returning the trained agents.

    The "train once" half of the snapshot path: the policy store
    snapshots the returned agents and later runs (robustness sweeps,
    the decision service) evaluate from the snapshot instead of
    retraining.  Returns ``{"agents", "simulator", "trajectory"}``.

    ``envs > 1`` trains through the batched engine: ``envs`` worlds
    (seeded from ``cfg.seed`` spawns) advance in lockstep, each agent
    takes one batched forward per slot, and every lockstep episode
    contributes ``envs`` episodes of experience -- same agents out,
    more experience per wall-clock second.  PPO updates then trigger
    at episode boundaries (per-world GAE stays exact), so the learning
    trajectory is not slot-for-slot identical to ``envs=1``; the
    default keeps the historical single-world path and its cache keys.
    """
    if envs < 1:
        raise ValueError("envs must be >= 1")
    agents = make_onrl_agents(cfg, seed=seed, onrl_cfg=onrl_cfg)
    trajectory: List[TrajectoryPoint] = []
    if envs == 1:
        simulator = make_simulator(cfg, scenario)
        for epoch in range(epochs):
            usages, violations = [], []
            for _ in range(episodes_per_epoch):
                totals = run_onrl_episode(simulator, agents, learn=True)
                for agent in agents.values():
                    agent.end_episode()
                horizon = simulator.horizon
                for spec in cfg.slices:
                    usages.append(totals[spec.name]["usage"] / horizon)
                    violations.append(float(
                        totals[spec.name]["cost"] / horizon
                        > spec.sla.cost_threshold))
            trajectory.append(TrajectoryPoint(
                epoch=epoch, mean_usage=float(np.mean(usages)),
                mean_cost=0.0,
                violation_rate=float(np.mean(violations))))
        return {"agents": agents, "simulator": simulator,
                "trajectory": trajectory}

    from repro.engine.batch import BatchSimulator
    from repro.engine.policies import VecOnRLAgent

    simulators = make_simulators(cfg, scenario, count=envs)
    batch = BatchSimulator(simulators)
    vec_agents = {name: VecOnRLAgent(agent, envs)
                  for name, agent in agents.items()}
    horizon = simulators[0].horizon
    for epoch in range(epochs):
        usages, violations = [], []
        for _ in range(episodes_per_epoch):
            totals = run_onrl_episode_batch(batch, vec_agents,
                                            learn=True)
            for agent in vec_agents.values():
                agent.end_episodes()
                agent.maybe_update()
            for world_totals in totals:
                for spec in cfg.slices:
                    usages.append(
                        world_totals[spec.name]["usage"] / horizon)
                    violations.append(float(
                        world_totals[spec.name]["cost"] / horizon
                        > spec.sla.cost_threshold))
        trajectory.append(TrajectoryPoint(
            epoch=epoch, mean_usage=float(np.mean(usages)),
            mean_cost=0.0,
            violation_rate=float(np.mean(violations))))
    return {"agents": agents, "simulator": simulators[0],
            "trajectory": trajectory}


def run_onrl_phase(cfg: Optional[ExperimentConfig] = None,
                   epochs: int = 12, episodes_per_epoch: int = 3,
                   seed: int = 17,
                   onrl_cfg: Optional[OnRLConfig] = None,
                   scenario=None) -> MethodResult:
    """Train OnRL from scratch and return trajectory + test metrics.

    OnRL agents act independently and over-requests are resolved with
    projection -- no modifier, no switching, fixed penalty weight.
    """
    scenario = resolve_scenario(scenario)
    if cfg is None:
        cfg = (scenario.build_config() if scenario is not None
               else ExperimentConfig())
    trained = train_onrl(cfg, epochs=epochs,
                         episodes_per_epoch=episodes_per_epoch,
                         seed=seed, onrl_cfg=onrl_cfg,
                         scenario=scenario)
    agents = trained["agents"]
    simulator = trained["simulator"]
    # deterministic test episodes
    test_usages, test_violations = [], []
    for _ in range(3):
        totals = run_onrl_episode(simulator, agents, learn=False,
                                  deterministic=True)
        horizon = simulator.horizon
        for spec in cfg.slices:
            test_usages.append(totals[spec.name]["usage"] / horizon)
            test_violations.append(float(
                totals[spec.name]["cost"] / horizon
                > spec.sla.cost_threshold))
    return MethodResult(
        method="OnRL",
        avg_resource_usage=usage_percent(float(np.mean(test_usages))),
        avg_sla_violation=violation_percent(
            float(np.mean(test_violations))),
        trajectory=trained["trajectory"])
