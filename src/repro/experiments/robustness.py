"""The ``robustness`` artefact: every method across the scenario matrix.

The paper evaluates on one world; this generator sweeps all four
methods (OnSlicing, OnRL, Baseline, Model_Based) over the registered
stress scenarios -- flash crowds, bursty sources, mix drift, transport
faults, slice churn, and the 6-slice population -- through the shared
:class:`~repro.runtime.runner.ParallelRunner`, so the full matrix fans
out over worker processes and is served from the result cache on
re-runs.  It answers the question the fixed reproduction cannot: does
safe *online* learning keep its near-zero-violation edge once the
world stops matching the offline stage?

Rows are keyed ``"<scenario>/<method>"`` and carry the per-method
usage/violation metrics plus the scenario name, so downstream tooling
can pivot either way.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.runtime.runner import ParallelRunner
from repro.runtime.units import make_unit, schedule_epochs as _schedule

#: Display labels per unit method.
METHOD_LABELS = {
    "onslicing": "OnSlicing",
    "onrl": "OnRL",
    "baseline": "Baseline",
    "model_based": "Model_Based",
}


def robustness(scale: float = 0.25,
               runner: Optional[ParallelRunner] = None,
               scenarios: Optional[Sequence[str]] = None,
               methods: Optional[Sequence[str]] = None,
               seed: int = 42,
               scenario: Optional[str] = None,
               snapshot_store: Optional[str] = None) -> Dict[str, dict]:
    """Sweep ``methods`` x ``scenarios`` and tabulate usage/violation.

    ``scale`` shrinks every training schedule like the table
    generators (offline/online episode counts scale together, so
    ``--scale 0.05`` smoke-runs the whole matrix in CI).  ``scenario``
    restricts the sweep to one named scenario (the CLI's
    ``--scenario`` flag); ``scenarios``/``methods`` select arbitrary
    subsets.  Expected shape on the stress rows: OnSlicing keeps the
    lowest violation among the learners, the static baselines pay
    their fixed over-provisioning, and OnRL's violations grow with
    non-stationarity.

    ``snapshot_store`` switches the learners to the train-once path:
    each learning method trains a *single* policy on the paper world
    (snapshotted into the given :class:`~repro.serve.policy_store
    .PolicyStore` directory, reused if already there) and every
    scenario row evaluates that snapshot through the decision service
    -- N scenarios cost one training run instead of N.  This measures
    *transfer* of one trained policy, whereas the default re-trains
    per scenario and measures online adaptation.
    """
    from repro.scenarios import ROBUSTNESS_MATRIX, get as get_scenario

    if scenario is not None:
        scenarios = (scenario,)
    names = tuple(scenarios) if scenarios is not None \
        else ROBUSTNESS_MATRIX
    for name in names:
        get_scenario(name)  # fail fast on unknown scenarios
    chosen = tuple(methods) if methods is not None \
        else tuple(METHOD_LABELS)
    unknown = [m for m in chosen if m not in METHOD_LABELS]
    if unknown:
        raise ValueError(f"unknown method(s) {unknown}; "
                         f"expected a subset of {tuple(METHOD_LABELS)}")

    runner = runner or ParallelRunner()
    epochs = _schedule(scale, 40)
    offline = max(int(round(4 * scale)), 1)
    exploration = max(int(round(6 * scale)), 1)
    episodes = max(int(round(3 * scale)), 1)

    snapshots = {}
    if snapshot_store is not None:
        snapshots = _ensure_snapshots(
            snapshot_store, [m for m in chosen
                             if m in ("onslicing", "onrl")],
            scale=scale, seed=seed)

    units = []
    labels = []
    for name in names:
        for method in chosen:
            if method in snapshots:
                snapshot = snapshots[method]
                unit = make_unit(
                    "snapshot_eval", variant=method, scenario=name,
                    seed=seed, store=snapshot_store,
                    snapshot=snapshot.ref, digest=snapshot.digest,
                    episodes=episodes)
            elif method == "onslicing":
                unit = make_unit(
                    "onslicing", scenario=name, seed=seed,
                    epochs=epochs, episodes_per_epoch=2,
                    offline_episodes=offline,
                    exploration_episodes=exploration,
                    test_episodes=0)
            elif method == "onrl":
                unit = make_unit(
                    "onrl", scenario=name, seed=seed, epochs=epochs,
                    episodes_per_epoch=2)
            else:
                # static methods never consume the unit seed; leaving
                # it at the default keeps their cache keys stable
                # across seed sweeps
                unit = make_unit(method, scenario=name,
                                 episodes=episodes)
            units.append(unit)
            labels.append((name, METHOD_LABELS[method]))

    results = runner.run(units)
    rows: Dict[str, dict] = {}
    for (name, label), result in zip(labels, results):
        rows[f"{name}/{label}"] = {
            **result.row(),
            "method": f"{name}/{label}",
            "scenario": name,
        }
    return rows


def _ensure_snapshots(store_dir: str, learners: Sequence[str],
                      scale: float, seed: int) -> Dict[str, object]:
    """Train-once: one snapshot per learning method on the paper
    world, reused across calls (keyed by method/scale/seed)."""
    from repro.serve import PolicyStore, train_snapshot

    store = PolicyStore(store_dir)
    snapshots = {}
    for method in learners:
        name = f"robustness-{method}-s{scale:g}-seed{seed}".replace(
            ".", "p")
        try:
            snapshots[method] = store.load(name)
        except KeyError:
            # the robustness training schedule, not train_snapshot's
            # default: epochs follow the matrix's 40-epoch rule
            epochs = _schedule(scale, 40)
            if method == "onslicing":
                from repro.experiments import harness
                from repro.serve import snapshot_onslicing

                bundle = harness.build_onslicing(
                    offline_episodes=max(int(round(4 * scale)), 1),
                    exploration_episodes=max(int(round(6 * scale)), 1),
                    seed=seed, scenario="default")
                harness.run_online_phase(bundle, epochs=epochs,
                                         episodes_per_epoch=2)
                snapshots[method] = store.save(snapshot_onslicing(
                    name, bundle, scenario="default", seed=seed))
            else:
                from repro.experiments import harness
                from repro.serve import snapshot_onrl

                cfg = harness.resolve_scenario("default").build_config()
                trained = harness.train_onrl(
                    cfg, epochs=epochs, episodes_per_epoch=2,
                    seed=seed, scenario="default")
                snapshots[method] = store.save(snapshot_onrl(
                    name, cfg, trained["agents"], scenario="default",
                    seed=seed))
    return snapshots
