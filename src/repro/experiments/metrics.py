"""Result containers and metric arithmetic for the evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class TrajectoryPoint:
    """One epoch of a learning trajectory (Fig. 9/11/13 material)."""

    epoch: int
    mean_usage: float
    mean_cost: float
    violation_rate: float
    mean_interactions: float = 1.0
    switch_rate: float = 0.0
    per_slice_usage: Dict[str, float] = field(default_factory=dict)
    per_slice_violation: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class MethodResult:
    """Final evaluation of one method (Table 1/2/3 rows)."""

    method: str
    avg_resource_usage: float          # percent, 0..100
    avg_sla_violation: float           # percent, 0..100
    mean_interactions: float = 1.0
    trajectory: List[TrajectoryPoint] = field(default_factory=list)
    per_slice_usage: Dict[str, float] = field(default_factory=dict)
    per_slice_violation: Dict[str, float] = field(default_factory=dict)

    def row(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "avg_res_usage_pct": round(self.avg_resource_usage, 2),
            "avg_sla_violation_pct": round(self.avg_sla_violation, 2),
        }


def usage_percent(mean_usage: float) -> float:
    """Convert a [0, 1] mean usage to the paper's percent scale."""
    return 100.0 * mean_usage


def violation_percent(violation_rate: float) -> float:
    return 100.0 * violation_rate


def cdf(samples) -> Dict[str, np.ndarray]:
    """Empirical CDF points of a sample list (Fig. 16/17 series)."""
    arr = np.sort(np.asarray(samples, dtype=float))
    if arr.size == 0:
        raise ValueError("empty sample set")
    probs = np.arange(1, arr.size + 1) / arr.size
    return {"x": arr, "p": probs}


def online_phase_summary(trajectory: List[TrajectoryPoint]
                         ) -> Dict[str, float]:
    """Averages over the online learning phase (Table 2 metrics)."""
    if not trajectory:
        raise ValueError("empty trajectory")
    return {
        "avg_res_usage_pct": usage_percent(
            float(np.mean([p.mean_usage for p in trajectory]))),
        "avg_sla_violation_pct": violation_percent(
            float(np.mean([p.violation_rate for p in trajectory]))),
        "mean_interactions": float(
            np.mean([p.mean_interactions for p in trajectory])),
    }
