"""Canonical experiment scenarios (paper Sec. 7.1/7.2).

Thin factory helpers so examples, tests and benchmarks construct the
exact same configurations.
"""

from __future__ import annotations

import dataclasses

from repro.config import (
    ExperimentConfig,
    NetworkConfig,
    TrafficConfig,
    lte_ran_config,
    nr_ran_config,
)


def default_scenario(seed: int = 7) -> ExperimentConfig:
    """The paper's main scenario: 3 slices on the LTE testbed."""
    return ExperimentConfig(seed=seed)


def lte_fixed_mcs_scenario(seed: int = 7) -> ExperimentConfig:
    """4G LTE with MCS pinned to 9 (Table 4 / Fig. 16-17 protocol)."""
    ran = dataclasses.replace(lte_ran_config(), fixed_mcs=9)
    return ExperimentConfig(network=NetworkConfig(ran=ran), seed=seed)


def nr_fixed_mcs_scenario(seed: int = 7) -> ExperimentConfig:
    """5G NSA (gNB 40 MHz / 106 PRB / 30 kHz SCS) with MCS 9."""
    ran = dataclasses.replace(nr_ran_config(), fixed_mcs=9)
    return ExperimentConfig(network=NetworkConfig(ran=ran), seed=seed)


def short_horizon_scenario(slots: int = 12,
                           seed: int = 7) -> ExperimentConfig:
    """A fast scenario for tests: shorter 'day' with the same shape."""
    return ExperimentConfig(
        traffic=TrafficConfig(slots_per_episode=slots), seed=seed)
