"""Canonical experiment scenarios (paper Sec. 7.1/7.2).

Thin factory helpers so examples, tests and benchmarks construct the
exact same configurations.  Since the scenario engine landed these
delegate to the declarative registry (:mod:`repro.scenarios`) -- the
single source of truth ``python -m repro scenarios`` lists -- and are
kept for API stability and for call sites that want a plain
:class:`~repro.config.ExperimentConfig` without touching specs.
"""

from __future__ import annotations

from repro import scenarios as _registry
from repro.config import ExperimentConfig, TrafficConfig


def default_scenario(seed: int = 7) -> ExperimentConfig:
    """The paper's main scenario: 3 slices on the LTE testbed."""
    return _registry.get("default").build_config(seed=seed)


def lte_fixed_mcs_scenario(seed: int = 7) -> ExperimentConfig:
    """4G LTE with MCS pinned to 9 (Table 4 / Fig. 16-17 protocol)."""
    return _registry.get("lte_fixed_mcs").build_config(seed=seed)


def nr_fixed_mcs_scenario(seed: int = 7) -> ExperimentConfig:
    """5G NSA (gNB 40 MHz / 106 PRB / 30 kHz SCS) with MCS 9."""
    return _registry.get("nr_fixed_mcs").build_config(seed=seed)


def short_horizon_scenario(slots: int = 12,
                           seed: int = 7) -> ExperimentConfig:
    """A fast scenario for tests: shorter 'day' with the same shape.

    Parameterised by ``slots``, so it builds the config directly; the
    registered ``short_horizon`` spec pins the default 12 slots.
    """
    return ExperimentConfig(
        traffic=TrafficConfig(slots_per_episode=slots), seed=seed)
