"""Fuzz oracle, delta-debugging shrinker, and the ``fuzz_sweep`` artefact.

:mod:`repro.scenarios.fuzz` generates random worlds; this module
decides what they *mean*:

* :func:`run_fuzz_batch` drives generated specs through the batched
  engine under one method policy with per-slot invariant checks
  (finite kernels, non-negative costs/usages, post-projection capacity
  conservation, cumulative-cost consistency) plus a cross-engine
  parity check, and evaluates every world's SLA verdict;
* :func:`run_fuzz` fans a whole corpus over the four comparison
  methods, cached through the shared runtime result cache like any
  other experiment;
* :func:`shrink_spec` minimises a failing world -- shorter horizon,
  fewer slices, fewer events, simpler traffic -- while a predicate
  certifies the failure is preserved, so every fuzz finding ends as a
  tiny committed repro (see ``fuzz_repro`` in the catalog);
* :func:`fuzz_sweep` is the artefact: cost-vs-SLA Pareto frontiers and
  per-scenario-family method heatmaps over the fuzzed space
  (``python -m repro run fuzz_sweep`` / ``python -m repro fuzz sweep``).

Methods reuse the exact comparison implementations: the rule-based
Baseline and Model_Based run their vectorised batch policies, while
OnSlicing/OnRL evaluate train-once snapshots (shared with the
``robustness`` artefact's snapshot path) through deterministic
mean-action inference.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import (
    ExperimentConfig,
    NUM_ACTIONS,
    TrafficConfig,
)
from repro.experiments.harness import (
    fit_baselines,
    make_model_based_policies,
    run_episodes,
)
from repro.experiments.robustness import METHOD_LABELS, _ensure_snapshots
from repro.scenarios.fuzz import (
    FuzzSpace,
    corpus_digest,
    generate_corpus,
    scenario_family,
    spec_digest,
)
from repro.scenarios.spec import ScenarioSpec
from repro.sim.network import CONSTRAINED_RESOURCES

#: Constrained action columns (world capacity is 1.0 per kind).
_KIND_COLUMNS = np.fromiter(CONSTRAINED_RESOURCES.values(),
                            dtype=np.intp)

#: Tolerance of the conservation / cumulative-cost cross-checks; both
#: compare quantities the engine computes through identical float ops,
#: so the slack only absorbs accumulation order.
_CHECK_ATOL = 1e-9

#: Methods whose fuzz policy needs no training (safe for CI smoke).
STATIC_METHODS = ("baseline", "model_based")


class SnapshotBatchPolicy:
    """Deterministic batch inference over a trained policy snapshot.

    Rebuilds each snapshot policy's actor-critic and serves
    ``mean_actions`` -- the same deterministic-test protocol as the
    Table 1 evaluation -- with app-prefix routing for fuzzed
    populations (``MAR7`` routes to the snapshot's MAR policy), the
    routing rule the other batch policies already use.
    """

    def __init__(self, snapshot) -> None:
        from repro.serve.service import _LearnedPolicy

        if not snapshot.policies:
            raise ValueError(f"snapshot {snapshot.ref} has no policies")
        rng = np.random.default_rng(snapshot.seed)
        self._models: Dict[str, object] = {}
        self._by_app: Dict[str, object] = {}
        for name, payload in snapshot.policies.items():
            model = _LearnedPolicy(name, payload, snapshot.config,
                                   rng).model
            self._models[name] = model
            self._by_app.setdefault(payload["app"], model)
        self._fallback = next(iter(self._models.values()))

    def _resolve(self, name: str):
        model = self._models.get(name)
        if model is not None:
            return model
        return self._by_app.get(name[:3].lower(), self._fallback)

    def act_batch(self, states: np.ndarray,
                  slice_names: Sequence[str]) -> np.ndarray:
        states = np.asarray(states, dtype=float)
        actions = np.empty((len(states), NUM_ACTIONS))
        resolved = [self._resolve(name) for name in slice_names]
        groups: Dict[int, List[int]] = {}
        for row, model in enumerate(resolved):
            groups.setdefault(id(model), []).append(row)
        for rows in groups.values():
            actions[rows] = resolved[rows[0]].mean_actions(states[rows])
        return actions


def build_method_policies(methods: Optional[Sequence[str]] = None,
                          scale: float = 0.05, seed: int = 42,
                          snapshot_store: Optional[str] = None
                          ) -> Dict[str, Tuple[object, str]]:
    """``label -> (batch policy, cache signature)`` per method.

    The static methods derive from the paper world's config (their
    app-level tables/programs transfer to any fuzzed population via
    prefix routing); the learners evaluate train-once snapshots from
    ``snapshot_store`` (trained at ``scale`` if absent -- the same
    store entries the ``robustness`` snapshot path uses).  The
    signature feeds the result-cache key: static policies are pinned
    by the config they were fitted on, snapshots by their digest.
    """
    chosen = tuple(methods) if methods is not None \
        else tuple(METHOD_LABELS)
    unknown = [m for m in chosen if m not in METHOD_LABELS]
    if unknown:
        raise ValueError(f"unknown method(s) {unknown}; "
                         f"expected a subset of {tuple(METHOD_LABELS)}")
    learners = [m for m in chosen if m not in STATIC_METHODS]
    if learners and snapshot_store is None:
        raise ValueError(
            f"method(s) {learners} need a snapshot_store directory "
            "(their fuzz policies evaluate trained snapshots)")
    cfg = ExperimentConfig()
    snapshots = _ensure_snapshots(snapshot_store, learners,
                                  scale=scale, seed=seed) \
        if learners else {}
    policies: Dict[str, Tuple[object, str]] = {}
    for method in chosen:
        label = METHOD_LABELS[method]
        if method == "baseline":
            from repro.engine.policies import RuleBasedBatchPolicy

            policies[label] = (RuleBasedBatchPolicy(fit_baselines(cfg)),
                               "static:baseline")
        elif method == "model_based":
            from repro.engine.policies import ModelBasedBatchPolicy

            policies[label] = (
                ModelBasedBatchPolicy(make_model_based_policies(cfg)),
                "static:model_based")
        else:
            snapshot = snapshots[method]
            policies[label] = (SnapshotBatchPolicy(snapshot),
                               f"snapshot:{snapshot.digest}")
    return policies


# ---- the instrumented oracle loop -------------------------------------


def _build_world(spec: ScenarioSpec):
    cfg = spec.build_config()
    sim = spec.build_simulator(cfg,
                               rng=np.random.default_rng(cfg.seed))
    return cfg, sim


def _breach(breaches: List[Dict[str, object]], world: int,
            scenario: str, kind: str, detail: str) -> None:
    breaches.append({"world": world, "scenario": scenario,
                     "kind": kind, "detail": detail})


def run_fuzz_batch(specs: Sequence[ScenarioSpec], policy,
                   engine: str = "vector",
                   check_parity: bool = True
                   ) -> List[Dict[str, object]]:
    """One instrumented episode of every spec under one batch policy.

    Every world runs in lockstep through the batched engine (or the
    scalar loop with ``engine="scalar"``) with the paper's projection,
    while the oracle checks the engine invariants the parity suite
    relies on:

    * every observation/cost/usage the kernels emit is finite;
    * costs and usages are non-negative;
    * post-projection per-world constrained-resource totals never
      exceed capacity (conservation);
    * the simulator's cumulative episode cost equals the summed
      per-slot costs (write-back consistency);
    * with ``check_parity``, a fresh run of the same worlds on the
      *other* engine produces identical episode totals (the float64
      engines are bit-identical by contract).  With
      ``engine="vector-fast"`` the oracle switches to *tolerance
      mode*: the float32 tier is compared against the float64 vector
      oracle within the documented fast-path bounds
      (:data:`repro.engine.fastpath.FAST_RTOL` /
      :data:`~repro.engine.fastpath.FAST_ATOL` per slot) instead of
      bit equality.

    Returns one dict per world: scenario name, family, violated
    slices, per-slice mean cost/usage, and any invariant breaches.
    """
    from repro.engine.batch import BATCH_ENGINES, BatchSimulator
    from repro.engine.policies import project_actions_batch

    if engine != "scalar" and engine not in BATCH_ENGINES:
        raise ValueError(f"unknown engine {engine!r}")
    if not specs:
        raise ValueError("need at least one spec")
    built = [_build_world(spec) for spec in specs]
    cfgs = [cfg for cfg, _ in built]
    sims = [sim for _, sim in built]
    breaches: List[Dict[str, object]] = []

    if engine == "scalar":
        totals = [world[0] for world in
                  run_episodes(sims, policy, episodes=1,
                               engine="scalar")]
    else:
        batch = BatchSimulator(sims, engine=engine)
        states: List[np.ndarray] = []
        totals = []
        for b in range(batch.num_worlds):
            obs = batch.reset_world(b)
            if not np.all(np.isfinite(obs)):
                _breach(breaches, b, specs[b].name, "nonfinite",
                        "initial observation contains non-finite "
                        "values")
            states.append(obs)
            totals.append({name: {"cost": 0.0, "usage": 0.0}
                           for name in batch.slice_names(b)})
        active = set(range(batch.num_worlds))
        while active:
            worlds = sorted(active)
            stacked = np.concatenate([states[b] for b in worlds])
            names = [n for b in worlds for n in batch.slice_names(b)]
            matrix = np.asarray(policy.act_batch(stacked, names),
                                dtype=float)
            offsets = np.concatenate(
                [[0], np.cumsum([len(states[b]) for b in worlds])])
            matrix = project_actions_batch(matrix, offsets)
            step = batch.step(_scatter(matrix, offsets, worlds,
                                       batch.num_worlds))
            for i, b in enumerate(worlds):
                rows = step.rows_of(b)
                requested = matrix[offsets[i]:offsets[i + 1],
                                   _KIND_COLUMNS]
                over = requested.sum(axis=0) - 1.0
                if np.any(over > _CHECK_ATOL):
                    _breach(breaches, b, specs[b].name, "conservation",
                            "post-projection constrained totals "
                            f"exceed capacity by {float(over.max()):g}")
                for arr, label in ((step.observations[rows],
                                    "observation"),
                                   (step.costs[rows], "cost"),
                                   (step.usages[rows], "usage")):
                    if not np.all(np.isfinite(arr)):
                        _breach(breaches, b, specs[b].name,
                                "nonfinite",
                                f"non-finite {label} at slot "
                                f"{sims[b].slot}")
                if np.any(step.costs[rows] < -_CHECK_ATOL) \
                        or np.any(step.usages[rows] < -_CHECK_ATOL):
                    _breach(breaches, b, specs[b].name, "negative",
                            f"negative cost/usage at slot "
                            f"{sims[b].slot}")
                for j, name in enumerate(step.names[i]):
                    totals[b][name]["cost"] += float(
                        step.costs[rows][j])
                    totals[b][name]["usage"] += float(
                        step.usages[rows][j])
                states[b] = step.observations[rows]
                if step.dones[i]:
                    active.discard(b)
        for b, sim in enumerate(sims):
            for name in sim.slice_names:
                drift = abs(sim.cumulative_cost(name)
                            - totals[b][name]["cost"])
                if drift > _CHECK_ATOL:
                    _breach(breaches, b, specs[b].name, "cum_cost",
                            f"slice {name!r}: simulator cumulative "
                            f"cost drifts from summed costs by "
                            f"{drift:g}")

    if check_parity:
        # The fast tier is checked against the float64 vector oracle
        # within the documented tolerances; every float64 engine pair
        # must match bit-for-bit.
        other_engine = ("vector" if engine == "vector-fast"
                        else "scalar" if engine != "scalar"
                        else "vector")
        fresh = [_build_world(spec)[1] for spec in specs]
        other = [world[0] for world in
                 run_episodes(fresh, policy, episodes=1,
                              engine=other_engine)]
        if engine == "vector-fast":
            from repro.engine.fastpath import FAST_ATOL, FAST_RTOL

            for b, spec in enumerate(specs):
                horizon = sims[b].horizon
                for name, got in totals[b].items():
                    ref = other[b][name]
                    for kind in ("cost", "usage"):
                        bound = (FAST_RTOL * abs(ref[kind])
                                 + FAST_ATOL * horizon)
                        drift = abs(got[kind] - ref[kind])
                        if drift > bound:
                            _breach(
                                breaches, b, spec.name,
                                "fast_tolerance",
                                f"slice {name!r} episode {kind} "
                                f"drifts {drift:g} from the float64 "
                                f"oracle (bound {bound:g})")
        else:
            for b, spec in enumerate(specs):
                if totals[b] != other[b]:
                    _breach(breaches, b, spec.name, "parity",
                            f"{engine} and {other_engine} episode "
                            "totals diverge")

    results: List[Dict[str, object]] = []
    for b, (spec, cfg, sim) in enumerate(zip(specs, cfgs, sims)):
        horizon = sim.horizon
        thresholds = {s.name: s.sla.cost_threshold for s in cfg.slices}
        mean_cost = {name: t["cost"] / horizon
                     for name, t in totals[b].items()}
        mean_usage = {name: t["usage"] / horizon
                      for name, t in totals[b].items()}
        results.append({
            "world": b,
            "scenario": spec.name,
            "family": scenario_family(spec),
            "slices": len(cfg.slices),
            "horizon": horizon,
            "violations": sorted(
                name for name, cost in mean_cost.items()
                if cost > thresholds[name]),
            "mean_cost": mean_cost,
            "mean_usage": mean_usage,
            "breaches": [row for row in breaches
                         if row["world"] == b],
        })
    return results


def _scatter(matrix: np.ndarray, offsets: np.ndarray,
             worlds: List[int], num_worlds: int) -> List:
    actions: List[Optional[np.ndarray]] = [None] * num_worlds
    for i, b in enumerate(worlds):
        actions[b] = matrix[offsets[i]:offsets[i + 1]]
    return actions


def run_fuzz(seed: int = 11, count: int = 16,
             methods: Optional[Sequence[str]] = None,
             space: Optional[FuzzSpace] = None,
             batch: int = 8, engine: str = "vector",
             check_parity: bool = True, scale: float = 0.05,
             snapshot_store: Optional[str] = None,
             use_cache: bool = True) -> Dict[str, object]:
    """Generate a corpus and run it across methods (cached).

    Per-method world results go through the shared runtime cache,
    keyed by the exact specs (tagged JSON), the method's policy
    signature, the engine, the parity setting, and the code version --
    a re-run of an unchanged corpus is a cache fetch.

    Returns ``{"seed", "count", "corpus_digest", "engine",
    "methods": {label: {"worlds": [...], "summary": {...}}}}``.
    """
    from repro.runtime.cache import (
        MISSING,
        code_version,
        content_key,
        shared_cache,
    )
    from repro.runtime.serialization import to_jsonable

    if batch < 1:
        raise ValueError("batch must be >= 1")
    specs = generate_corpus(seed, count, space)
    policies = build_method_policies(methods, scale=scale,
                                     snapshot_store=snapshot_store)
    cache = shared_cache()
    result: Dict[str, object] = {
        "seed": seed, "count": count,
        "corpus_digest": corpus_digest(specs),
        "engine": engine,
        "methods": {},
    }
    for label, (policy, signature) in policies.items():
        key = content_key({
            "kind": "fuzz_run",
            "specs": [to_jsonable(spec) for spec in specs],
            "method": label,
            "signature": signature,
            "engine": engine,
            "parity": check_parity,
            "code_version": code_version(),
        })
        worlds = cache.fetch(key) if use_cache else MISSING
        if worlds is MISSING:
            worlds = []
            for start in range(0, len(specs), batch):
                worlds.extend(run_fuzz_batch(
                    specs[start:start + batch], policy, engine=engine,
                    check_parity=check_parity))
            for offset, row in enumerate(worlds):
                row["world"] = offset  # global corpus index
                for breach in row["breaches"]:
                    breach["world"] = offset
            if use_cache:
                cache.put(key, worlds)
        result["methods"][label] = {
            "worlds": worlds,
            "summary": summarize_worlds(worlds),
        }
    return result


def summarize_worlds(worlds: Sequence[Dict[str, object]]
                     ) -> Dict[str, object]:
    """Aggregate oracle rows into the sweep/CLI summary metrics."""
    pairs = sum(row["slices"] for row in worlds)
    violated = sum(len(row["violations"]) for row in worlds)
    usages = [np.mean(list(row["mean_usage"].values()))
              for row in worlds]
    return {
        "worlds": len(worlds),
        "violating_worlds": sum(bool(row["violations"])
                                for row in worlds),
        "violation_pct": round(100.0 * violated / pairs, 2)
        if pairs else 0.0,
        "usage_pct": round(100.0 * float(np.mean(usages)), 2)
        if usages else 0.0,
        "breaches": sum(len(row["breaches"]) for row in worlds),
    }


# ---- the delta-debugging shrinker -------------------------------------


def _shrink_candidates(spec: ScenarioSpec) -> List[ScenarioSpec]:
    """Reduction candidates, biggest cut first.

    Every candidate is strictly smaller along one axis: horizon
    halved, population halved/truncated, one event dropped, composite
    traffic unwrapped (then removed), network override removed.
    """
    out: List[ScenarioSpec] = []
    traffic_cfg = spec.traffic_cfg if spec.traffic_cfg is not None \
        else TrafficConfig()
    slots = traffic_cfg.slots_per_episode
    half = max(slots // 2, 6)
    if half < slots:
        out.append(dataclasses.replace(
            spec, traffic_cfg=dataclasses.replace(
                traffic_cfg, slots_per_episode=half)))
    count = len(spec.slices)
    if count > 1:
        out.append(dataclasses.replace(
            spec, slices=spec.slices[:max(count // 2, 1)]))
        out.append(dataclasses.replace(spec,
                                       slices=spec.slices[:count - 1]))
    for index in range(len(spec.events)):
        out.append(dataclasses.replace(
            spec, events=spec.events[:index]
            + spec.events[index + 1:]))
    if spec.traffic is not None:
        base = getattr(spec.traffic, "base", None)
        if base is not None:
            out.append(dataclasses.replace(spec, traffic=base))
        out.append(dataclasses.replace(spec, traffic=None))
    if spec.network is not None:
        out.append(dataclasses.replace(spec, network=None))
    return out


def shrink_spec(spec: ScenarioSpec,
                predicate: Callable[[ScenarioSpec], bool],
                max_evals: int = 200
                ) -> Tuple[ScenarioSpec, int]:
    """Greedy delta debugging: minimise ``spec`` while ``predicate``
    holds.

    Starting from a failing spec, repeatedly tries the reduction
    candidates (biggest cut first) and restarts from the first one
    that still fails, until a fixpoint or the evaluation budget.
    Candidates that raise (e.g. a reduction left a dangling event
    reference) count as not-preserving.  Deterministic: same spec,
    predicate and budget always shrink to the same result.

    Returns ``(shrunk spec, predicate evaluations used)``.
    """
    if max_evals < 1:
        raise ValueError("max_evals must be >= 1")
    if not predicate(spec):
        raise ValueError(
            f"spec {spec.name!r} does not exhibit the failure; "
            "nothing to shrink")
    evals = 1
    current = spec
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _shrink_candidates(current):
            if evals >= max_evals:
                break
            evals += 1
            try:
                preserved = predicate(candidate)
            except Exception:
                preserved = False
            if preserved:
                current = candidate
                improved = True
                break
    return current, evals


def violation_predicate(policy) -> Callable[[ScenarioSpec], bool]:
    """Failure witness: the world SLA-violates under ``policy``
    (vector engine, parity off -- the shrink loop's hot path)."""
    def predicate(spec: ScenarioSpec) -> bool:
        rows = run_fuzz_batch([spec], policy, engine="vector",
                              check_parity=False)
        return bool(rows[0]["violations"])

    return predicate


def breach_predicate(policy,
                     kind: str) -> Callable[[ScenarioSpec], bool]:
    """Failure witness: an engine invariant breach of ``kind``
    (parity breaches need the cross-engine run, so it stays on)."""
    def predicate(spec: ScenarioSpec) -> bool:
        rows = run_fuzz_batch([spec], policy, engine="vector",
                              check_parity=(kind == "parity"))
        return any(row["kind"] == kind for row in rows[0]["breaches"])

    return predicate


def shrink_violation(spec: ScenarioSpec, policy,
                     max_evals: int = 200
                     ) -> Tuple[ScenarioSpec, int]:
    """Shrink an SLA-violating world, preserving the violation."""
    return shrink_spec(spec, violation_predicate(policy),
                       max_evals=max_evals)


# ---- the sweep artefact -----------------------------------------------


def pareto_frontier(points: Sequence[Tuple[float, float]]
                    ) -> List[Tuple[float, float]]:
    """Non-dominated (usage, violation) pairs, ascending usage.

    A point survives iff no other point has <= usage *and* <=
    violation with at least one strict -- the cost-vs-SLA trade-off
    frontier of the paper's evaluation, over the fuzzed space.
    """
    frontier: List[Tuple[float, float]] = []
    best = float("inf")
    for usage, violation in sorted(points):
        if violation < best:
            frontier.append((usage, violation))
            best = violation
    return frontier


def fuzz_sweep(scale: float = 1.0, runner=None, seed: int = 11,
               count: Optional[int] = None,
               methods: Optional[Sequence[str]] = None,
               snapshot_store: Optional[str] = None,
               batch: int = 8,
               out_dir: Optional[str] = None
               ) -> Dict[str, Dict[str, object]]:
    """Sweep the fuzzed scenario space: Pareto data + family heatmap.

    One row per method (CLI-table shaped); with ``out_dir`` the full
    per-world Pareto point sets, per-method frontiers, and the
    family x method violation heatmap are written as JSON artefacts
    (``fuzz_pareto.json`` / ``fuzz_heatmap.json``).  ``scale`` sizes
    the corpus (and the learners' snapshot training schedule) exactly
    like the other artefacts' schedule knob.

    The learners evaluate train-once snapshots from
    ``snapshot_store`` (default: the CLI policy store); pass
    ``methods=("baseline", "model_based")`` for a training-free sweep.
    """
    if runner is not None and getattr(runner, "collect_only", False):
        return {}
    if count is None:
        count = max(int(round(32 * scale)), 6)
    if methods is None:
        methods = tuple(METHOD_LABELS)
    if snapshot_store is None and any(
            m not in STATIC_METHODS for m in methods):
        from repro.serve import DEFAULT_STORE_DIR

        snapshot_store = DEFAULT_STORE_DIR
    result = run_fuzz(seed=seed, count=count, methods=methods,
                      batch=batch, scale=scale,
                      snapshot_store=snapshot_store)
    specs = generate_corpus(seed, count)
    families = sorted({scenario_family(spec) for spec in specs})

    rows: Dict[str, Dict[str, object]] = {}
    pareto: Dict[str, object] = {}
    heatmap: Dict[str, Dict[str, float]] = {
        family: {} for family in families}
    for label, method_result in result["methods"].items():
        worlds = method_result["worlds"]
        points = [
            (float(np.mean(list(row["mean_usage"].values()))),
             len(row["violations"]) / row["slices"])
            for row in worlds
        ]
        frontier = pareto_frontier(points)
        pareto[label] = {
            "points": [{"world": row["world"],
                        "scenario": row["scenario"],
                        "family": row["family"],
                        "usage": point[0],
                        "violation": point[1]}
                       for row, point in zip(worlds, points)],
            "frontier": [{"usage": usage, "violation": violation}
                         for usage, violation in frontier],
        }
        for family in families:
            members = [point for row, point in zip(worlds, points)
                       if row["family"] == family]
            heatmap[family][label] = round(
                100.0 * float(np.mean([v for _, v in members])), 2) \
                if members else 0.0
        rows[label] = {
            "method": label,
            **method_result["summary"],
            "pareto_points": len(frontier),
        }
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        meta = {"seed": seed, "count": count,
                "corpus_digest": result["corpus_digest"]}
        with open(os.path.join(out_dir, "fuzz_pareto.json"), "w",
                  encoding="utf-8") as fh:
            json.dump({**meta, "methods": pareto}, fh, indent=2)
        with open(os.path.join(out_dir, "fuzz_heatmap.json"), "w",
                  encoding="utf-8") as fh:
            json.dump({**meta, "families": heatmap}, fh, indent=2)
    return rows
