"""Experiment harness reproducing every table and figure of the paper.

* :mod:`repro.experiments.metrics` -- result containers and metric math;
* :mod:`repro.experiments.harness` -- method builders/runners (OnSlicing
  and its ablation variants, OnRL, Baseline, Model_Based);
* :mod:`repro.experiments.tables` -- Table 1-4 generators;
* :mod:`repro.experiments.figures` -- Fig. 3, 5, 6, 9-19 generators;
* :mod:`repro.experiments.robustness` -- the method x scenario stress
  matrix (``python -m repro run robustness``);
* :mod:`repro.experiments.fleet_sweep` -- fleet campaigns at growing
  cell counts, each a cached ``fleet`` unit
  (``python -m repro run fleet_sweep``).

Fan-out generators accept ``scenario=<registered name>`` to re-target
an artefact at any workload from :mod:`repro.scenarios`.

All generators accept a ``scale`` knob: ``scale=1.0`` approximates the
paper's schedules; the benchmark suite uses smaller scales so the whole
suite completes offline.  EXPERIMENTS.md records paper-vs-measured for
each artefact.

Tables and fan-out figures also accept a ``runner``
(:class:`repro.runtime.runner.ParallelRunner`): they decompose into
independent experiment units that are cached content-addressed and can
execute across worker processes -- ``python -m repro run <artefact>``
is the CLI front door.
"""

from repro.experiments.metrics import MethodResult, TrajectoryPoint
from repro.experiments.harness import (
    OnSlicingBundle,
    build_onslicing,
    evaluate_static_policies,
    run_online_phase,
    run_onrl_phase,
    test_performance,
)

__all__ = [
    "MethodResult",
    "OnSlicingBundle",
    "TrajectoryPoint",
    "build_onslicing",
    "evaluate_static_policies",
    "run_online_phase",
    "run_onrl_phase",
    "test_performance",
]
