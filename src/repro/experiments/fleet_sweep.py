"""The ``fleet_sweep`` artefact: fleets as cached experiment units.

Runs the same snapshot over fleets of growing cell counts (each fleet
one :class:`~repro.runtime.units.ExperimentUnit`, so the runner caches
and parallelises them like any table row) and reports how SLA health
and decision volume evolve as the campaign scales -- the fleet-layer
counterpart of the ``robustness`` matrix.

Every fleet cycles the full robustness scenario mix, so a sweep row
aggregates the paper world *and* the stress regimes at that scale.
``python -m repro run fleet_sweep`` is the CLI front door; with an
empty policy store it bootstraps a model-based snapshot exactly like
``loadgen`` does.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.runtime.runner import ParallelRunner
from repro.runtime.units import make_fleet_unit
from repro.serve import DEFAULT_STORE_DIR

#: Cell counts swept at ``scale=1.0`` (shrunk by ``scale``, floor 2).
FULL_CELLS = (8, 16, 32)

#: Short horizon so a sweep measures breadth, not one long day.
SWEEP_SLOTS = 24


def fleet_sweep(scale: float = 1.0,
                runner: Optional[ParallelRunner] = None,
                store_dir: str = DEFAULT_STORE_DIR,
                snapshot: Optional[str] = None,
                seed: int = 23,
                cells: Tuple[int, ...] = FULL_CELLS
                ) -> Dict[str, Dict[str, object]]:
    """Sweep fleet campaigns over growing cell counts.

    Returns one row per fleet size (keyed ``"8_cells"`` etc.), shaped
    like the table artefacts so the CLI renders it as one.
    """
    from repro.fleet import FleetSpec
    from repro.serve import resolve_serving_snapshot

    runner = runner if runner is not None else ParallelRunner()
    loaded = resolve_serving_snapshot(store_dir, snapshot)
    collect_only = getattr(runner, "collect_only", False)
    scaled = []
    for count in cells:
        value = max(2, int(round(count * scale)))
        if value not in scaled:
            scaled.append(value)
    units = [
        make_fleet_unit(
            FleetSpec(name=f"sweep-{count}", cells=count,
                      slots=SWEEP_SLOTS, seed=seed),
            store=store_dir, snapshot=loaded.ref,
            digest=loaded.digest)
        for count in scaled
    ]
    reports = runner.run(units)
    rows: Dict[str, Dict[str, object]] = {}
    if collect_only:
        # planner mode (--list-units): the stub results are not
        # FleetReports; the unit decomposition is already recorded
        return rows
    for count, report in zip(scaled, reports):
        rows[f"{count}_cells"] = {
            "method": f"fleet[{count} cells]",
            "decisions": report.decisions,
            "violation_pct": round(100.0 * report.violation_rate, 2),
            "usage_pct": round(100.0 * report.mean_usage, 2),
            "fallback_pct": round(
                100.0 * report.fallbacks / report.decisions
                if report.decisions else 0.0, 2),
            "digest": report.digest[:12],
        }
    return rows
