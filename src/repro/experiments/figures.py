"""Generators for the paper's figures (3, 5, 6, 9-19).

Every function returns plain dict/array series -- the same data the
paper plots -- so benchmarks can assert on shapes and EXPERIMENTS.md
can record paper-vs-measured values without a plotting dependency.

The multi-method figures (3, 9, 11, 13) decompose into experiment
units and accept a ``runner`` for parallel, cached execution, exactly
like :mod:`repro.experiments.tables`.  The remaining figures are
single self-contained runs; the CLI and benchmarks execute them as
whole-figure units via
:meth:`repro.runtime.runner.ParallelRunner.run_figure`, which caches
their series dicts the same way.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.config import (
    ExperimentConfig,
    MAX_MCS_OFFSET,
    NetworkConfig,
    SliceSpec,
    default_slice_specs,
    lte_ran_config,
    nr_ran_config,
)
from repro.core.orchestrator import coordinate_actions
from repro.domains.coordinator import ParameterCoordinator
from repro.experiments.harness import (
    build_onslicing,
    fit_baselines,
    run_online_phase,
)
from repro.experiments.metrics import cdf, usage_percent
from repro.rl.behavior_cloning import BehaviorCloningTrainer
from repro.runtime.runner import ParallelRunner
from repro.runtime.units import make_unit, schedule_epochs as _schedule
from repro.rl.ppo import GaussianActorCritic
from repro.sim.channel import ChannelProcess
from repro.sim.env import ScenarioSimulator
from repro.sim.network import CONSTRAINED_RESOURCES, EndToEndNetwork
from repro.sim.phy import PhyModel
from repro.sim.ran import RadioCell, Scheduler


# ---------------------------------------------------------------- Fig 3


def fig3(scale: float = 0.25,
         cfg: Optional[ExperimentConfig] = None,
         runner: Optional[ParallelRunner] = None,
         scenario: str = "default") -> Dict[str, object]:
    """Fig. 3(a)/(b): unsafe fixed-penalty DRL vs the baseline.

    Paper shape: the DRL agent exceeds 30 % violation during online
    learning while the baseline stays at zero, and the DRL agent's
    usage starts far above the baseline before undercutting it.
    """
    runner = runner or ParallelRunner()
    epochs = _schedule(scale, 30)
    onrl, base = runner.run([
        make_unit("onrl", seed=17, cfg=cfg, scenario=scenario,
                  epochs=epochs, episodes_per_epoch=2),
        make_unit("baseline", cfg=cfg, scenario=scenario, episodes=2),
    ])
    return {
        "drl_violation_pct": [100.0 * p.violation_rate
                              for p in onrl.trajectory],
        "drl_usage_pct": [usage_percent(p.mean_usage)
                          for p in onrl.trajectory],
        "baseline_violation_pct": base.avg_sla_violation,
        "baseline_usage_pct": base.avg_resource_usage,
    }


# ---------------------------------------------------------------- Fig 5


def fig5(cfg: Optional[NetworkConfig] = None,
         seed: int = 3) -> Dict[str, Dict[str, float]]:
    """Fig. 5: slice data rates under RDM vs the vanilla system.

    Three slices with equal exclusive shares; the sum of their rates
    should approach the unsliced (vanilla) cell rate in both
    directions, demonstrating low-overhead virtualisation.
    """
    cfg = cfg or NetworkConfig()
    rng = np.random.default_rng(seed)
    cell = RadioCell(cfg.ran)
    channel = ChannelProcess(cfg.users_per_slice * 3, rng)
    series: Dict[str, Dict[str, float]] = {}
    for uplink, key in ((False, "dl_mbps"), (True, "ul_mbps")):
        vanilla = cell.vanilla_capacity(channel, uplink) / 1e6
        series.setdefault("Vanilla", {})[key] = vanilla
        for i in range(3):
            report = cell.slice_capacity(1.0 / 3.0, 0,
                                         Scheduler.ROUND_ROBIN,
                                         channel, uplink)
            series.setdefault(f"Slice {i + 1}", {})[key] = \
                report.capacity_bps / 1e6
    return series


# ---------------------------------------------------------------- Fig 6


def fig6() -> Dict[str, List[float]]:
    """Fig. 6: retransmission probability vs MCS offset (UL and DL).

    Paper shape: log-scale decay from ~1e-1 toward ~1e-5 over offsets
    0..10, steeper in the uplink.
    """
    phy = PhyModel()
    offsets = list(range(MAX_MCS_OFFSET + 1))
    return {
        "offset": offsets,
        "uplink": [phy.retransmission_probability(o, uplink=True)
                   for o in offsets],
        "downlink": [phy.retransmission_probability(o, uplink=False)
                     for o in offsets],
    }


# ---------------------------------------------------------------- Fig 9


def fig9(scale: float = 0.25,
         cfg: Optional[ExperimentConfig] = None,
         runner: Optional[ParallelRunner] = None,
         scenario: str = "default") -> Dict[str, object]:
    """Fig. 9: learning trajectories (usage vs violation) per method.

    Paper shape: OnRL starts top-right (high usage, high violation) and
    wanders; OnSlicing's trajectory slides left along the near-zero-
    violation axis; Baseline and Model_Based are fixed points.
    """
    runner = runner or ParallelRunner()
    epochs = _schedule(scale, 30)
    ons_result, onrl, base, model = runner.run([
        make_unit("onslicing", cfg=cfg, scenario=scenario,
                  epochs=epochs, episodes_per_epoch=2,
                  test_episodes=0),
        make_unit("onrl", seed=17, cfg=cfg, scenario=scenario,
                  epochs=epochs, episodes_per_epoch=2),
        make_unit("baseline", cfg=cfg, scenario=scenario, episodes=2),
        make_unit("model_based", cfg=cfg, scenario=scenario,
                  episodes=2),
    ])
    ons = ons_result.trajectory
    return {
        "OnSlicing": {
            "usage_pct": [usage_percent(p.mean_usage) for p in ons],
            "violation_pct": [100.0 * p.violation_rate for p in ons]},
        "OnRL": {
            "usage_pct": [usage_percent(p.mean_usage)
                          for p in onrl.trajectory],
            "violation_pct": [100.0 * p.violation_rate
                              for p in onrl.trajectory]},
        "Baseline": {"usage_pct": [base.avg_resource_usage],
                     "violation_pct": [base.avg_sla_violation]},
        "Model_Based": {"usage_pct": [model.avg_resource_usage],
                        "violation_pct": [model.avg_sla_violation]},
    }


# --------------------------------------------------------------- Fig 10


def fig10(cfg: Optional[ExperimentConfig] = None,
          bc_epochs: int = 8, offline_episodes: int = 3
          ) -> Dict[str, object]:
    """Fig. 10: offline imitation -- usage approaches the baseline's.

    Trains behavior cloning epoch by epoch and evaluates the cloned
    policy's (deterministic) usage after each epoch, per slice.
    """
    cfg = cfg or ExperimentConfig()
    from repro.core.offline import collect_baseline_rollouts

    simulator = ScenarioSimulator(cfg)
    baselines = fit_baselines(cfg)
    datasets = collect_baseline_rollouts(simulator, baselines,
                                         num_episodes=offline_episodes)
    curves: Dict[str, object] = {"epochs": list(range(1, bc_epochs + 1))}
    for spec in cfg.slices:
        dataset = datasets[spec.name]
        states = np.stack(dataset.states)
        actions = np.stack(dataset.expert_actions)
        model = GaussianActorCritic(
            states.shape[1], actions.shape[1],
            rng=np.random.default_rng(11))
        trainer = BehaviorCloningTrainer(
            model.actor, rng=np.random.default_rng(12))
        usage_curve: List[float] = []
        for _ in range(bc_epochs):
            trainer.train_epoch(states, actions)
            cloned = np.clip(model.actor.forward(states), 0.0, 1.0)
            from repro.config import usage_from_action
            usage_curve.append(usage_percent(float(np.mean(
                [usage_from_action(a) for a in cloned]))))
        curves[spec.name] = {
            "cloned_usage_pct": usage_curve,
            "baseline_usage_pct": usage_percent(dataset.mean_usage()),
        }
    return curves


# --------------------------------------------------------------- Fig 11


def fig11(scale: float = 0.25,
          cfg: Optional[ExperimentConfig] = None,
          runner: Optional[ParallelRunner] = None,
          scenario: str = "default") -> Dict[str, object]:
    """Fig. 11: per-slice online curves -- usage falls, violation ~0."""
    runner = runner or ParallelRunner()
    if cfg is None:
        from repro import scenarios as scenario_registry

        slices = scenario_registry.get(scenario).build_config().slices
    else:
        slices = cfg.slices
    epochs = _schedule(scale, 75)
    result = runner.run_unit(
        make_unit("onslicing", cfg=cfg, scenario=scenario,
                  epochs=epochs, episodes_per_epoch=2,
                  test_episodes=0))
    trajectory = result.trajectory
    out: Dict[str, object] = {"epochs": [p.epoch for p in trajectory]}
    for spec in slices:
        out[spec.name] = {
            "usage_pct": [usage_percent(
                p.per_slice_usage.get(spec.name, 0.0))
                for p in trajectory],
            "violation_pct": [100.0 * p.per_slice_violation.get(
                spec.name, 0.0) for p in trajectory],
        }
    return out


# --------------------------------------------------------------- Fig 12


def fig12(cfg: Optional[ExperimentConfig] = None,
          spike_slot: int = 12, spike_factor: float = 6.0,
          spike_duration: int = 16) -> Dict[str, object]:
    """Fig. 12: proactive switching showcase.

    A traffic anomaly is injected into the HVS slice mid-episode; the
    expected shape is a cost spike followed by a baseline takeover and
    a resource-usage step up (paper: ~20 % -> ~35 %).
    """
    cfg = cfg or ExperimentConfig()
    bundle = build_onslicing(cfg)
    simulator = bundle.simulator
    observations = simulator.reset()
    # Inject the anomaly: multiply the HVS trace from the spike slot.
    # A flash-crowd anomaly: demand is pinned at ``spike_factor`` times
    # the slice's engineered peak -- beyond what even a full downlink
    # allocation can carry, so costs accrue no matter how the agent
    # reacts and the proactive switch must step in.
    trace = simulator._traces["HVS"]
    end = spike_slot + spike_duration
    trace[spike_slot:end] = spike_factor
    for agent in bundle.agents.values():
        agent.begin_episode()
    slots: List[int] = []
    usage_pct: List[float] = []
    costs: Dict[str, List[float]] = {n: [] for n in bundle.agents}
    switch_slots: Dict[str, Optional[int]] = {}
    mod_cfg = cfg.agent.modifier
    while not simulator.done:
        proposals, states = {}, {}
        for name, agent in bundle.agents.items():
            decision = agent.act(observations[name])
            proposals[name] = decision.action
            states[name] = observations[name].vector()
        coordination = coordinate_actions(
            states, proposals, bundle.agents,
            bundle.orchestrator.managers.coordinators,
            max_rounds=mod_cfg.max_coordination_rounds)
        results = simulator.step(coordination.actions)
        slots.append(simulator.slot - 1)
        usage_pct.append(usage_percent(float(np.mean(
            [r.usage for r in results.values()]))))
        for name, result in results.items():
            bundle.agents[name].observe(result.reward, result.cost,
                                        result.usage)
            costs[name].append(result.cost)
            observations[name] = result.observation
    for name, agent in bundle.agents.items():
        agent.end_episode()
        switch_slots[name] = agent.switch.switch_slot
    return {"slots": slots, "usage_pct": usage_pct, "costs": costs,
            "switch_slots": switch_slots, "spike_slot": spike_slot}


# --------------------------------------------------------------- Fig 13


def fig13(scale: float = 0.25,
          cfg: Optional[ExperimentConfig] = None,
          runner: Optional[ParallelRunner] = None,
          scenario: str = "default") -> Dict[str, object]:
    """Fig. 13: violation curves of the switching variants.

    Paper shape: OnSlicing-NB worst, OnSlicing-NE intermediate, full
    OnSlicing near zero throughout.
    """
    runner = runner or ParallelRunner()
    epochs = _schedule(scale, 30)
    labels = {"nb": "OnSlicing-NB", "full": "OnSlicing",
              "ne": "OnSlicing-NE"}
    results = runner.run([
        make_unit("onslicing", variant=variant, cfg=cfg,
                  scenario=scenario, epochs=epochs,
                  episodes_per_epoch=2, test_episodes=0)
        for variant in labels
    ])
    out: Dict[str, object] = {
        label: [100.0 * p.violation_rate for p in result.trajectory]
        for label, result in zip(labels.values(), results)
    }
    out["epochs"] = list(range(epochs))
    return out


# --------------------------------------------------------------- Fig 14


def fig14(cfg: Optional[ExperimentConfig] = None,
          betas=(0.0, 0.25, 0.5, 0.75)) -> Dict[str, object]:
    """Fig. 14: usage/violation under fixed coordinating parameters.

    Paper shape: average resource usage decreases as beta grows on all
    resources -- the modifier yields to the domain managers' pressure.
    """
    cfg = cfg or ExperimentConfig()
    bundle = build_onslicing(cfg)
    simulator = bundle.simulator
    out: Dict[str, object] = {"betas": list(betas)}
    usages: Dict[str, List[float]] = {n: [] for n in bundle.agents}
    violations: Dict[str, List[float]] = {n: [] for n in bundle.agents}
    for beta in betas:
        fixed = {kind: float(beta) for kind in CONSTRAINED_RESOURCES}
        observations = simulator.reset()
        totals = {n: {"cost": 0.0, "usage": 0.0} for n in bundle.agents}
        while not simulator.done:
            actions = {}
            for name, agent in bundle.agents.items():
                proposal = agent.baseline.act(observations[name])
                actions[name] = agent.modifier.modify(
                    observations[name].vector(), proposal, fixed)
            results = simulator.step(actions)
            for name, result in results.items():
                totals[name]["cost"] += result.cost
                totals[name]["usage"] += result.usage
                observations[name] = result.observation
        for spec in cfg.slices:
            horizon = simulator.horizon
            usages[spec.name].append(usage_percent(
                totals[spec.name]["usage"] / horizon))
            violations[spec.name].append(100.0 * float(
                totals[spec.name]["cost"] / horizon
                > spec.sla.cost_threshold))
    out["usage_pct"] = usages
    out["violation_pct"] = violations
    return out


# --------------------------------------------------------------- Fig 15


def fig15(scale: float = 0.25,
          cfg: Optional[ExperimentConfig] = None) -> Dict[str, object]:
    """Fig. 15: per-resource average allocations of converged agents.

    Paper shape: MAR leans on U_u and U_c, HVS on U_d, RDC on the MCS
    offsets U_m/U_s.
    """
    from repro.config import ACTION_NAMES

    cfg = cfg or ExperimentConfig()
    epochs = _schedule(scale, 30)
    bundle = build_onslicing(cfg)
    run_online_phase(bundle, epochs=epochs, episodes_per_epoch=2)
    simulator = bundle.simulator
    observations = simulator.reset()
    sums = {n: np.zeros(len(ACTION_NAMES)) for n in bundle.agents}
    count = 0
    while not simulator.done:
        actions = {}
        for name, agent in bundle.agents.items():
            actions[name] = agent.model.mean_action(
                observations[name].vector())
            sums[name] += actions[name]
        results = simulator.step(actions)
        for name, result in results.items():
            observations[name] = result.observation
        count += 1
    return {
        "resources": list(ACTION_NAMES),
        "allocations_pct": {
            name: list(100.0 * total / count)
            for name, total in sums.items()},
    }


# ---------------------------------------------------------- Fig 16 / 17


def fig16(samples: int = 200) -> Dict[str, object]:
    """Fig. 16: ping-delay CDF, LTE vs NR.

    Paper shape: NR (~12 ms average) well left of LTE (~28 ms).
    """
    out: Dict[str, object] = {}
    for label, ran in (("LTE", lte_ran_config()),
                       ("NR", nr_ran_config())):
        network = EndToEndNetwork(NetworkConfig(ran=ran),
                                  slices=default_slice_specs(),
                                  rng=np.random.default_rng(5))
        pings = [network.ping_delay_ms("MAR") for _ in range(samples)]
        out[label] = cdf(pings)
        out[f"{label}_mean_ms"] = float(np.mean(pings))
    return out


def fig17(episodes: int = 1) -> Dict[str, object]:
    """Fig. 17: CDF of slice performance p/P, LTE vs NR.

    Paper shape: NR noticeably better for MAR and RDC; HVS similar
    under both (the fixed-rate stream does not saturate the downlink).
    """
    out: Dict[str, object] = {}
    for label, ran in (("LTE", lte_ran_config()),
                       ("NR", nr_ran_config())):
        cfg = ExperimentConfig(network=NetworkConfig(ran=ran))
        simulator = ScenarioSimulator(cfg)
        baselines = fit_baselines(cfg)
        ratios: Dict[str, List[float]] = {
            n: [] for n in simulator.slice_names}
        for _ in range(episodes):
            observations = simulator.reset()
            while not simulator.done:
                actions = {n: baselines[n].act(observations[n])
                           for n in simulator.slice_names}
                results = simulator.step(actions)
                for name, result in results.items():
                    ratios[name].append(
                        result.report.performance.satisfaction)
                    observations[name] = result.observation
        for name, values in ratios.items():
            out[f"{label}, {name}"] = cdf(values)
    return out


# ---------------------------------------------------------- Fig 18 / 19


def fig18(scale: float = 0.25,
          user_counts=(1, 10, 20, 30)) -> Dict[str, object]:
    """Fig. 18: MAR user scale-up (nFAPI-style emulation).

    The trained agent is *not* retrained per load level (paper: "the
    slice agent does not need to be retrained when dealing with
    varying slice traffic"); usage grows with users and violations stay
    low until the system is overwhelmed.
    """
    cfg = ExperimentConfig()
    epochs = _schedule(scale, 20)
    bundle = build_onslicing(cfg)
    run_online_phase(bundle, epochs=epochs, episodes_per_epoch=2)
    out: Dict[str, object] = {"users": list(user_counts),
                              "usage_pct": [], "violation_pct": []}
    simulator = bundle.simulator
    mar_spec = simulator.network.slices["MAR"]
    for users in user_counts:
        # 20 emulated users generate the nominal testbed peak load;
        # the 30-user end of the sweep pushes ~1.5x past it, which is
        # where the paper's curve shows the system being overwhelmed.
        # The load enters through the traffic *trace* so the agent
        # observes the higher demand (its traffic feature genuinely
        # grows) rather than having it normalised away.
        factor = users / 20.0
        observations = simulator.reset()
        simulator._traces["MAR"] = simulator._traces["MAR"] * factor
        total_cost, total_usage = 0.0, 0.0
        while not simulator.done:
            actions = {}
            for name, agent in bundle.agents.items():
                actions[name] = agent.model.mean_action(
                    observations[name].vector())
            results = simulator.step(actions)
            total_cost += results["MAR"].cost
            total_usage += results["MAR"].usage
            for name, result in results.items():
                observations[name] = result.observation
        horizon = simulator.horizon
        out["usage_pct"].append(usage_percent(total_usage / horizon))
        out["violation_pct"].append(
            100.0 * float(total_cost / horizon
                          > mar_spec.sla.cost_threshold))
    return out


class _ModifierProxy:
    """Minimal agent-like wrapper exposing a shared modifier."""

    def __init__(self, modifier) -> None:
        self.modifier = modifier


def fig19(slice_counts=(9, 15, 21, 27),
          episodes: int = 1) -> Dict[str, object]:
    """Fig. 19: coordination interactions vs number of slices.

    Paper shape: the number of agent<->manager interactions stays low
    (~2-3) as the slice count grows from 9 to 27 -- the warm-started
    betas keep coordination cheap at scale.
    """
    template_cfg = ExperimentConfig()
    template = build_onslicing(template_cfg)
    modifiers = {spec.app: template.agents[spec.name].modifier
                 for spec in template_cfg.slices}
    baselines = {spec.app: template.baselines[spec.name]
                 for spec in template_cfg.slices}
    out: Dict[str, object] = {"slices": list(slice_counts),
                              "interactions": []}
    base_specs = default_slice_specs()
    for count in slice_counts:
        replicas: List[SliceSpec] = []
        per_type = count // len(base_specs)
        for spec in base_specs:
            for i in range(per_type):
                replicas.append(dataclasses.replace(
                    spec, name=f"{spec.name}-{i}",
                    max_arrival_rate=spec.max_arrival_rate
                    * len(base_specs) / count))
        cfg = template_cfg.replace(slices=tuple(replicas))
        simulator = ScenarioSimulator(cfg)
        coordinators = [
            ParameterCoordinator(("uplink_prb", "downlink_prb")),
            ParameterCoordinator(("transport_bandwidth",)),
            ParameterCoordinator(("cpu", "ram")),
        ]
        agents = {spec.name: _ModifierProxy(modifiers[spec.app])
                  for spec in replicas}
        rounds: List[int] = []
        for _ in range(episodes):
            observations = simulator.reset()
            while not simulator.done:
                proposals = {
                    spec.name: baselines[spec.app].act(
                        observations[spec.name])
                    for spec in replicas
                }
                states = {name: observations[name].vector()
                          for name in proposals}
                coordination = coordinate_actions(
                    states, proposals, agents, coordinators)
                rounds.append(coordination.rounds)
                results = simulator.step(coordination.actions)
                for name, result in results.items():
                    observations[name] = result.observation
        out["interactions"].append(float(np.mean(rounds)))
    return out
