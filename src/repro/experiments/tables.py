"""Generators for the paper's Tables 1-4.

Each function returns a dict of rows keyed by method/variant name.
``scale`` in (0, 1] shrinks the training schedule proportionally so the
benchmark suite completes offline; EXPERIMENTS.md records the schedule
used for the committed numbers.

Every table decomposes into independent experiment units -- one
``(method, variant, scenario, seed)`` tuple each -- submitted through a
:class:`~repro.runtime.runner.ParallelRunner`.  Pass ``runner`` to fan
the units out over worker processes and/or serve them from the result
cache; the default is an in-process runner, which produces identical
metrics (unit execution is deterministic given the unit).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import ExperimentConfig
from repro.runtime.runner import ParallelRunner
from repro.runtime.units import make_unit, schedule_epochs as _schedule


def _online_phase_rows(runner: ParallelRunner, labels: Dict[str, str],
                       cfg: Optional[ExperimentConfig], epochs: int,
                       interactions: bool = False,
                       scenario: str = "default") -> Dict[str, dict]:
    """Fan variant units out and assemble online-phase metric rows.

    ``labels`` maps OnSlicing variant -> display label (Tables 2/3);
    ``interactions`` adds the Table-3 ``interact_num`` column.
    """
    units = [make_unit("onslicing", variant=variant, cfg=cfg,
                       scenario=scenario, epochs=epochs,
                       episodes_per_epoch=3, test_episodes=0)
             for variant in labels]
    results = runner.run(units)
    rows: Dict[str, dict] = {}
    for label, result in zip(labels.values(), results):
        row = {
            "method": label,
            "avg_res_usage_pct": round(result.avg_resource_usage, 2),
            "avg_sla_violation_pct": round(result.avg_sla_violation, 2),
        }
        if interactions:
            row["interact_num"] = round(result.mean_interactions, 2)
        rows[label] = row
    return rows


def table1(scale: float = 0.25,
           cfg: Optional[ExperimentConfig] = None,
           runner: Optional[ParallelRunner] = None,
           scenario: str = "default") -> Dict[str, dict]:
    """Table 1: test usage/violation of all four methods.

    Paper: OnSlicing 20.19/0.00, OnRL 23.08/15.40, Baseline 52.18/0.00,
    Model_Based 59.04/3.13 (percent).  Expected shape: OnSlicing lowest
    usage at zero violation; OnRL between OnSlicing and Baseline with a
    substantial violation; Model_Based the most expensive and violating.

    ``scenario`` re-targets the whole table at a registered workload.
    An explicit ``cfg`` overrides the scenario's *config* only; the
    scenario's traffic model and event timeline still drive the
    simulator.
    """
    runner = runner or ParallelRunner()
    epochs = _schedule(scale, 60)
    units = [
        make_unit("onslicing", cfg=cfg, scenario=scenario,
                  epochs=epochs, episodes_per_epoch=3),
        make_unit("onrl", seed=17, cfg=cfg, scenario=scenario,
                  epochs=epochs, episodes_per_epoch=3),
        make_unit("baseline", cfg=cfg, scenario=scenario),
        make_unit("model_based", cfg=cfg, scenario=scenario),
    ]
    results = runner.run(units)
    return {result.method: result.row() for result in results}


def table2(scale: float = 0.25,
           cfg: Optional[ExperimentConfig] = None,
           runner: Optional[ParallelRunner] = None,
           scenario: str = "default") -> Dict[str, dict]:
    """Table 2: online-phase averages of switching variants.

    Paper: OnSlicing 29.07/0.06, -NE 30.81/0.33, -NB 29.64/2.94,
    Est.Noise 52.91/1.03.  Expected shape: NB worst violation, NE in
    between, Est.Noise usage near the baseline's (frequent switching).
    """
    labels = {"full": "OnSlicing", "ne": "OnSlicing-NE",
              "nb": "OnSlicing-NB", "est_noise": "OnSlicing Est. Noise"}
    return _online_phase_rows(runner or ParallelRunner(), labels,
                              cfg, _schedule(scale, 40),
                              scenario=scenario)


def table3(scale: float = 0.25,
           cfg: Optional[ExperimentConfig] = None,
           runner: Optional[ParallelRunner] = None,
           scenario: str = "default") -> Dict[str, dict]:
    """Table 3: action-modification methods.

    Paper: OnSlicing 20.2/0.00/1.83 interactions, projection
    18.2/3.66/1.00, Md.Noise 23.8/2.57/2.16.  Expected shape:
    projection slightly cheaper but violating; modifier noise increases
    both usage and violation yet stays below projection's violation.
    """
    labels = {"full": "OnSlicing",
              "projection": "OnSlicing-projection",
              "md_noise": "OnSlicing Md. Noise"}
    return _online_phase_rows(runner or ParallelRunner(), labels,
                              cfg, _schedule(scale, 40),
                              interactions=True, scenario=scenario)


def table4(scale: float = 0.25,
           runner: Optional[ParallelRunner] = None) -> Dict[str, dict]:
    """Table 4: OnSlicing in 4G LTE vs 5G NSA with fixed MCS 9.

    Paper: 5G NR 43.5/0.00, 4G LTE 45.9/0.66.  Expected shape: both
    need far more radio resource than the link-adapted Table 1 runs;
    LTE slightly worse on both metrics (lower capacity, higher delay).
    """
    runner = runner or ParallelRunner()
    epochs = _schedule(scale, 30)
    scenarios = {"nr_fixed_mcs": "5G NR", "lte_fixed_mcs": "4G LTE"}
    units = [make_unit("onslicing", scenario=scenario, epochs=epochs,
                       episodes_per_epoch=2, test_episodes=0)
             for scenario in scenarios]
    results = runner.run(units)
    return {
        label: {
            "method": label,
            "avg_res_usage_pct": round(result.avg_resource_usage, 2),
            "avg_sla_violation_pct": round(result.avg_sla_violation, 2),
        }
        for label, result in zip(scenarios.values(), results)
    }
