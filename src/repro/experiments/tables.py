"""Generators for the paper's Tables 1-4.

Each function returns a dict of rows keyed by method/variant name.
``scale`` in (0, 1] shrinks the training schedule proportionally so the
benchmark suite completes offline; EXPERIMENTS.md records the schedule
used for the committed numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.config import (
    ExperimentConfig,
    NetworkConfig,
    RANConfig,
    lte_ran_config,
    nr_ran_config,
)
from repro.experiments.harness import (
    build_onslicing,
    evaluate_static_policies,
    fit_baselines,
    make_model_based_policies,
    run_online_phase,
    run_onrl_phase,
    test_performance,
)
from repro.experiments.metrics import (
    MethodResult,
    online_phase_summary,
)


def _schedule(scale: float, full_epochs: int) -> int:
    return max(int(round(full_epochs * scale)), 2)


def table1(scale: float = 0.25,
           cfg: Optional[ExperimentConfig] = None) -> Dict[str, dict]:
    """Table 1: test usage/violation of all four methods.

    Paper: OnSlicing 20.19/0.00, OnRL 23.08/15.40, Baseline 52.18/0.00,
    Model_Based 59.04/3.13 (percent).  Expected shape: OnSlicing lowest
    usage at zero violation; OnRL between OnSlicing and Baseline with a
    substantial violation; Model_Based the most expensive and violating.
    """
    cfg = cfg or ExperimentConfig()
    epochs = _schedule(scale, 60)
    rows: Dict[str, dict] = {}

    bundle = build_onslicing(cfg)
    run_online_phase(bundle, epochs=epochs, episodes_per_epoch=3)
    rows["OnSlicing"] = test_performance(bundle).row()

    onrl = run_onrl_phase(cfg, epochs=epochs, episodes_per_epoch=3)
    rows["OnRL"] = onrl.row()

    baselines = fit_baselines(cfg)
    rows["Baseline"] = evaluate_static_policies(
        cfg, baselines, method="Baseline").row()

    model_based = make_model_based_policies(cfg)
    rows["Model_Based"] = evaluate_static_policies(
        cfg, model_based, method="Model_Based").row()
    return rows


def table2(scale: float = 0.25,
           cfg: Optional[ExperimentConfig] = None) -> Dict[str, dict]:
    """Table 2: online-phase averages of switching variants.

    Paper: OnSlicing 29.07/0.06, -NE 30.81/0.33, -NB 29.64/2.94,
    Est.Noise 52.91/1.03.  Expected shape: NB worst violation, NE in
    between, Est.Noise usage near the baseline's (frequent switching).
    """
    cfg = cfg or ExperimentConfig()
    epochs = _schedule(scale, 40)
    rows: Dict[str, dict] = {}
    for variant, label in (("full", "OnSlicing"),
                           ("ne", "OnSlicing-NE"),
                           ("nb", "OnSlicing-NB"),
                           ("est_noise", "OnSlicing Est. Noise")):
        bundle = build_onslicing(cfg, variant=variant)
        trajectory = run_online_phase(bundle, epochs=epochs,
                                      episodes_per_epoch=3)
        summary = online_phase_summary(trajectory)
        rows[label] = {
            "method": label,
            "avg_res_usage_pct": round(summary["avg_res_usage_pct"], 2),
            "avg_sla_violation_pct": round(
                summary["avg_sla_violation_pct"], 2),
        }
    return rows


def table3(scale: float = 0.25,
           cfg: Optional[ExperimentConfig] = None) -> Dict[str, dict]:
    """Table 3: action-modification methods.

    Paper: OnSlicing 20.2/0.00/1.83 interactions, projection
    18.2/3.66/1.00, Md.Noise 23.8/2.57/2.16.  Expected shape:
    projection slightly cheaper but violating; modifier noise increases
    both usage and violation yet stays below projection's violation.
    """
    cfg = cfg or ExperimentConfig()
    epochs = _schedule(scale, 40)
    rows: Dict[str, dict] = {}
    for variant, label in (("full", "OnSlicing"),
                           ("projection", "OnSlicing-projection"),
                           ("md_noise", "OnSlicing Md. Noise")):
        bundle = build_onslicing(cfg, variant=variant)
        trajectory = run_online_phase(bundle, epochs=epochs,
                                      episodes_per_epoch=3)
        summary = online_phase_summary(trajectory)
        rows[label] = {
            "method": label,
            "avg_res_usage_pct": round(summary["avg_res_usage_pct"], 2),
            "avg_sla_violation_pct": round(
                summary["avg_sla_violation_pct"], 2),
            "interact_num": round(summary["mean_interactions"], 2),
        }
    return rows


def table4(scale: float = 0.25) -> Dict[str, dict]:
    """Table 4: OnSlicing in 4G LTE vs 5G NSA with fixed MCS 9.

    Paper: 5G NR 43.5/0.00, 4G LTE 45.9/0.66.  Expected shape: both
    need far more radio resource than the link-adapted Table 1 runs;
    LTE slightly worse on both metrics (lower capacity, higher delay).
    """
    epochs = _schedule(scale, 30)
    rows: Dict[str, dict] = {}
    for label, ran in (("5G NR", nr_ran_config()),
                       ("4G LTE", lte_ran_config())):
        ran = dataclasses.replace(ran, fixed_mcs=9)
        cfg = ExperimentConfig(
            network=NetworkConfig(ran=ran))
        bundle = build_onslicing(cfg)
        trajectory = run_online_phase(bundle, epochs=epochs,
                                      episodes_per_epoch=2)
        summary = online_phase_summary(trajectory)
        rows[label] = {
            "method": label,
            "avg_res_usage_pct": round(summary["avg_res_usage_pct"], 2),
            "avg_sla_violation_pct": round(
                summary["avg_sla_violation_pct"], 2),
        }
    return rows
