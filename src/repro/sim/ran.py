"""Radio access network: cells, PRB partitioning, MAC schedulers.

Models the paper's sliced eNB/gNB: "performance isolation among slices
is guaranteed by exclusively assigning resource block groups (RBGs) and
physical resource blocks (PRBs) in the downlink and uplink MAC layers"
(Sec. 6).  A :class:`RadioCell` owns the PRB budget of one direction
pair; each slice receives an exclusive share and a scheduling algorithm
(the ``U_a`` / ``U_g`` actions) that determines how efficiently its
users convert PRBs into bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.config import RANConfig
from repro.sim.channel import ChannelProcess
from repro.sim.phy import PhyModel, mcs_spectral_efficiency


class Scheduler(enum.Enum):
    """MAC scheduling algorithms selectable per slice and direction."""

    ROUND_ROBIN = 0
    PROPORTIONAL_FAIR = 1
    MAX_CQI = 2

    @classmethod
    def from_action(cls, value: float) -> "Scheduler":
        """Map a continuous action in [0, 1] to a scheduler choice."""
        idx = int(np.clip(value * len(cls), 0, len(cls) - 1))
        return list(cls)[idx]


def scheduler_efficiency(scheduler: Scheduler,
                         efficiencies: Sequence[float]) -> float:
    """Aggregate per-user spectral efficiency under a scheduler.

    * Round robin serves users uniformly -> arithmetic mean.
    * Max-CQI always serves the best instantaneous channel -> maximum
      (shaded slightly toward the mean because even Max-CQI must serve
      retransmissions and control traffic of weaker users).
    * Proportional fair sits between the two; the classic log-utility
      scheduler realises most of the multi-user diversity gain.
    """
    effs = np.asarray(efficiencies, dtype=float)
    if effs.size == 0:
        raise ValueError("need at least one user efficiency")
    mean = float(effs.mean())
    best = float(effs.max())
    if scheduler is Scheduler.ROUND_ROBIN:
        return mean
    if scheduler is Scheduler.MAX_CQI:
        return 0.9 * best + 0.1 * mean
    return 0.6 * best + 0.4 * mean  # PROPORTIONAL_FAIR


@dataclass(frozen=True)
class SliceRadioReport:
    """Per-slot RAN outcome for one slice and direction."""

    prbs: int
    capacity_bps: float
    retransmission_probability: float
    mcs: int
    scheduler: Scheduler


class RadioCell:
    """One eNB/gNB with exclusive PRB partitioning between slices."""

    def __init__(self, cfg: RANConfig, phy: Optional[PhyModel] = None
                 ) -> None:
        self.cfg = cfg
        self.phy = phy if phy is not None else PhyModel()
        #: Useful PRB-seconds per second in each direction (TDD split).
        self._dl_prbs = cfg.num_prbs
        self._ul_prbs = cfg.num_prbs

    @property
    def downlink_prbs(self) -> int:
        return self._dl_prbs

    @property
    def uplink_prbs(self) -> int:
        return self._ul_prbs

    def prbs_for_share(self, share: float, uplink: bool) -> int:
        """Integer PRBs exclusively assigned for a [0, 1] share.

        Rounded to the nearest PRB, with a 1-PRB floor for any non-zero
        request -- the MAC always grants at least one PRB to an active
        bearer, so capacity degrades smoothly instead of cliffing to
        zero at small shares.
        """
        share = float(np.clip(share, 0.0, 1.0))
        total = self._ul_prbs if uplink else self._dl_prbs
        prbs = int(round(share * total))
        if share > 1e-3 and prbs == 0:
            prbs = 1
        return prbs

    def slice_capacity(self, share: float, mcs_offset: int,
                       scheduler: Scheduler, channel: ChannelProcess,
                       uplink: bool) -> SliceRadioReport:
        """Achievable goodput of a slice's exclusive PRB partition.

        capacity = PRBs * PRB_bandwidth * duty * scheduler-aggregated
        goodput-efficiency * (1 - overhead), where duty is the TDD
        fraction of the direction and the goodput efficiency already
        accounts for HARQ retransmissions at the chosen MCS offset.
        """
        cfg = self.cfg
        prbs = self.prbs_for_share(share, uplink)
        duty = cfg.uplink_fraction if uplink else cfg.downlink_fraction
        effs = []
        retx = 0.0
        mcs_used = 0
        for user in channel.users:
            quality = self.phy.link_quality(
                user.cqi, mcs_offset, uplink, fixed_mcs=cfg.fixed_mcs,
                channel_margin_db=user.snr_db - user.mean_snr_db)
            effs.append(quality.goodput_efficiency)
            retx += quality.retransmission_probability
            mcs_used = max(mcs_used, quality.mcs)
        retx /= len(channel.users)
        agg_eff = scheduler_efficiency(scheduler, effs)
        capacity = (prbs * cfg.prb_bandwidth_hz * duty * agg_eff
                    * (1.0 - cfg.overhead))
        return SliceRadioReport(
            prbs=prbs, capacity_bps=float(capacity),
            retransmission_probability=float(retx), mcs=mcs_used,
            scheduler=scheduler)

    def vanilla_capacity(self, channel: ChannelProcess,
                         uplink: bool) -> float:
        """Unsliced capacity of the whole cell (Fig. 5's 'Vanilla').

        Used to verify low-overhead virtualisation: the sum of slice
        capacities at equal shares must approach this value.
        """
        report = self.slice_capacity(
            1.0, 0, Scheduler.ROUND_ROBIN, channel, uplink)
        return report.capacity_bps

    def transmission_latency_ms(self, payload_bits: float,
                                capacity_bps: float,
                                retransmission_probability: float
                                ) -> float:
        """Air-time latency of one payload over a slice partition.

        Serialisation plus the scheduling pipeline, inflated by the
        expected number of HARQ rounds (8 ms RTT per retransmission,
        the LTE HARQ timing).
        """
        if capacity_bps <= 0:
            return float("inf")
        serialisation = payload_bits / capacity_bps * 1e3
        harq = retransmission_probability * 8.0
        return self.cfg.base_latency_ms + serialisation + harq
