"""Edge servers: per-slice compute containers co-located with SPGW-U.

The EDM manages CPU/RAM of edge servers via Docker runtime interfaces
(Sec. 6).  The dominant edge workload is the MAR slice's ORB feature
extraction; we model each slice's edge server as an M/M/1 processor
whose service rate scales with its CPU share (``U_c``), with a RAM
(``U_r``) working-set penalty when under-provisioned (thrashing slows
processing sharply, as real feature-matching pipelines do when the
feature database no longer fits in memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import EdgeConfig
from repro.sim.containers import ContainerRuntime
from repro.sim.queueing import queueing_latency_ms


@dataclass(frozen=True)
class EdgeReport:
    """Per-slot edge-compute outcome for one slice."""

    service_rate_ups: float      # compute units served per second
    offered_rate_ups: float
    latency_ms: float
    utilization: float
    ram_penalty: float           # 1.0 = no penalty


class EdgeServerPool:
    """Per-slice edge compute containers on one workstation host."""

    def __init__(self, cfg: Optional[EdgeConfig] = None,
                 runtime: Optional[ContainerRuntime] = None) -> None:
        self.cfg = cfg or EdgeConfig()
        # Explicit None check: an empty ContainerRuntime is falsy.
        self.runtime = runtime if runtime is not None else \
            ContainerRuntime(self.cfg.total_cpu_cores,
                             self.cfg.total_ram_gb)
        self._slices: Dict[str, str] = {}

    def create_server(self, slice_name: str) -> str:
        """Instantiate the slice's edge container (idempotent per slice)."""
        if slice_name in self._slices:
            raise ValueError(f"slice {slice_name!r} already has a server")
        name = f"edge-{slice_name}"
        self.runtime.run(name, image="edge-app", cpu_share=0.0,
                         ram_gb=0.0, labels={"slice": slice_name})
        self._slices[slice_name] = name
        return name

    def delete_server(self, slice_name: str) -> None:
        name = self._slices.pop(slice_name, None)
        if name is not None:
            self.runtime.remove(name)

    def set_resources(self, slice_name: str, cpu_share: float,
                      ram_share: float) -> None:
        """``docker update`` with normalised [0, 1] shares."""
        name = self._container_name(slice_name)
        self.runtime.update(
            name, cpu_share=float(np.clip(cpu_share, 0.0, 1.0)),
            ram_gb=float(np.clip(ram_share, 0.0, 1.0))
            * self.cfg.total_ram_gb)

    def _container_name(self, slice_name: str) -> str:
        try:
            return self._slices[slice_name]
        except KeyError as exc:
            raise KeyError(
                f"slice {slice_name!r} has no edge server") from exc

    def evaluate(self, slice_name: str, offered_rate_ups: float,
                 compute_units_per_request: float = 1.0) -> EdgeReport:
        """Serve a slice's compute load at its current allocation.

        ``offered_rate_ups`` is requests/s; each request costs
        ``compute_units_per_request``.  The RAM penalty divides the
        service rate when the working set (proportional to the offered
        rate) exceeds the allocated RAM.
        """
        container = self.runtime.get(self._container_name(slice_name))
        work_rate = offered_rate_ups * compute_units_per_request
        mu = container.cpu_share * self.cfg.compute_capacity_ups
        required_ram = work_rate * self.cfg.ram_gb_per_ups
        if required_ram > 0 and container.ram_gb < required_ram:
            # Thrashing: service rate degrades with the shortfall ratio.
            ram_penalty = max(container.ram_gb / required_ram, 0.1)
        else:
            ram_penalty = 1.0
        mu_eff = mu * ram_penalty
        if mu_eff <= 0:
            utilization = 1.0 if work_rate > 0 else 0.0
            latency = float("inf") if work_rate > 0 else 0.0
        else:
            utilization = work_rate / mu_eff
            latency = queueing_latency_ms(
                1e3 / mu_eff * compute_units_per_request, utilization)
        return EdgeReport(service_rate_ups=float(mu_eff),
                          offered_rate_ups=float(work_rate),
                          latency_ms=float(latency),
                          utilization=float(min(utilization, 1.0)),
                          ram_penalty=float(ram_penalty))
