"""The composed end-to-end network: RAN + TN + CN + EN per slot.

:class:`EndToEndNetwork` owns one instance of every substrate (radio
cell, transport fabric, CUPS core, edge pool, per-slice channels) and
evaluates a configuration slot: given each slice's resource allocation
(the 10-dim action) and realised traffic, it produces per-slice
performance/cost plus the usage and state features the agents consume.

Slot evaluation runs through the vectorised engine kernels
(:mod:`repro.engine.kernels`): one network is just the ``R = S`` rows
special case of the batched engine, so the scalar simulator and
:class:`~repro.engine.batch.BatchSimulator` share one numeric code
path and stay bit-identical by construction.  The substrate objects
(fabric loads, container shares) are still updated every slot, so
external readers observe the same state as before the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import (
    MAX_MCS_OFFSET,
    NUM_ACTIONS,
    NetworkConfig,
    SliceSpec,
)
from repro.sim.apps import AppPerformance
from repro.sim.channel import ChannelBank, ChannelProcess
from repro.sim.containers import ContainerRuntime
from repro.sim.core_network import CoreNetwork
from repro.sim.edge import EdgeServerPool
from repro.sim.ran import RadioCell, Scheduler
from repro.sim.transport import TransportFabric


@dataclass(frozen=True)
class SliceAllocation:
    """Decoded view of a 10-dim orchestration action."""

    uplink_bandwidth: float
    uplink_mcs_offset: int
    uplink_scheduler: Scheduler
    downlink_bandwidth: float
    downlink_mcs_offset: int
    downlink_scheduler: Scheduler
    transport_bandwidth: float
    transport_path: int
    cpu_allocation: float
    ram_allocation: float

    #: Minimum share every admitted slice is granted on the consumable
    #: resources.  Domain managers never configure a literal zero for an
    #: active bearer/meter/container -- a 0-rate OpenFlow meter or a
    #: 0-CPU cgroup would black-hole the slice entirely -- so requests
    #: below the floor are rounded up to the minimum commitment.
    MIN_SHARE = 0.01

    @classmethod
    def from_action(cls, action: np.ndarray,
                    num_paths: int = 3) -> "SliceAllocation":
        """Decode an action vector in [0, 1]^10.

        Discretised dimensions: MCS offsets round to 0..10, schedulers
        map thirds of [0, 1] to RR/PF/Max-CQI, and the path index maps
        to the transport fabric's reserved paths.  Consumable shares
        are floored at :attr:`MIN_SHARE`.
        """
        arr = np.clip(np.asarray(action, dtype=float), 0.0, 1.0)
        if arr.shape != (NUM_ACTIONS,):
            raise ValueError(
                f"action must have shape ({NUM_ACTIONS},), got {arr.shape}")
        floor = cls.MIN_SHARE
        return cls(
            uplink_bandwidth=max(float(arr[0]), floor),
            uplink_mcs_offset=int(round(arr[1] * MAX_MCS_OFFSET)),
            uplink_scheduler=Scheduler.from_action(arr[2]),
            downlink_bandwidth=max(float(arr[3]), floor),
            downlink_mcs_offset=int(round(arr[4] * MAX_MCS_OFFSET)),
            downlink_scheduler=Scheduler.from_action(arr[5]),
            transport_bandwidth=max(float(arr[6]), floor),
            transport_path=int(np.clip(arr[7] * num_paths, 0,
                                       num_paths - 1)),
            cpu_allocation=max(float(arr[8]), floor),
            ram_allocation=max(float(arr[9]), floor),
        )


@dataclass(frozen=True)
class SlotReport:
    """Per-slice outcome of one configuration slot."""

    slice_name: str
    performance: AppPerformance
    usage: float                     # paper Eq. 9 scaled to [0, 1]
    arrival_rate: float
    ul_capacity_bps: float
    dl_capacity_bps: float
    radio_usage: float               # g_{t-1} state feature
    workload: float                  # w_{t-1} state feature
    transport_latency_ms: float
    core_latency_ms: float
    edge_latency_ms: float

    @property
    def cost(self) -> float:
        return self.performance.cost


#: The resource kinds shared across slices and capped by infrastructure
#: (paper Sec. 4's constraint set K), mapped to action indices.
CONSTRAINED_RESOURCES: Dict[str, int] = {
    "uplink_prb": 0,
    "downlink_prb": 3,
    "transport_bandwidth": 6,
    "cpu": 8,
    "ram": 9,
}


class EndToEndNetwork:
    """One end-to-end infrastructure instance hosting several slices."""

    def __init__(self, cfg: Optional[NetworkConfig] = None,
                 slices: Optional[Sequence[SliceSpec]] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cfg = cfg or NetworkConfig()
        self._rng = rng if rng is not None else np.random.default_rng(17)
        self.cell = RadioCell(self.cfg.ran)
        self.fabric = TransportFabric(self.cfg.transport)
        runtime = ContainerRuntime(self.cfg.edge.total_cpu_cores,
                                   self.cfg.edge.total_ram_gb)
        self.core = CoreNetwork(self.cfg.core, runtime=runtime)
        self.edge = EdgeServerPool(self.cfg.edge, runtime=runtime)
        self.slices: Dict[str, SliceSpec] = {}
        self.channels: Dict[str, ChannelProcess] = {}
        self._imsi_counter = 0
        #: Cached engine row layout; rebuilt whenever the slice set
        #: changes (see :meth:`slot_rows`).
        self._rows_cache = None
        #: Reused per-slot (cqi, margin) gather buffers.
        self._channel_buffers = None
        #: Stacked channel state (see :meth:`channel_bank`); rebuilt
        #: lazily after slice churn.
        self._bank: Optional[ChannelBank] = None
        self._bank_ready = False
        #: Persistent kernel arena + reused slot staging buffers for
        #: the scalar ``evaluate_slot`` route (lazily built), so the
        #: scalar hot path shares the batch engine's zero-allocation
        #: steady state.
        self._kernel_arena = None
        self._slot_cond = None
        self._slot_matrix = None
        self._slot_rates = None
        if slices:
            for spec in slices:
                self.add_slice(spec)

    # ---- slice lifecycle ---------------------------------------------

    def add_slice(self, spec: SliceSpec) -> None:
        """Create a slice end to end: SPGW-U pool, edge server, UEs."""
        if spec.name in self.slices:
            raise ValueError(f"slice {spec.name!r} already exists")
        self.slices[spec.name] = spec
        self.core.create_slice_pool(spec.name)
        self.edge.create_server(spec.name)
        self.channels[spec.name] = ChannelProcess(
            self.cfg.users_per_slice, self._rng)
        for _ in range(self.cfg.users_per_slice):
            imsi = f"00101{self._imsi_counter:010d}"
            self._imsi_counter += 1
            self.core.hss.provision(imsi, spec.name)
            self.core.attach(imsi)
        self._rows_cache = None
        self._bank = None
        self._bank_ready = False

    def remove_slice(self, name: str) -> None:
        if name not in self.slices:
            raise KeyError(f"no slice {name!r}")
        for session in list(self.core.sessions_of(name)):
            self.core.detach(session.imsi)
        self.core.delete_slice_pool(name)
        self.edge.delete_server(name)
        del self.channels[name]
        del self.slices[name]
        self._rows_cache = None
        self._bank = None
        self._bank_ready = False

    @property
    def slice_names(self) -> List[str]:
        return list(self.slices)

    # ---- scenario event hooks -----------------------------------------

    def set_transport_conditions(
            self, capacity_scale: Optional[float] = None,
            extra_latency_ms: Optional[float] = None,
            background_load_fraction: Optional[float] = None) -> None:
        """Inject transport-network faults (see scenario events).

        ``None`` leaves a condition unchanged; use
        :meth:`clear_transport_conditions` to restore nominal state.
        """
        self.fabric.set_conditions(
            capacity_scale=capacity_scale,
            extra_latency_ms=extra_latency_ms,
            background_load_fraction=background_load_fraction)

    def clear_transport_conditions(self) -> None:
        self.fabric.clear_conditions()

    # ---- constraint accounting ----------------------------------------

    @staticmethod
    def over_request(actions: Dict[str, np.ndarray]) -> Dict[str, float]:
        """Total requested share minus capacity (1.0) per resource kind.

        Positive entries mean the infrastructure is over-requested --
        the situation the action modifier / parameter coordinator
        resolve (paper Sec. 4).
        """
        totals = {kind: 0.0 for kind in CONSTRAINED_RESOURCES}
        for action in actions.values():
            arr = np.asarray(action, dtype=float)
            for kind, idx in CONSTRAINED_RESOURCES.items():
                totals[kind] += float(arr[idx])
        return {kind: total - 1.0 for kind, total in totals.items()}

    # ---- slot evaluation -----------------------------------------------

    def channel_bank(self) -> Optional[ChannelBank]:
        """This network's stacked channel state (built lazily).

        ``None`` when the channel population is non-uniform (see
        :meth:`ChannelBank.adopt`); callers then fall back to the
        per-channel loop.
        """
        if not self._bank_ready:
            self._bank = (ChannelBank.adopt(list(self.channels
                                                 .values()))
                          if self.channels else None)
            self._bank_ready = True
        return self._bank

    def step_channels(self) -> None:
        """Advance every slice's radio channel by one slot.

        One stacked AR(1) update over the channel bank; consumes the
        RNG identically to the historical per-channel loop (one
        ``(S, U)`` block draw == S sequential size-``U`` draws in
        slice order).
        """
        bank = self.channel_bank()
        if bank is not None:
            bank.step(self._rng)
            return
        for channel in self.channels.values():
            channel.step()

    def slot_rows(self):
        """This network's engine row layout (cached per slice set)."""
        from repro.engine.kernels import rows_for_network

        if self._rows_cache is None:
            self._rows_cache = rows_for_network(self, horizon=0)
        return self._rows_cache

    def gather_channel_state(self):
        """Stack every slice's per-user CQI and channel margin.

        Returns ``(cqi, margin)`` of shape ``(S, users_per_slice)`` in
        slice order.  The buffers are cached alongside the row layout
        and refilled per call, so the scalar hot path allocates
        nothing per slot (callers must consume them before the next
        ``evaluate_slot``).
        """
        shape = (len(self.channels), self.cfg.users_per_slice)
        if self._channel_buffers is None \
                or self._channel_buffers[0].shape != shape:
            self._channel_buffers = (np.empty(shape, dtype=np.intp),
                                     np.empty(shape))
        cqi, margin = self._channel_buffers
        bank = self.channel_bank()
        if bank is not None:
            np.subtract(bank.snr_db, bank.mean_snr_db, out=margin)
            return bank.cqi, margin
        for i, channel in enumerate(self.channels.values()):
            cqi[i] = channel.cqi
            margin[i] = channel.margins_db
        return cqi, margin

    def evaluate_slot(self, actions: Dict[str, np.ndarray],
                      arrival_rates: Dict[str, float]
                      ) -> Dict[str, SlotReport]:
        """Evaluate one configuration slot for all slices.

        Parameters
        ----------
        actions:
            Slice name -> 10-dim action in [0, 1].  Callers are expected
            to have already resolved over-requests (the domain managers
            raise otherwise -- see :mod:`repro.domains`); this method
            evaluates the network as configured.
        arrival_rates:
            Slice name -> realised arrivals per second this slot.
        """
        from repro.engine.arena import KernelArena
        from repro.engine.kernels import WorldConditions, evaluate_rows

        missing = set(self.slices) - set(actions)
        if missing:
            raise KeyError(f"missing actions for slices: {sorted(missing)}")
        names = list(self.slices)
        if self._kernel_arena is None:
            self._kernel_arena = KernelArena()
        if self._slot_matrix is None \
                or self._slot_matrix.shape[0] != len(names):
            self._slot_matrix = np.empty((len(names), NUM_ACTIONS))
            self._slot_rates = np.empty(len(names))
            self._slot_cond = WorldConditions.nominal(1)
        matrix = self._slot_matrix
        rates = self._slot_rates
        for i, name in enumerate(names):
            arr = np.asarray(actions[name], dtype=float)
            if arr.shape != (NUM_ACTIONS,):
                raise ValueError(
                    f"action must have shape ({NUM_ACTIONS},), "
                    f"got {arr.shape}")
            matrix[i] = arr
            rates[i] = float(arrival_rates.get(name, 0.0))
        rows = self.slot_rows()
        cqi, margin = self.gather_channel_state()
        out = evaluate_rows(
            rows, self._slot_cond.refresh([self.fabric]),
            matrix, rates, cqi, margin, arena=self._kernel_arena)
        self._apply_slot_state(matrix, out)
        return self.wrap_reports(rows, out, rates)

    def _apply_slot_state(self, matrix: np.ndarray, out: Dict) -> None:
        """Mirror the slot's side effects onto the substrate objects.

        The kernels are pure; transport path loads and container
        CPU/RAM shares are written back so diagnostic readers (tests,
        the domain managers, figure scripts) observe the same
        post-slot state the per-slice loop used to leave behind.
        """
        self.fabric.set_loads(
            out["path_loads"][0, :self.fabric.num_paths])
        for i, name in enumerate(self.slices):
            # decoded consumable shares (clip to [0, 1], MIN_SHARE floor)
            cpu = float(np.clip(matrix[i, 8], 0.01, 1.0))
            ram = float(np.clip(matrix[i, 9], 0.01, 1.0))
            self.core.set_slice_resources(
                name, cpu, ram * self.cfg.edge.total_ram_gb)
            self.edge.set_resources(name, cpu, ram)

    def wrap_reports(self, rows, out: Dict, rates: np.ndarray,
                     offset: int = 0) -> Dict[str, SlotReport]:
        """Build per-slice :class:`SlotReport` objects from kernel rows
        (``offset`` selects this network's rows in a multi-world
        bundle)."""
        reports: Dict[str, SlotReport] = {}
        for i, name in enumerate(self.slices):
            r = offset + i
            performance = AppPerformance(
                metric=rows.metrics[r],
                value=float(out["value"][r]),
                satisfaction=float(out["satisfaction"][r]),
                cost=float(out["cost"][r]))
            reports[name] = SlotReport(
                slice_name=name,
                performance=performance,
                usage=float(out["usage"][r]),
                arrival_rate=float(rates[i]),
                ul_capacity_bps=float(out["ul_capacity_bps"][r]),
                dl_capacity_bps=float(out["dl_capacity_bps"][r]),
                radio_usage=float(out["radio_usage"][r]),
                workload=float(out["workload"][r]),
                transport_latency_ms=float(
                    out["transport_latency_ms"][r]),
                core_latency_ms=float(out["core_latency_ms"][r]),
                edge_latency_ms=float(out["edge_latency_ms"][r]),
            )
        return reports

    # ---- diagnostics -----------------------------------------------------

    def ping_delay_ms(self, slice_name: str,
                      rng: Optional[np.random.Generator] = None) -> float:
        """One emulated ping between a UE and its SPGW-U (paper Fig. 16).

        RAN base latency both ways + per-hop transport forwarding +
        core control latency, with light jitter.
        """
        rng = rng if rng is not None else self._rng
        ran_rtt = 2.0 * self.cfg.ran.base_latency_ms
        hops = self.fabric.path_hops(0)
        tn_rtt = 2.0 * hops * self.cfg.transport.hop_latency_ms
        cn_rtt = 2.0 * self.cfg.core.base_latency_ms
        jitter = float(rng.gamma(2.0, 0.8))
        return ran_rtt + tn_rtt + cn_rtt + jitter
