"""End-to-end mobile-network simulator (testbed substitute).

The paper's evaluation runs on a hardware testbed (OAI eNB/gNB + USRP
radios, a Ruckus SDN switch under OpenDayLight, OpenAir-CN CUPS EPC and
Docker edge servers).  This subpackage reimplements every one of those
components as a fluid-flow/queueing simulator so the paper's agents see
the same action -> performance relationships:

* :mod:`repro.sim.phy` / :mod:`repro.sim.channel` -- CQI/MCS tables,
  MCS-offset retransmission behaviour, per-user channel processes;
* :mod:`repro.sim.ran` -- PRB/RBG MAC with RR/PF/Max-CQI schedulers;
* :mod:`repro.sim.transport` -- SDN switch fabric with OpenFlow-style
  meters and reserved paths on a networkx topology;
* :mod:`repro.sim.core_network` -- CUPS EPC (HSS/MME/SPGW-C/SPGW-U);
* :mod:`repro.sim.containers` / :mod:`repro.sim.edge` -- Docker-like
  container runtime and edge compute;
* :mod:`repro.sim.traffic` -- Telecom-Italia-style traces + Poisson
  arrival emulation;
* :mod:`repro.sim.apps` -- MAR / HVS / RDC application models;
* :mod:`repro.sim.network` / :mod:`repro.sim.env` -- the composed
  end-to-end network and the per-slice RL environment.
"""

from repro.sim.apps import AppPerformance, evaluate_app
from repro.sim.channel import ChannelProcess, UserChannel
from repro.sim.env import SliceEnv, SliceObservation
from repro.sim.network import EndToEndNetwork, SliceAllocation, SlotReport
from repro.sim.phy import (
    CQI_TABLE,
    MCS_TABLE,
    PhyModel,
    cqi_to_mcs,
    mcs_spectral_efficiency,
)
from repro.sim.traffic import PoissonArrivals, TelecomItaliaSynthesizer

__all__ = [
    "AppPerformance",
    "CQI_TABLE",
    "ChannelProcess",
    "EndToEndNetwork",
    "MCS_TABLE",
    "PhyModel",
    "PoissonArrivals",
    "SliceAllocation",
    "SliceEnv",
    "SliceObservation",
    "SlotReport",
    "TelecomItaliaSynthesizer",
    "UserChannel",
    "cqi_to_mcs",
    "evaluate_app",
    "mcs_spectral_efficiency",
]
