"""RL environments over the end-to-end network.

Implements the paper's MDP (Sec. 3):

* **State** -- current slot ``t``, last traffic ``f_{t-1}``, average
  channel ``h_{t-1}``, radio usage ``g_{t-1}``, VNF/edge workload
  ``w_{t-1}``, last reward and cost ``r_{t-1}, c_{t-1}``, the SLA
  threshold ``C_max`` and the cumulative episode cost.
* **Action** -- the ten resource dimensions in [0, 1].
* **Reward** -- negative total virtual-resource usage (Eq. 9).
* **Cost** -- SLA degradation ``1 - clip(p/P, 0, 1)`` (Eq. 10).

:class:`ScenarioSimulator` steps *all* slices jointly (the orchestrator
uses this); :class:`SliceEnv` is a single-slice view that drives the
other slices with background policies, used for individual agent
training and unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.config import ExperimentConfig, NUM_ACTIONS, slice_spec_for_app
from repro.sim.network import EndToEndNetwork, SlotReport
from repro.sim.traffic import (
    MAX_ENVELOPE,
    PoissonArrivals,
    TelecomItaliaSynthesizer,
)

#: Number of features in the observation vector.
STATE_DIM = 9

#: Measurement window (seconds) over which slot arrivals are realised.
ARRIVAL_WINDOW_S = 60.0

#: Event kinds that change transport-fabric conditions while active.
_CONDITION_EVENT_KINDS = ("link_degradation", "latency_surge",
                          "background_load")


@dataclass(frozen=True)
class SliceObservation:
    """The paper's state space for one slice, normalised to ~[0, 1]."""

    slot_fraction: float          # t / T
    traffic: float                # f_{t-1} / max arrival rate
    channel_quality: float        # h_{t-1}, mean CQI / 15
    radio_usage: float            # g_{t-1}
    workload: float               # w_{t-1}
    last_usage: float             # -r_{t-1} (usage form of the reward)
    last_cost: float              # c_{t-1}
    cost_threshold: float         # C_max
    cumulative_cost: float        # sum_m c_m / (T * C_max)

    def vector(self, out: Optional[np.ndarray] = None) -> np.ndarray:
        """The observation as a ``(STATE_DIM,)`` float array.

        ``out`` writes into a pre-allocated buffer instead of
        allocating -- the serving/engine hot paths reuse one buffer
        per slice per episode.  Callers that *store* observations
        across slots (rollout buffers) must keep the allocating form.
        """
        if out is None:
            out = np.empty(STATE_DIM)
        out[0] = self.slot_fraction
        out[1] = self.traffic
        out[2] = self.channel_quality
        out[3] = self.radio_usage
        out[4] = self.workload
        out[5] = self.last_usage
        out[6] = self.last_cost
        out[7] = self.cost_threshold
        out[8] = self.cumulative_cost
        return out


@dataclass(frozen=True)
class SliceStepResult:
    """Outcome of one slot for one slice."""

    observation: SliceObservation
    reward: float                 # -usage, paper Eq. 9
    cost: float                   # paper Eq. 10
    usage: float
    report: SlotReport


class ScenarioSimulator:
    """Joint multi-slice episode driver over :class:`EndToEndNetwork`.

    Beyond the paper's fixed world, the simulator executes a *scenario*:
    an optional traffic model replaces the built-in diurnal synthesizer
    per slice, and an event timeline (duck-typed objects carrying a
    ``kind`` tag -- see :mod:`repro.scenarios.events`) injects
    mid-episode network faults and slice churn.  Churn events manage
    *background* slices: the simulator provisions them end to end,
    drives them with a fixed allocation, and keeps them out of the
    per-slice results, so learning agents see only resource pressure.
    """

    def __init__(self, cfg: Optional[ExperimentConfig] = None,
                 rng: Optional[np.random.Generator] = None,
                 traffic_model=None,
                 events: Sequence = ()) -> None:
        self.cfg = cfg or ExperimentConfig()
        self._rng = rng if rng is not None else np.random.default_rng(
            self.cfg.seed)
        self.network = EndToEndNetwork(
            self.cfg.network, slices=self.cfg.slices, rng=self._rng)
        self._synth = TelecomItaliaSynthesizer(self.cfg.traffic,
                                               rng=self._rng)
        self._arrivals = PoissonArrivals(rng=self._rng)
        self.horizon = self.cfg.traffic.slots_per_episode
        self._traffic_model = traffic_model
        self._events = tuple(events)
        for event in self._events:
            if getattr(event, "kind", None) not in (
                    _CONDITION_EVENT_KINDS
                    + ("slice_arrival", "slice_departure")):
                raise ValueError(f"unknown event kind on {event!r}")
        self._active_events: List = []
        self._event_slices: Dict[str, np.ndarray] = {}
        self._traces: Dict[str, np.ndarray] = {}
        self._slot = 0
        self._day = 0
        self._cum_cost: Dict[str, float] = {}
        self._last: Dict[str, SliceObservation] = {}
        self._last_rates: Dict[str, float] = {}

    @property
    def slice_names(self) -> List[str]:
        """The managed (agent-facing) slices -- churn slices excluded."""
        return [name for name in self.network.slice_names
                if name not in self._event_slices]

    @property
    def background_slice_names(self) -> List[str]:
        """Slices attached by churn events, driven by the simulator."""
        return list(self._event_slices)

    @property
    def active_events(self) -> List:
        return list(self._active_events)

    @property
    def slot(self) -> int:
        return self._slot

    def traces(self) -> Dict[str, np.ndarray]:
        """This episode's per-slice traffic envelopes (copies).

        Generated at :meth:`reset`; the golden-digest regression test
        hashes these so workload refactors that silently change what
        every scenario *is* fail loudly.
        """
        return {name: trace.copy()
                for name, trace in self._traces.items()}

    # ---- event timeline --------------------------------------------------

    def _remove_event_slice(self, name: str) -> None:
        if name in self._event_slices:
            self.network.remove_slice(name)
            del self._event_slices[name]
            self._traces.pop(name, None)

    def _activate(self, event) -> None:
        if event.kind == "slice_arrival":
            name = event.slice_name
            if name in self.network.slices:
                raise ValueError(
                    f"slice arrival {name!r} collides with an "
                    "existing slice")
            spec = slice_spec_for_app(event.app, name=name,
                                      arrival_scale=event.arrival_scale)
            self.network.add_slice(spec)
            self._event_slices[name] = np.full(NUM_ACTIONS,
                                               event.action_level)
            self._traces[name] = np.ones(self.horizon)
            self._active_events.append(event)
        elif event.kind == "slice_departure":
            if (event.slice_name in self.network.slices
                    and event.slice_name not in self._event_slices):
                raise ValueError(
                    f"cannot depart managed slice {event.slice_name!r};"
                    " churn applies to background slices only")
            self._remove_event_slice(event.slice_name)
            # also retire the arrival so its own expiry is a no-op
            self._active_events = [
                e for e in self._active_events
                if not (e.kind == "slice_arrival"
                        and e.slice_name == event.slice_name)]
        else:
            self._active_events.append(event)

    def _deactivate(self, event) -> None:
        self._active_events.remove(event)
        if event.kind == "slice_arrival":
            self._remove_event_slice(event.slice_name)

    def _refresh_conditions(self) -> None:
        scale, extra, load = 1.0, 0.0, 0.0
        for event in self._active_events:
            if event.kind == "link_degradation":
                scale *= event.capacity_scale
            elif event.kind == "latency_surge":
                extra += event.extra_latency_ms
            elif event.kind == "background_load":
                load += event.load_fraction
        self.network.set_transport_conditions(
            capacity_scale=scale, extra_latency_ms=extra,
            background_load_fraction=min(load, 0.95))

    def apply_events(self) -> None:
        """Expire finished events and fire the ones due this slot.

        Called by :meth:`step` (and, world by world, by the batched
        engine -- event draws consume this world's RNG in the same
        order either way).
        """
        if not self._events:
            return
        for event in list(self._active_events):
            if self._slot >= event.end_slot(self.horizon):
                self._deactivate(event)
        for event in self._events:
            if (event.start_slot(self.horizon) == self._slot
                    and event not in self._active_events):
                self._activate(event)
        self._refresh_conditions()

    # ---- episode lifecycle -----------------------------------------------

    def _generate_traces(self) -> Dict[str, np.ndarray]:
        if self._traffic_model is None:
            return {
                name: self._synth.generate(day_of_week=self._day % 7)
                for name in self.slice_names
            }
        traces: Dict[str, np.ndarray] = {}
        for index, name in enumerate(self.slice_names):
            envelope = np.asarray(self._traffic_model.envelope(
                index, self.horizon, self._day, self.cfg.traffic,
                self._rng), dtype=float)
            if envelope.shape != (self.horizon,):
                raise ValueError(
                    f"traffic model returned shape {envelope.shape}, "
                    f"expected ({self.horizon},)")
            traces[name] = np.clip(envelope, 0.0, MAX_ENVELOPE)
        return traces

    def reset(self) -> Dict[str, SliceObservation]:
        """Start a new 24 h episode with fresh traffic traces.

        Restores the nominal world first: active events end, churn
        slices detach, and transport conditions clear -- the timeline
        replays relative to each episode.
        """
        self._slot = 0
        self._active_events = []
        for name in list(self._event_slices):
            self._remove_event_slice(name)
        self.network.clear_transport_conditions()
        self._traces = self._generate_traces()
        self._day += 1
        self._cum_cost = {name: 0.0 for name in self.slice_names}
        observations = {}
        for name in self.slice_names:
            spec = self.network.slices[name]
            channel = self.network.channels[name]
            observations[name] = SliceObservation(
                slot_fraction=0.0,
                traffic=float(self._traces[name][0]),
                channel_quality=channel.normalized_quality(),
                radio_usage=0.0,
                workload=0.0,
                last_usage=0.0,
                last_cost=0.0,
                cost_threshold=spec.sla.cost_threshold,
                cumulative_cost=0.0,
            )
        self._last = dict(observations)
        self._last_rates = {name: 0.0 for name in self.slice_names}
        return observations

    def realized_rate(self, name: str) -> float:
        """Poisson-realised arrivals/s of a slice at the current slot."""
        spec = self.network.slices[name]
        envelope = float(self._traces[name][self._slot])
        return self._arrivals.empirical_rate(
            envelope * spec.max_arrival_rate, ARRIVAL_WINDOW_S)

    def step(self, actions: Mapping[str, np.ndarray]
             ) -> Dict[str, SliceStepResult]:
        """Advance one slot with every slice's action.

        Raises once the episode horizon is exceeded; callers check
        :attr:`done` (or episode length) to reset.
        """
        if self._slot >= self.horizon:
            raise RuntimeError("episode finished; call reset()")
        self.apply_events()
        self.network.step_channels()
        rates = {name: self.realized_rate(name)
                 for name in self.network.slice_names}
        joint = {name: np.asarray(action, dtype=float)
                 for name, action in actions.items()}
        for name, action in self._event_slices.items():
            joint.setdefault(name, action)
        reports = self.network.evaluate_slot(joint, rates)
        self._slot += 1
        results: Dict[str, SliceStepResult] = {}
        for name, report in reports.items():
            if name in self._event_slices:
                continue    # background churn slice: not reported
            spec = self.network.slices[name]
            self._cum_cost[name] += report.cost
            horizon_cost = self.horizon * spec.sla.cost_threshold
            obs = SliceObservation(
                slot_fraction=self._slot / self.horizon,
                traffic=rates[name] / spec.max_arrival_rate,
                channel_quality=self.network.channels[name]
                .normalized_quality(),
                radio_usage=report.radio_usage,
                workload=report.workload,
                last_usage=report.usage,
                last_cost=report.cost,
                cost_threshold=spec.sla.cost_threshold,
                cumulative_cost=self._cum_cost[name] / horizon_cost,
            )
            self._last[name] = obs
            results[name] = SliceStepResult(
                observation=obs, reward=-report.usage,
                cost=report.cost, usage=report.usage, report=report)
        self._last_rates = {name: rates[name] for name in results}
        return results

    @property
    def done(self) -> bool:
        return self._slot >= self.horizon

    def cumulative_cost(self, name: str) -> float:
        return self._cum_cost[name]

    def mean_cost(self, name: str) -> float:
        """Mean per-slot cost so far this episode."""
        if self._slot == 0:
            return 0.0
        return self._cum_cost[name] / self._slot

    def sla_violated(self, name: str) -> bool:
        """Episode-level SLA check: mean cost above ``C_max``."""
        spec = self.network.slices[name]
        return self.mean_cost(name) > spec.sla.cost_threshold


#: A background policy maps (slice_name, observation) -> action.
BackgroundPolicy = Callable[[str, SliceObservation], np.ndarray]


def constant_background(action: np.ndarray) -> BackgroundPolicy:
    """Background policy that always plays a fixed allocation."""
    action = np.asarray(action, dtype=float)
    if action.shape != (NUM_ACTIONS,):
        raise ValueError(f"action must have {NUM_ACTIONS} dims")

    def policy(_name: str, _obs: SliceObservation) -> np.ndarray:
        return action.copy()

    return policy


class SliceEnv:
    """Single-slice gym-like environment.

    Wraps a :class:`ScenarioSimulator`: the focal slice takes the
    caller's action while every other slice follows ``background``.
    """

    def __init__(self, simulator: ScenarioSimulator, slice_name: str,
                 background: Optional[BackgroundPolicy] = None) -> None:
        if slice_name not in simulator.slice_names:
            raise KeyError(f"no slice {slice_name!r} in simulator")
        self.simulator = simulator
        self.slice_name = slice_name
        default = np.full(NUM_ACTIONS, 0.15)
        self.background = (background if background is not None
                           else constant_background(default))
        self._observations: Dict[str, SliceObservation] = {}

    @property
    def state_dim(self) -> int:
        return STATE_DIM

    @property
    def action_dim(self) -> int:
        return NUM_ACTIONS

    @property
    def horizon(self) -> int:
        return self.simulator.horizon

    def reset(self) -> np.ndarray:
        self._observations = self.simulator.reset()
        return self._observations[self.slice_name].vector()

    def step(self, action: np.ndarray):
        """Returns ``(obs_vector, reward, cost, done, result)``."""
        actions = {}
        for name in self.simulator.slice_names:
            if name == self.slice_name:
                actions[name] = np.asarray(action, dtype=float)
            else:
                actions[name] = self.background(
                    name, self._observations[name])
        results = self.simulator.step(actions)
        for name, result in results.items():
            self._observations[name] = result.observation
        focal = results[self.slice_name]
        return (focal.observation.vector(), focal.reward, focal.cost,
                self.simulator.done, focal)
