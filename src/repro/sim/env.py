"""RL environments over the end-to-end network.

Implements the paper's MDP (Sec. 3):

* **State** -- current slot ``t``, last traffic ``f_{t-1}``, average
  channel ``h_{t-1}``, radio usage ``g_{t-1}``, VNF/edge workload
  ``w_{t-1}``, last reward and cost ``r_{t-1}, c_{t-1}``, the SLA
  threshold ``C_max`` and the cumulative episode cost.
* **Action** -- the ten resource dimensions in [0, 1].
* **Reward** -- negative total virtual-resource usage (Eq. 9).
* **Cost** -- SLA degradation ``1 - clip(p/P, 0, 1)`` (Eq. 10).

:class:`ScenarioSimulator` steps *all* slices jointly (the orchestrator
uses this); :class:`SliceEnv` is a single-slice view that drives the
other slices with background policies, used for individual agent
training and unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.config import ExperimentConfig, NUM_ACTIONS
from repro.sim.network import EndToEndNetwork, SlotReport
from repro.sim.traffic import PoissonArrivals, TelecomItaliaSynthesizer

#: Number of features in the observation vector.
STATE_DIM = 9

#: Measurement window (seconds) over which slot arrivals are realised.
ARRIVAL_WINDOW_S = 60.0


@dataclass(frozen=True)
class SliceObservation:
    """The paper's state space for one slice, normalised to ~[0, 1]."""

    slot_fraction: float          # t / T
    traffic: float                # f_{t-1} / max arrival rate
    channel_quality: float        # h_{t-1}, mean CQI / 15
    radio_usage: float            # g_{t-1}
    workload: float               # w_{t-1}
    last_usage: float             # -r_{t-1} (usage form of the reward)
    last_cost: float              # c_{t-1}
    cost_threshold: float         # C_max
    cumulative_cost: float        # sum_m c_m / (T * C_max)

    def vector(self) -> np.ndarray:
        return np.array([
            self.slot_fraction, self.traffic, self.channel_quality,
            self.radio_usage, self.workload, self.last_usage,
            self.last_cost, self.cost_threshold, self.cumulative_cost,
        ])


@dataclass(frozen=True)
class SliceStepResult:
    """Outcome of one slot for one slice."""

    observation: SliceObservation
    reward: float                 # -usage, paper Eq. 9
    cost: float                   # paper Eq. 10
    usage: float
    report: SlotReport


class ScenarioSimulator:
    """Joint multi-slice episode driver over :class:`EndToEndNetwork`."""

    def __init__(self, cfg: Optional[ExperimentConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cfg = cfg or ExperimentConfig()
        self._rng = rng if rng is not None else np.random.default_rng(
            self.cfg.seed)
        self.network = EndToEndNetwork(
            self.cfg.network, slices=self.cfg.slices, rng=self._rng)
        self._synth = TelecomItaliaSynthesizer(self.cfg.traffic,
                                               rng=self._rng)
        self._arrivals = PoissonArrivals(rng=self._rng)
        self.horizon = self.cfg.traffic.slots_per_episode
        self._traces: Dict[str, np.ndarray] = {}
        self._slot = 0
        self._day = 0
        self._cum_cost: Dict[str, float] = {}
        self._last: Dict[str, SliceObservation] = {}
        self._last_rates: Dict[str, float] = {}

    @property
    def slice_names(self) -> List[str]:
        return self.network.slice_names

    @property
    def slot(self) -> int:
        return self._slot

    def reset(self) -> Dict[str, SliceObservation]:
        """Start a new 24 h episode with fresh traffic traces."""
        self._slot = 0
        self._traces = {
            name: self._synth.generate(day_of_week=self._day % 7)
            for name in self.slice_names
        }
        self._day += 1
        self._cum_cost = {name: 0.0 for name in self.slice_names}
        observations = {}
        for name in self.slice_names:
            spec = self.network.slices[name]
            channel = self.network.channels[name]
            observations[name] = SliceObservation(
                slot_fraction=0.0,
                traffic=float(self._traces[name][0]),
                channel_quality=channel.normalized_quality(),
                radio_usage=0.0,
                workload=0.0,
                last_usage=0.0,
                last_cost=0.0,
                cost_threshold=spec.sla.cost_threshold,
                cumulative_cost=0.0,
            )
        self._last = dict(observations)
        self._last_rates = {name: 0.0 for name in self.slice_names}
        return observations

    def realized_rate(self, name: str) -> float:
        """Poisson-realised arrivals/s of a slice at the current slot."""
        spec = self.network.slices[name]
        envelope = float(self._traces[name][self._slot])
        return self._arrivals.empirical_rate(
            envelope * spec.max_arrival_rate, ARRIVAL_WINDOW_S)

    def step(self, actions: Mapping[str, np.ndarray]
             ) -> Dict[str, SliceStepResult]:
        """Advance one slot with every slice's action.

        Raises once the episode horizon is exceeded; callers check
        :attr:`done` (or episode length) to reset.
        """
        if self._slot >= self.horizon:
            raise RuntimeError("episode finished; call reset()")
        self.network.step_channels()
        rates = {name: self.realized_rate(name)
                 for name in self.slice_names}
        reports = self.network.evaluate_slot(dict(actions), rates)
        self._slot += 1
        results: Dict[str, SliceStepResult] = {}
        for name, report in reports.items():
            spec = self.network.slices[name]
            self._cum_cost[name] += report.cost
            horizon_cost = self.horizon * spec.sla.cost_threshold
            next_traffic = (
                float(self._traces[name][self._slot])
                if self._slot < self.horizon
                else float(self._traces[name][-1]))
            obs = SliceObservation(
                slot_fraction=self._slot / self.horizon,
                traffic=rates[name] / spec.max_arrival_rate,
                channel_quality=self.network.channels[name]
                .normalized_quality(),
                radio_usage=report.radio_usage,
                workload=report.workload,
                last_usage=report.usage,
                last_cost=report.cost,
                cost_threshold=spec.sla.cost_threshold,
                cumulative_cost=self._cum_cost[name] / horizon_cost,
            )
            self._last[name] = obs
            results[name] = SliceStepResult(
                observation=obs, reward=-report.usage,
                cost=report.cost, usage=report.usage, report=report)
        self._last_rates = rates
        return results

    @property
    def done(self) -> bool:
        return self._slot >= self.horizon

    def cumulative_cost(self, name: str) -> float:
        return self._cum_cost[name]

    def mean_cost(self, name: str) -> float:
        """Mean per-slot cost so far this episode."""
        if self._slot == 0:
            return 0.0
        return self._cum_cost[name] / self._slot

    def sla_violated(self, name: str) -> bool:
        """Episode-level SLA check: mean cost above ``C_max``."""
        spec = self.network.slices[name]
        return self.mean_cost(name) > spec.sla.cost_threshold


#: A background policy maps (slice_name, observation) -> action.
BackgroundPolicy = Callable[[str, SliceObservation], np.ndarray]


def constant_background(action: np.ndarray) -> BackgroundPolicy:
    """Background policy that always plays a fixed allocation."""
    action = np.asarray(action, dtype=float)
    if action.shape != (NUM_ACTIONS,):
        raise ValueError(f"action must have {NUM_ACTIONS} dims")

    def policy(_name: str, _obs: SliceObservation) -> np.ndarray:
        return action.copy()

    return policy


class SliceEnv:
    """Single-slice gym-like environment.

    Wraps a :class:`ScenarioSimulator`: the focal slice takes the
    caller's action while every other slice follows ``background``.
    """

    def __init__(self, simulator: ScenarioSimulator, slice_name: str,
                 background: Optional[BackgroundPolicy] = None) -> None:
        if slice_name not in simulator.slice_names:
            raise KeyError(f"no slice {slice_name!r} in simulator")
        self.simulator = simulator
        self.slice_name = slice_name
        default = np.full(NUM_ACTIONS, 0.15)
        self.background = (background if background is not None
                           else constant_background(default))
        self._observations: Dict[str, SliceObservation] = {}

    @property
    def state_dim(self) -> int:
        return STATE_DIM

    @property
    def action_dim(self) -> int:
        return NUM_ACTIONS

    @property
    def horizon(self) -> int:
        return self.simulator.horizon

    def reset(self) -> np.ndarray:
        self._observations = self.simulator.reset()
        return self._observations[self.slice_name].vector()

    def step(self, action: np.ndarray):
        """Returns ``(obs_vector, reward, cost, done, result)``."""
        actions = {}
        for name in self.simulator.slice_names:
            if name == self.slice_name:
                actions[name] = np.asarray(action, dtype=float)
            else:
                actions[name] = self.background(
                    name, self._observations[name])
        results = self.simulator.step(actions)
        for name, result in results.items():
            self._observations[name] = result.observation
        focal = results[self.slice_name]
        return (focal.observation.vector(), focal.reward, focal.cost,
                self.simulator.done, focal)
