"""Transport network: SDN switch fabric, meters, reserved paths.

Substitutes the Ruckus ICX 7150-C12P + OpenDayLight TDM: the topology is
a networkx multigraph between the RAN aggregation point and the core,
offering ``num_paths`` pre-computed paths of increasing hop count.  The
``U_b`` action maps to an OpenFlow-meter-style rate cap ("the meters API
limits the maximum data rate of associated flows") and ``U_l`` selects
the reserved path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.config import TransportConfig


@dataclass(frozen=True)
class TransportReport:
    """Per-slot transport outcome for one slice."""

    path_index: int
    hops: int
    rate_cap_bps: float
    achieved_rate_bps: float
    latency_ms: float


def build_topology(cfg: TransportConfig) -> nx.MultiGraph:
    """Construct the switch fabric between ``ran`` and ``core``.

    Path ``k`` is a chain of ``2 + extra_hops[k]`` links through
    dedicated intermediate switches, all at ``link_capacity_bps``.
    """
    graph = nx.MultiGraph()
    graph.add_node("ran")
    graph.add_node("core")
    for k, extra in enumerate(cfg.path_extra_hops):
        hops = 2 + extra
        prev = "ran"
        for h in range(hops - 1):
            node = f"sw{k}_{h}"
            graph.add_node(node)
            graph.add_edge(prev, node, path=k,
                           capacity=cfg.link_capacity_bps)
            prev = node
        graph.add_edge(prev, "core", path=k,
                       capacity=cfg.link_capacity_bps)
    return graph


class TransportFabric:
    """Stateful transport network shared by all slices.

    Tracks per-path reserved load so queueing latency grows as a path
    approaches saturation (M/M/1-style), and enforces per-slice meters.
    """

    def __init__(self, cfg: Optional[TransportConfig] = None) -> None:
        self.cfg = cfg or TransportConfig()
        self.graph = build_topology(self.cfg)
        self._path_hops: List[int] = [
            2 + extra for extra in self.cfg.path_extra_hops]
        self._path_load_bps = np.zeros(self.cfg.num_paths)
        # Mutable link conditions, driven by scenario events (fault
        # injection): a capacity degradation factor, added forwarding
        # latency, and cross-traffic that loads every path before the
        # slices reserve anything.
        self.capacity_scale = 1.0
        self.extra_latency_ms = 0.0
        self.background_load_fraction = 0.0

    @property
    def num_paths(self) -> int:
        return self.cfg.num_paths

    # ---- scenario event hooks -----------------------------------------

    def set_conditions(self, capacity_scale: Optional[float] = None,
                       extra_latency_ms: Optional[float] = None,
                       background_load_fraction: Optional[float] = None
                       ) -> None:
        """Update the fabric's fault-injection state (``None`` = keep).

        ``capacity_scale`` in (0, 1] derates every link (e.g. a port
        renegotiating to a lower speed), ``extra_latency_ms`` models a
        forwarding-plane latency surge, and ``background_load_fraction``
        in [0, 1) pre-loads each path with unmanaged cross-traffic.
        """
        if capacity_scale is not None:
            if not 0.0 < capacity_scale <= 1.0:
                raise ValueError("capacity_scale must be in (0, 1]")
            self.capacity_scale = float(capacity_scale)
        if extra_latency_ms is not None:
            if extra_latency_ms < 0:
                raise ValueError("extra_latency_ms must be >= 0")
            self.extra_latency_ms = float(extra_latency_ms)
        if background_load_fraction is not None:
            if not 0.0 <= background_load_fraction < 1.0:
                raise ValueError(
                    "background_load_fraction must be in [0, 1)")
            self.background_load_fraction = float(background_load_fraction)

    def clear_conditions(self) -> None:
        """Restore nominal link conditions (no active events)."""
        self.capacity_scale = 1.0
        self.extra_latency_ms = 0.0
        self.background_load_fraction = 0.0

    def effective_capacity_bps(self) -> float:
        """Per-link capacity under the current degradation factor."""
        return self.cfg.link_capacity_bps * self.capacity_scale

    def path_index_from_action(self, value: float) -> int:
        """Map the continuous ``U_l`` action in [0, 1] to a path index."""
        idx = int(np.clip(value * self.num_paths, 0,
                          self.num_paths - 1))
        return idx

    def path_hops(self, path_index: int) -> int:
        if not 0 <= path_index < self.num_paths:
            raise ValueError(f"path index out of range: {path_index}")
        return self._path_hops[path_index]

    def reset_loads(self) -> None:
        """Reset per-path load to the background level for a new slot."""
        self._path_load_bps.fill(self.background_load_fraction
                                 * self.effective_capacity_bps())

    def reserve(self, path_index: int, rate_bps: float) -> None:
        """Account a slice's metered reservation on a path."""
        if rate_bps < 0:
            raise ValueError("rate_bps must be non-negative")
        self._path_load_bps[path_index] += rate_bps

    def set_loads(self, loads_bps: np.ndarray) -> None:
        """Overwrite this slot's per-path loads in one shot.

        The engine kernels compute every path's reserved load as one
        array (background + all slices' meters); both engines write
        the result back here so ``path_utilization`` and other
        readers observe the same post-slot state the per-slice
        ``reserve`` loop used to leave behind.
        """
        loads = np.asarray(loads_bps, dtype=float)
        if loads.shape != self._path_load_bps.shape:
            raise ValueError(
                f"loads must have shape {self._path_load_bps.shape}, "
                f"got {loads.shape}")
        self._path_load_bps[:] = loads

    def path_utilization(self, path_index: int) -> float:
        return float(self._path_load_bps[path_index]
                     / self.effective_capacity_bps())

    def evaluate(self, path_index: int, meter_share: float,
                 offered_bps: float) -> TransportReport:
        """Carry a slice's offered load over its reserved path.

        ``meter_share`` in [0, 1] scales the OpenFlow meter cap; the
        achieved rate is ``min(offered, cap)``.  Latency = per-hop
        forwarding plus an M/M/1 queueing term on the path utilisation
        (keeps latency finite but sharply increasing near saturation).
        """
        meter_share = float(np.clip(meter_share, 0.0, 1.0))
        cap = meter_share * self.effective_capacity_bps()
        achieved = min(offered_bps, cap)
        hops = self.path_hops(path_index)
        utilization = min(self.path_utilization(path_index), 0.99)
        queueing_ms = (self.cfg.hop_latency_ms * utilization
                       / (1.0 - utilization))
        latency = (hops * self.cfg.hop_latency_ms + queueing_ms
                   + self.extra_latency_ms)
        if cap <= 0 and offered_bps > 0:
            latency = float("inf")
        return TransportReport(
            path_index=path_index, hops=hops, rate_cap_bps=cap,
            achieved_rate_bps=float(achieved), latency_ms=float(latency))

    def shortest_path_nodes(self, path_index: int) -> List[str]:
        """The node sequence of a reserved path (for inspection/tests)."""
        edges = [(u, v) for u, v, data in self.graph.edges(data=True)
                 if data["path"] == path_index]
        subgraph = nx.Graph()
        subgraph.add_edges_from(edges)
        return nx.shortest_path(subgraph, "ran", "core")
