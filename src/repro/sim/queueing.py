"""Shared queueing-latency model with a smooth overload regime.

All pipeline stages (RAN partitions, SPGW-U packet processing, edge
compute) use the same delay law: M/M/1 ``service / (1 - rho)`` below a
knee utilisation, then a linear finite-buffer overload regime whose
slope matches the M/M/1 derivative at the knee.  Real queues degrade
under overload rather than becoming instantaneously infinite, and the
smooth mapping gives learning agents a usable gradient across the
overload boundary.
"""

from __future__ import annotations

#: Utilisation where M/M/1 hands over to the linear overload regime.
RHO_KNEE = 0.95


def queueing_latency_ms(service_ms: float, rho: float) -> float:
    """Sojourn time of a processor-sharing stage at utilisation rho."""
    if service_ms < 0:
        raise ValueError("service_ms must be non-negative")
    if rho < 0:
        rho = 0.0
    if rho < RHO_KNEE:
        return service_ms / (1.0 - rho)
    knee_latency = service_ms / (1.0 - RHO_KNEE)
    slope = service_ms / (1.0 - RHO_KNEE) ** 2
    return knee_latency + slope * (rho - RHO_KNEE)
