"""Per-user radio channel processes.

The testbed keeps phones and antennas stationary inside a Faraday cage,
yet the paper reports "moderate variations of radio channel conditions
of slice users" (Sec. 9).  We model each user's wideband SNR as a
first-order Gauss-Markov (AR(1)) process around a per-user mean drawn
from a log-distance shadowing distribution, quantised to CQI with the
standard reporting thresholds.

State is stored struct-of-arrays (one mean/SNR/CQI array per process)
so the batched engine (:mod:`repro.engine`) can advance and read whole
populations with array ops; :attr:`ChannelProcess.users` remains as a
per-user snapshot view for diagnostic callers.  The RNG consumption is
bit-compatible with the historical per-user scalar draws: a size-``n``
``standard_normal`` call consumes the generator exactly like ``n``
scalar draws, so seeds reproduce the same channels as before the
struct-of-arrays refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.sim.phy import CQI_SNR_THRESHOLDS_DB, NUM_CQI


@dataclass
class UserChannel:
    """Snapshot of one user's channel (see :attr:`ChannelProcess.users`)."""

    mean_snr_db: float
    snr_db: float
    cqi: int


def snr_to_cqi_array(snr_db: np.ndarray) -> np.ndarray:
    """Vectorised SNR -> CQI quantisation (1..15), any shape."""
    cqi = np.searchsorted(CQI_SNR_THRESHOLDS_DB, snr_db, side="right")
    return np.clip(cqi, 1, NUM_CQI)


class ChannelProcess:
    """AR(1) SNR evolution for a population of users.

    Parameters
    ----------
    num_users:
        Population size (one entry per UE).
    mean_snr_db / snr_spread_db:
        Mean and shadowing spread of the per-user average SNR.
    correlation:
        AR(1) coefficient per slot; 0.9 gives slowly-varying channels at
        the 15-minute configuration interval.
    innovation_std_db:
        Standard deviation of the AR(1) innovation.
    """

    def __init__(self, num_users: int, rng: np.random.Generator,
                 mean_snr_db: float = 18.0, snr_spread_db: float = 4.0,
                 correlation: float = 0.9,
                 innovation_std_db: float = 1.5) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if not 0.0 <= correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")
        self._rng = rng
        self.num_users = num_users
        self.correlation = correlation
        self.innovation_std_db = innovation_std_db
        # The historical scalar path drew, per user, mean then snr --
        # an interleaved stream of standard normals.  One array draw
        # consumes the generator identically; the even entries scale
        # into means, the odd ones into initial SNRs.
        z = rng.standard_normal(2 * num_users)
        self.mean_snr_db = mean_snr_db + snr_spread_db * z[0::2]
        self.snr_db = self.mean_snr_db + innovation_std_db * z[1::2]
        self.cqi = snr_to_cqi_array(self.snr_db)

    @property
    def users(self) -> List[UserChannel]:
        """Per-user snapshot views (read-only; state lives in arrays)."""
        return [UserChannel(mean_snr_db=float(self.mean_snr_db[i]),
                            snr_db=float(self.snr_db[i]),
                            cqi=int(self.cqi[i]))
                for i in range(self.num_users)]

    def step(self) -> None:
        """Advance every user's channel by one configuration slot."""
        self.advance(self._rng.standard_normal(self.num_users))

    def advance(self, innovations: np.ndarray) -> None:
        """Apply one slot of AR(1) evolution from given standard-normal
        innovations (the batched engine pre-draws these per world so
        the per-world stream matches the scalar engine exactly)."""
        rho = self.correlation
        sigma = self.innovation_std_db * np.sqrt(1.0 - rho ** 2)
        self.snr_db = ((self.mean_snr_db
                        + rho * (self.snr_db - self.mean_snr_db))
                       + sigma * innovations)
        self.cqi = snr_to_cqi_array(self.snr_db)

    @property
    def cqis(self) -> np.ndarray:
        return np.asarray(self.cqi, dtype=int)

    @property
    def snrs_db(self) -> np.ndarray:
        return np.asarray(self.snr_db)

    @property
    def margins_db(self) -> np.ndarray:
        """Per-user channel margin (current SNR minus per-user mean)."""
        return self.snr_db - self.mean_snr_db

    def average_cqi(self) -> float:
        """Mean reported CQI -- the ``h_{t-1}`` state feature."""
        return float(self.cqis.mean())

    def normalized_quality(self) -> float:
        """Average CQI scaled to [0, 1] for state vectors."""
        return self.average_cqi() / NUM_CQI
