"""Per-user radio channel processes.

The testbed keeps phones and antennas stationary inside a Faraday cage,
yet the paper reports "moderate variations of radio channel conditions
of slice users" (Sec. 9).  We model each user's wideband SNR as a
first-order Gauss-Markov (AR(1)) process around a per-user mean drawn
from a log-distance shadowing distribution, quantised to CQI with the
standard reporting thresholds.

State is stored struct-of-arrays (one mean/SNR/CQI array per process)
so the batched engine (:mod:`repro.engine`) can advance and read whole
populations with array ops; :attr:`ChannelProcess.users` remains as a
per-user snapshot view for diagnostic callers.  The RNG consumption is
bit-compatible with the historical per-user scalar draws: a size-``n``
``standard_normal`` call consumes the generator exactly like ``n``
scalar draws, so seeds reproduce the same channels as before the
struct-of-arrays refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.phy import CQI_SNR_THRESHOLDS_DB, NUM_CQI


@dataclass
class UserChannel:
    """Snapshot of one user's channel (see :attr:`ChannelProcess.users`)."""

    mean_snr_db: float
    snr_db: float
    cqi: int


def snr_to_cqi_array(snr_db: np.ndarray) -> np.ndarray:
    """Vectorised SNR -> CQI quantisation (1..15), any shape."""
    cqi = np.searchsorted(CQI_SNR_THRESHOLDS_DB, snr_db, side="right")
    return np.clip(cqi, 1, NUM_CQI)


def _ar1_step(snr_db: np.ndarray, mean_snr_db: np.ndarray,
              innovations: np.ndarray, correlation: float,
              innovation_std_db: float, cqi_out: np.ndarray) -> None:
    """One slot of AR(1) evolution, fully in place.

    Writes the new SNR into ``snr_db`` (and the quantisation into
    ``cqi_out``); ``innovations`` is consumed as scratch.  The op
    sequence is the historical ``mean + rho * (snr - mean) + sigma *
    z`` with the identical association -- in-place outputs and
    commuted scalar factors change no bits.
    """
    rho = correlation
    sigma = innovation_std_db * np.sqrt(1.0 - rho ** 2)
    np.subtract(snr_db, mean_snr_db, out=snr_db)
    np.multiply(snr_db, rho, out=snr_db)
    np.add(snr_db, mean_snr_db, out=snr_db)
    np.multiply(innovations, sigma, out=innovations)
    np.add(snr_db, innovations, out=snr_db)
    np.clip(np.searchsorted(CQI_SNR_THRESHOLDS_DB, snr_db,
                            side="right"),
            1, NUM_CQI, out=cqi_out)


class ChannelProcess:
    """AR(1) SNR evolution for a population of users.

    Parameters
    ----------
    num_users:
        Population size (one entry per UE).
    mean_snr_db / snr_spread_db:
        Mean and shadowing spread of the per-user average SNR.
    correlation:
        AR(1) coefficient per slot; 0.9 gives slowly-varying channels at
        the 15-minute configuration interval.
    innovation_std_db:
        Standard deviation of the AR(1) innovation.
    """

    def __init__(self, num_users: int, rng: np.random.Generator,
                 mean_snr_db: float = 18.0, snr_spread_db: float = 4.0,
                 correlation: float = 0.9,
                 innovation_std_db: float = 1.5) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if not 0.0 <= correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")
        self._rng = rng
        self.num_users = num_users
        self.correlation = correlation
        self.innovation_std_db = innovation_std_db
        # The historical scalar path drew, per user, mean then snr --
        # an interleaved stream of standard normals.  One array draw
        # consumes the generator identically; the even entries scale
        # into means, the odd ones into initial SNRs.
        z = rng.standard_normal(2 * num_users)
        self.mean_snr_db = mean_snr_db + snr_spread_db * z[0::2]
        self.snr_db = self.mean_snr_db + innovation_std_db * z[1::2]
        self.cqi = snr_to_cqi_array(self.snr_db)

    @property
    def users(self) -> List[UserChannel]:
        """Per-user snapshot views (read-only; state lives in arrays)."""
        return [UserChannel(mean_snr_db=float(self.mean_snr_db[i]),
                            snr_db=float(self.snr_db[i]),
                            cqi=int(self.cqi[i]))
                for i in range(self.num_users)]

    def step(self) -> None:
        """Advance every user's channel by one configuration slot."""
        self.advance(self._rng.standard_normal(self.num_users))

    def advance(self, innovations: np.ndarray) -> None:
        """Apply one slot of AR(1) evolution from given standard-normal
        innovations (the batched engine pre-draws these per world so
        the per-world stream matches the scalar engine exactly).

        Updates state in place -- ``snr_db``/``cqi`` keep their
        identity, so :class:`ChannelBank` row views stay live -- and
        consumes ``innovations`` as scratch.
        """
        innovations = np.asarray(innovations, dtype=np.float64)
        _ar1_step(self.snr_db, self.mean_snr_db, innovations,
                  self.correlation, self.innovation_std_db, self.cqi)

    @property
    def cqis(self) -> np.ndarray:
        return np.asarray(self.cqi, dtype=int)

    @property
    def snrs_db(self) -> np.ndarray:
        return np.asarray(self.snr_db)

    @property
    def margins_db(self) -> np.ndarray:
        """Per-user channel margin (current SNR minus per-user mean)."""
        return self.snr_db - self.mean_snr_db

    def average_cqi(self) -> float:
        """Mean reported CQI -- the ``h_{t-1}`` state feature."""
        return float(self.cqis.mean())

    def normalized_quality(self) -> float:
        """Average CQI scaled to [0, 1] for state vectors."""
        return self.average_cqi() / NUM_CQI


class ChannelBank:
    """One network's channels as stacked ``(S, U)`` state arrays.

    Adopting a bank moves every :class:`ChannelProcess`'s state into
    rows of three shared arrays (the process attributes become row
    views, so per-channel readers keep working), after which
    :meth:`step` advances the whole population with a handful of array
    ops and **one** ``standard_normal`` block -- which consumes the
    shared generator exactly like the historical per-channel size-``U``
    draws in slice order (the block/sequential stream equivalence is
    pinned by ``tests/test_engine.py``).  This is what makes
    channel stepping O(1) Python work per network per slot instead of
    O(slices).

    Built by :meth:`adopt`, which returns ``None`` (no bank, callers
    keep the per-channel loop) when the population is not uniform:
    differing user counts, AR(1) parameters, or generators.
    """

    def __init__(self, channels: Sequence[ChannelProcess]) -> None:
        first = channels[0]
        self.channels = list(channels)
        self.correlation = first.correlation
        self.innovation_std_db = first.innovation_std_db
        num = len(channels)
        users = first.num_users
        self._z = np.empty((num, users))
        self.repoint(np.empty((num, users)), np.empty((num, users)),
                     np.empty((num, users), dtype=np.intp))

    def repoint(self, mean_snr_db: np.ndarray, snr_db: np.ndarray,
                cqi: np.ndarray) -> None:
        """Move this bank's state into caller-owned ``(S, U)`` views.

        Copies the current values in, then re-points the bank *and*
        every adopted channel at the new storage -- this is how
        :class:`FleetChannelBank` stacks many networks' banks into one
        contiguous block without breaking per-channel readers.
        """
        for i, channel in enumerate(self.channels):
            mean_snr_db[i] = channel.mean_snr_db
            snr_db[i] = channel.snr_db
            cqi[i] = channel.cqi
            channel.mean_snr_db = mean_snr_db[i]
            channel.snr_db = snr_db[i]
            channel.cqi = cqi[i]
        self.mean_snr_db = mean_snr_db
        self.snr_db = snr_db
        self.cqi = cqi

    @classmethod
    def adopt(cls, channels: Sequence[ChannelProcess]
              ) -> Optional["ChannelBank"]:
        """Stack ``channels`` into a bank, or ``None`` if non-uniform."""
        channels = list(channels)
        if not channels:
            return None
        first = channels[0]
        for channel in channels[1:]:
            if (channel.num_users != first.num_users
                    or channel.correlation != first.correlation
                    or channel.innovation_std_db
                    != first.innovation_std_db
                    or channel._rng is not first._rng):
                return None
        return cls(channels)

    def step(self, rng: np.random.Generator) -> None:
        """Advance every channel by one slot (one block draw)."""
        rng.standard_normal(out=self._z)
        _ar1_step(self.snr_db, self.mean_snr_db, self._z,
                  self.correlation, self.innovation_std_db, self.cqi)


class FleetChannelBank:
    """Many networks' channel banks stacked into one ``(R, U)`` block.

    The batch engine steps B worlds per slot; with per-network banks
    that is still B Python-level AR(1) updates on small ``(S, U)``
    arrays -- at B=128 the dispatch overhead dominates the actual
    math.  The fleet bank re-points every world's bank (and, through
    :meth:`ChannelBank.repoint`, every channel) into rows of one
    contiguous block, so a full-fleet slot is B innovation draws plus
    **one** fused AR(1) update.

    RNG parity is preserved exactly: each world's innovations are
    drawn from *its own* generator into its row block, in world order
    -- the identical stream the per-network banks (and the historical
    per-channel loops) consume.  Worlds can also be stepped
    individually (:meth:`step_worlds` with a subset) when some worlds
    sit out a slot; only the stepped worlds' generators advance.

    Built by :meth:`adopt`, which returns ``None`` when the banks are
    not uniform (user counts or AR(1) parameters differ) -- callers
    then keep the per-network path.
    """

    def __init__(self, banks: Sequence[ChannelBank],
                 rngs: Sequence[np.random.Generator]) -> None:
        first = banks[0]
        self.banks = list(banks)
        self.rngs = list(rngs)
        self.correlation = first.correlation
        self.innovation_std_db = first.innovation_std_db
        total = sum(bank.snr_db.shape[0] for bank in banks)
        users = first.snr_db.shape[1]
        self.mean_snr_db = np.empty((total, users))
        self.snr_db = np.empty((total, users))
        self.cqi = np.empty((total, users), dtype=np.intp)
        self._z = np.empty((total, users))
        self.rows = []                    # (lo, hi) per world
        row = 0
        for bank in banks:
            hi = row + bank.snr_db.shape[0]
            bank.repoint(self.mean_snr_db[row:hi],
                         self.snr_db[row:hi], self.cqi[row:hi])
            self.rows.append((row, hi))
            row = hi

    @classmethod
    def adopt(cls, banks: Sequence[Optional[ChannelBank]],
              rngs: Sequence[np.random.Generator]
              ) -> Optional["FleetChannelBank"]:
        """Stack per-world banks, or ``None`` if any is missing or the
        populations are not uniform across worlds."""
        banks = list(banks)
        if not banks or any(bank is None for bank in banks):
            return None
        first = banks[0]
        for bank in banks[1:]:
            if (bank.snr_db.shape[1] != first.snr_db.shape[1]
                    or bank.correlation != first.correlation
                    or bank.innovation_std_db
                    != first.innovation_std_db):
                return None
        return cls(banks, rngs)

    def step_worlds(self, worlds: Sequence[int]) -> None:
        """Advance the given worlds' channels by one slot.

        The full fleet steps as one fused update; a strict subset
        falls back to per-bank steps (the bank arrays are views into
        the fleet block, so both paths write the same storage).
        """
        if len(worlds) == len(self.banks):
            z = self._z
            for b in worlds:
                lo, hi = self.rows[b]
                self.rngs[b].standard_normal(out=z[lo:hi])
            _ar1_step(self.snr_db, self.mean_snr_db, z,
                      self.correlation, self.innovation_std_db,
                      self.cqi)
            return
        for b in worlds:
            self.banks[b].step(self.rngs[b])
