"""Per-user radio channel processes.

The testbed keeps phones and antennas stationary inside a Faraday cage,
yet the paper reports "moderate variations of radio channel conditions
of slice users" (Sec. 9).  We model each user's wideband SNR as a
first-order Gauss-Markov (AR(1)) process around a per-user mean drawn
from a log-distance shadowing distribution, quantised to CQI with the
standard reporting thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.sim.phy import NUM_CQI, snr_to_cqi


@dataclass
class UserChannel:
    """State of one user's channel."""

    mean_snr_db: float
    snr_db: float
    cqi: int


class ChannelProcess:
    """AR(1) SNR evolution for a population of users.

    Parameters
    ----------
    num_users:
        Population size (one entry per UE).
    mean_snr_db / snr_spread_db:
        Mean and shadowing spread of the per-user average SNR.
    correlation:
        AR(1) coefficient per slot; 0.9 gives slowly-varying channels at
        the 15-minute configuration interval.
    innovation_std_db:
        Standard deviation of the AR(1) innovation.
    """

    def __init__(self, num_users: int, rng: np.random.Generator,
                 mean_snr_db: float = 18.0, snr_spread_db: float = 4.0,
                 correlation: float = 0.9,
                 innovation_std_db: float = 1.5) -> None:
        if num_users <= 0:
            raise ValueError("num_users must be positive")
        if not 0.0 <= correlation < 1.0:
            raise ValueError("correlation must be in [0, 1)")
        self._rng = rng
        self.correlation = correlation
        self.innovation_std_db = innovation_std_db
        self.users: List[UserChannel] = []
        for _ in range(num_users):
            mean = float(rng.normal(mean_snr_db, snr_spread_db))
            snr = float(rng.normal(mean, innovation_std_db))
            self.users.append(UserChannel(
                mean_snr_db=mean, snr_db=snr, cqi=snr_to_cqi(snr)))

    def step(self) -> None:
        """Advance every user's channel by one configuration slot."""
        rho = self.correlation
        sigma = self.innovation_std_db * np.sqrt(1.0 - rho ** 2)
        for user in self.users:
            user.snr_db = (user.mean_snr_db
                           + rho * (user.snr_db - user.mean_snr_db)
                           + float(self._rng.normal(0.0, sigma)))
            user.cqi = snr_to_cqi(user.snr_db)

    @property
    def cqis(self) -> np.ndarray:
        return np.array([user.cqi for user in self.users], dtype=int)

    @property
    def snrs_db(self) -> np.ndarray:
        return np.array([user.snr_db for user in self.users])

    def average_cqi(self) -> float:
        """Mean reported CQI -- the ``h_{t-1}`` state feature."""
        return float(self.cqis.mean())

    def normalized_quality(self) -> float:
        """Average CQI scaled to [0, 1] for state vectors."""
        return self.average_cqi() / NUM_CQI
