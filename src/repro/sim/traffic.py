"""Traffic synthesis: Telecom-Italia-style traces + Poisson emulation.

The paper drives its slices with the open Telecom Italia dataset (Call /
SMS / Internet records over the Province of Trento at >=10-minute
intervals), scaling each base station's trace to the testbed capability
(5 users/s MAR, 2 users/s HVS, 100 users/s RDC) and emulating arrivals
inside a slot with a Poisson point process.  The dataset is not
available offline, so :class:`TelecomItaliaSynthesizer` generates traces
with the dataset's documented structure: a diurnal double-peak profile,
weekly (weekday/weekend) modulation, and multiplicative log-normal
burst noise per bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from repro.config import TrafficConfig

#: Hard ceiling on normalised traffic envelopes.  The diurnal
#: synthesizer clips at 1.2x peak; scenario stress models (flash
#: crowds) may go further, up to a slice offering double its nominal
#: peak load.  The simulator and every traffic model clip against this
#: one constant.
MAX_ENVELOPE = 2.0


class TelecomItaliaSynthesizer:
    """Synthetic cellular-traffic envelope generator.

    Produces per-slot arrival *rates* normalised to [0, 1] (fraction of
    the slice's peak), which callers scale by the slice's
    ``max_arrival_rate``.
    """

    def __init__(self, cfg: Optional[TrafficConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cfg = cfg or TrafficConfig()
        self._rng = (rng if rng is not None
                     else np.random.default_rng(self.cfg.seed))

    def diurnal_profile(self, hour: np.ndarray) -> np.ndarray:
        """Deterministic double-peak daily shape in [night_floor, 1]."""
        cfg = self.cfg
        morning = np.exp(-0.5 * ((hour - cfg.morning_peak_hour) / 2.5) ** 2)
        evening = np.exp(-0.5 * ((hour - cfg.evening_peak_hour) / 3.0) ** 2)
        shape = np.maximum(morning, 0.9 * evening)
        return cfg.night_floor + (1.0 - cfg.night_floor) * shape

    def generate(self, num_slots: Optional[int] = None,
                 day_of_week: int = 2) -> np.ndarray:
        """One trace of per-slot normalised rates.

        Parameters
        ----------
        num_slots:
            Trace length; defaults to one episode (96 x 15 min).
        day_of_week:
            0 = Monday ... 6 = Sunday for the *first* slot; traces
            longer than a day advance the weekday across midnight, so
            only the slots that actually fall on a weekend are dampened
            by the weekly modulation factor.
        """
        cfg = self.cfg
        n = num_slots if num_slots is not None else cfg.slots_per_episode
        if n <= 0:
            raise ValueError("num_slots must be positive")
        slot_hours = cfg.slot_minutes / 60.0
        absolute_hours = np.arange(n) * slot_hours
        profile = self.diurnal_profile(absolute_hours % 24.0)
        days = (day_of_week + absolute_hours // 24.0).astype(int) % 7
        profile = np.where(days >= 5,
                           profile * (1.0 - cfg.weekly_modulation),
                           profile)
        noise = self._rng.lognormal(
            mean=-0.5 * cfg.noise_sigma ** 2, sigma=cfg.noise_sigma,
            size=n)
        return np.clip(profile * noise, 0.0, 1.2)

    def slots_per_day(self) -> int:
        """Number of slots in 24 hours at the configured cadence."""
        return max(int(round(24.0 * 60.0 / self.cfg.slot_minutes)), 1)

    def generate_days(self, num_days: int,
                      start_day_of_week: int = 0) -> np.ndarray:
        """One contiguous trace covering ``num_days`` full days.

        A single :meth:`generate` call so weekday bookkeeping (and the
        noise stream) is continuous across day boundaries.
        """
        if num_days <= 0:
            raise ValueError("num_days must be positive")
        return self.generate(num_days * self.slots_per_day(),
                             day_of_week=start_day_of_week)


class PoissonArrivals:
    """Poisson-point-process arrival emulation within one slot.

    Matches the testbed's emulation: "we emulate the traffic of slices
    during the configuration interval (i.e., generating all arrival
    timestamp of users) according to the Poisson point process", with
    exponential inter-arrival times at the trace-derived rate.
    """

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(13)

    def arrival_times(self, rate_per_s: float,
                      duration_s: float) -> np.ndarray:
        """All arrival timestamps in ``[0, duration_s)`` at ``rate_per_s``."""
        if rate_per_s < 0 or duration_s < 0:
            raise ValueError("rate and duration must be non-negative")
        if rate_per_s == 0 or duration_s == 0:
            return np.empty(0)
        # Draw a generous batch of exponential gaps, extend if needed.
        expected = rate_per_s * duration_s
        times: list = []
        t = 0.0
        batch = max(int(expected * 1.5) + 16, 16)
        while True:
            gaps = self._rng.exponential(1.0 / rate_per_s, size=batch)
            for gap in gaps:
                t += gap
                if t >= duration_s:
                    return np.array(times)
                times.append(t)

    def arrival_count(self, rate_per_s: float, duration_s: float) -> int:
        """Number of arrivals in a slot (closed-form Poisson draw)."""
        if rate_per_s < 0 or duration_s < 0:
            raise ValueError("rate and duration must be non-negative")
        return int(self._rng.poisson(rate_per_s * duration_s))

    def empirical_rate(self, rate_per_s: float,
                       duration_s: float) -> float:
        """Realised arrival rate of one slot (count / duration).

        This is what the slice actually experiences -- the Poisson
        burstiness around the trace envelope.
        """
        if duration_s <= 0:
            return 0.0
        return self.arrival_count(rate_per_s, duration_s) / duration_s
