"""Slice application models: MAR, HVS, RDC (paper Sec. 7.1).

Each application converts the end-to-end pipeline state (RAN capacity,
transport rate/latency, core processing, edge compute) into the scalar
performance metric its SLA is written against:

* **MAR** -- mobile augmented reality: 540p frames uplink, ORB feature
  extraction at the edge, matched objects downlink.  Metric: average
  round-trip frame latency (ms); requirement 500 ms.
* **HVS** -- HD video streaming: 1080p stream downlink.  Metric:
  delivered FPS; requirement 30.
* **RDC** -- reliable distant control: 1 kbit sensor uplink + 1 kbit
  control downlink.  Metric: radio transmission reliability;
  requirement 99.999 %.

The ``cost`` follows paper Eq. 10: ``c = 1 - clip(p/P, 0, 1)`` where the
satisfaction ratio ``p/P`` is ``measured/target`` for higher-is-better
metrics and ``target/measured`` for latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import SliceSpec
from repro.sim.queueing import queueing_latency_ms


@dataclass(frozen=True)
class PipelineState:
    """Everything an app model needs about one slot's pipeline."""

    arrival_rate: float            # requests (users) per second
    ul_capacity_bps: float
    dl_capacity_bps: float
    ul_retx_probability: float
    dl_retx_probability: float
    ran_base_latency_ms: float
    transport_rate_bps: float      # metered cap actually granted
    transport_latency_ms: float
    core_latency_ms: float
    core_capacity_pps: float
    edge_latency_ms: float
    edge_capacity_ups: float
    mean_packet_bits: float = 12e3


@dataclass(frozen=True)
class AppPerformance:
    """Scalar outcome of one slot for one slice."""

    metric: str
    value: float                   # measured performance (ms, fps, prob)
    satisfaction: float            # clip(p/P, 0, 1)
    cost: float                    # 1 - satisfaction (paper Eq. 10)


def _mm1_latency_ms(payload_bits: float, capacity_bps: float,
                    demand_bps: float) -> float:
    """Transfer latency of one payload over a shared fluid link.

    Service time is ``payload / capacity``, inflated by the shared
    queueing law (:func:`repro.sim.queueing.queueing_latency_ms`):
    M/M/1 below the knee, smooth linear overload above it.
    """
    if capacity_bps <= 0:
        return float("inf")
    rho = demand_bps / capacity_bps
    service_ms = payload_bits / capacity_bps * 1e3
    return queueing_latency_ms(service_ms, rho)


def _satisfaction(spec: SliceSpec, measured: float) -> float:
    """``clip(p/P, 0, 1)`` handling both metric orientations."""
    target = spec.sla.target
    if spec.sla.lower_is_better:
        if measured <= 0:
            return 1.0
        if not np.isfinite(measured):
            return 0.0
        ratio = target / measured
    else:
        ratio = measured / target
    return float(np.clip(ratio, 0.0, 1.0))


def evaluate_mar(spec: SliceSpec, pipe: PipelineState) -> AppPerformance:
    """Round-trip frame latency of the MAR loop.

    uplink frame transfer + transport + core processing + edge feature
    extraction/matching + downlink reply.  HARQ retransmissions add the
    8 ms LTE HARQ round trip weighted by the retransmission probability.
    """
    ul_demand = pipe.arrival_rate * spec.uplink_payload_bits
    dl_demand = pipe.arrival_rate * spec.downlink_payload_bits
    effective_ul = min(pipe.ul_capacity_bps, pipe.transport_rate_bps) \
        if pipe.transport_rate_bps > 0 else 0.0
    ul_ms = _mm1_latency_ms(spec.uplink_payload_bits, effective_ul,
                            ul_demand)
    dl_ms = _mm1_latency_ms(spec.downlink_payload_bits,
                            pipe.dl_capacity_bps, dl_demand)
    harq_ms = 8.0 * (pipe.ul_retx_probability
                     + pipe.dl_retx_probability)
    latency = (pipe.ran_base_latency_ms + ul_ms + dl_ms + harq_ms
               + pipe.transport_latency_ms + pipe.core_latency_ms
               + pipe.edge_latency_ms)
    sat = _satisfaction(spec, latency)
    return AppPerformance(metric=spec.sla.metric, value=float(latency),
                          satisfaction=sat, cost=1.0 - sat)


def evaluate_hvs(spec: SliceSpec, pipe: PipelineState) -> AppPerformance:
    """Delivered FPS of the streaming slice.

    Each concurrent viewer needs ``target_fps * frame_bits`` of
    sustained downlink; the delivered FPS scales with the tightest
    bottleneck among RAN downlink, the transport meter, and core packet
    processing.
    """
    target_fps = spec.sla.target
    demand_bps = (pipe.arrival_rate * target_fps
                  * spec.downlink_payload_bits)
    core_bps = pipe.core_capacity_pps * pipe.mean_packet_bits
    supply_bps = min(pipe.dl_capacity_bps, pipe.transport_rate_bps,
                     core_bps)
    if demand_bps <= 0:
        fps = target_fps
    else:
        fps = target_fps * min(supply_bps / demand_bps, 1.0)
        # Retransmissions skip/delay frames slightly even when
        # bandwidth suffices.
        fps *= 1.0 - 0.5 * pipe.dl_retx_probability
    sat = _satisfaction(spec, fps)
    return AppPerformance(metric=spec.sla.metric, value=float(fps),
                          satisfaction=sat, cost=1.0 - sat)


def evaluate_rdc(spec: SliceSpec, pipe: PipelineState) -> AppPerformance:
    """Radio transmission reliability of the control loop.

    Control messages are single-shot (the loop deadline leaves no room
    for HARQ), so a message survives only if both directions succeed at
    the first attempt; the MCS offset is the knob that buys reliability
    (paper Fig. 6).  If the slice's PRB partitions cannot carry the
    aggregate message rate, excess messages are dropped outright.
    """
    msg_rate_bps = pipe.arrival_rate * spec.uplink_payload_bits
    radio_ok = (1.0 - pipe.ul_retx_probability) \
        * (1.0 - pipe.dl_retx_probability)
    ul_carried = min(pipe.ul_capacity_bps / msg_rate_bps, 1.0) \
        if msg_rate_bps > 0 else 1.0
    dl_carried = min(pipe.dl_capacity_bps / msg_rate_bps, 1.0) \
        if msg_rate_bps > 0 else 1.0
    reliability = radio_ok * ul_carried * dl_carried
    sat = _satisfaction(spec, reliability)
    return AppPerformance(metric=spec.sla.metric,
                          value=float(reliability), satisfaction=sat,
                          cost=1.0 - sat)


_EVALUATORS = {"mar": evaluate_mar, "hvs": evaluate_hvs,
               "rdc": evaluate_rdc}


def evaluate_app(spec: SliceSpec, pipe: PipelineState) -> AppPerformance:
    """Dispatch to the slice's application model."""
    try:
        evaluator = _EVALUATORS[spec.app]
    except KeyError as exc:
        raise ValueError(f"unknown app {spec.app!r}") from exc
    return evaluator(spec, pipe)
