"""Docker-like container runtime for VNFs and edge servers.

The paper virtualises the CN VNFs and edge servers with Docker and
drives them through ``docker update`` (CPU/RAM) -- see Sec. 6 (CDM and
EDM).  :class:`ContainerRuntime` reproduces that control surface: named
containers with CPU-share and RAM limits, hot updates, and aggregate
accounting against the host capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class Container:
    """One running container with its resource limits."""

    name: str
    image: str
    cpu_share: float       # fraction of total host CPU in [0, 1]
    ram_gb: float
    labels: Dict[str, str] = field(default_factory=dict)
    running: bool = True


class ContainerRuntime:
    """Host-level container manager with capacity accounting."""

    def __init__(self, total_cpu_cores: float, total_ram_gb: float
                 ) -> None:
        if total_cpu_cores <= 0 or total_ram_gb <= 0:
            raise ValueError("host capacities must be positive")
        self.total_cpu_cores = total_cpu_cores
        self.total_ram_gb = total_ram_gb
        self._containers: Dict[str, Container] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._containers

    def __iter__(self) -> Iterator[Container]:
        return iter(self._containers.values())

    def __len__(self) -> int:
        return len(self._containers)

    def run(self, name: str, image: str, cpu_share: float = 0.0,
            ram_gb: float = 0.0,
            labels: Optional[Dict[str, str]] = None) -> Container:
        """``docker run`` -- instantiate a named container."""
        if name in self._containers:
            raise ValueError(f"container {name!r} already exists")
        container = Container(name=name, image=image,
                              cpu_share=float(cpu_share),
                              ram_gb=float(ram_gb),
                              labels=dict(labels or {}))
        self._containers[name] = container
        return container

    def update(self, name: str, cpu_share: Optional[float] = None,
               ram_gb: Optional[float] = None) -> Container:
        """``docker update`` -- adjust resources of a running container."""
        container = self.get(name)
        if cpu_share is not None:
            if cpu_share < 0:
                raise ValueError("cpu_share must be non-negative")
            container.cpu_share = float(cpu_share)
        if ram_gb is not None:
            if ram_gb < 0:
                raise ValueError("ram_gb must be non-negative")
            container.ram_gb = float(ram_gb)
        return container

    def stop(self, name: str) -> None:
        self.get(name).running = False

    def remove(self, name: str) -> None:
        if name not in self._containers:
            raise KeyError(f"no container {name!r}")
        del self._containers[name]

    def get(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError as exc:
            raise KeyError(f"no container {name!r}") from exc

    def by_label(self, key: str, value: str) -> Iterator[Container]:
        for container in self._containers.values():
            if container.labels.get(key) == value:
                yield container

    @property
    def allocated_cpu_share(self) -> float:
        return sum(c.cpu_share for c in self._containers.values()
                   if c.running)

    @property
    def allocated_ram_gb(self) -> float:
        return sum(c.ram_gb for c in self._containers.values()
                   if c.running)

    def cpu_overcommitted(self) -> bool:
        return self.allocated_cpu_share > 1.0 + 1e-9

    def ram_overcommitted(self) -> bool:
        return self.allocated_ram_gb > self.total_ram_gb + 1e-9
