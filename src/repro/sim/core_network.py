"""CUPS core network: HSS / MME / SPGW-C control plane, SPGW-U pools.

Reproduces the paper's CDM substrate (Sec. 6, Fig. 7): a CUPS-based EPC
where "each slice is associated with a set of SPGW-U instances and a
corresponding SPGW-U scheduling method", users are mapped to slices by
IMSI, and the SPGW-U for a user is chosen round-robin at attach time.
Each SPGW-U runs in a container; its packet-processing rate scales with
the CPU share the EDM/CDM allocate (``U_c``) and its latency follows an
M/M/1 processor-sharing curve.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import CoreConfig
from repro.sim.containers import ContainerRuntime
from repro.sim.queueing import queueing_latency_ms


@dataclass(frozen=True)
class Subscriber:
    """An HSS entry mapping an IMSI to its slice."""

    imsi: str
    slice_name: str


@dataclass
class Session:
    """An attached user session pinned to one SPGW-U instance."""

    imsi: str
    slice_name: str
    sgwu_name: str


@dataclass(frozen=True)
class CoreReport:
    """Per-slot user-plane outcome for one slice."""

    processing_rate_pps: float
    offered_rate_pps: float
    latency_ms: float
    utilization: float


class HSS:
    """Home subscriber server: IMSI -> slice registry."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, Subscriber] = {}

    def provision(self, imsi: str, slice_name: str) -> Subscriber:
        if imsi in self._subscribers:
            raise ValueError(f"IMSI {imsi} already provisioned")
        sub = Subscriber(imsi=imsi, slice_name=slice_name)
        self._subscribers[imsi] = sub
        return sub

    def lookup(self, imsi: str) -> Subscriber:
        try:
            return self._subscribers[imsi]
        except KeyError as exc:
            raise KeyError(f"unknown IMSI {imsi}") from exc

    def __len__(self) -> int:
        return len(self._subscribers)


class CoreNetwork:
    """CUPS EPC with per-slice SPGW-U pools.

    Parameters
    ----------
    cfg:
        Core-network capacities.
    runtime:
        Container runtime hosting the VNFs (shared with the edge, since
        the paper co-locates edge servers in the SPGW-U containers).
    """

    def __init__(self, cfg: Optional[CoreConfig] = None,
                 runtime: Optional[ContainerRuntime] = None) -> None:
        self.cfg = cfg or CoreConfig()
        # Explicit None check: an empty ContainerRuntime is falsy
        # (it implements __len__), so `runtime or ...` would silently
        # discard a freshly-created shared host.
        self.runtime = runtime if runtime is not None else \
            ContainerRuntime(8.0, 32.0)
        self.hss = HSS()
        self._sessions: Dict[str, Session] = {}
        self._pools: Dict[str, List[str]] = {}
        self._rr_cursor: Dict[str, itertools.cycle] = {}
        # Control-plane VNFs exist as containers for fidelity/accounting.
        for vnf in ("hss", "mme", "spgw-c"):
            self.runtime.run(vnf, image=f"oai-{vnf}", cpu_share=0.02,
                             ram_gb=0.5, labels={"plane": "control"})

    # ---- slice lifecycle -------------------------------------------

    def create_slice_pool(self, slice_name: str,
                          num_instances: Optional[int] = None) -> List[str]:
        """Instantiate the SPGW-U pool of a slice (exclusive instances)."""
        if slice_name in self._pools:
            raise ValueError(f"slice {slice_name!r} already has a pool")
        count = (num_instances if num_instances is not None
                 else self.cfg.num_sgwu_per_slice)
        if count <= 0:
            raise ValueError("pool needs at least one SPGW-U")
        names = []
        for i in range(count):
            name = f"spgwu-{slice_name}-{i}"
            self.runtime.run(name, image="oai-spgwu", cpu_share=0.0,
                             ram_gb=0.0,
                             labels={"plane": "user",
                                     "slice": slice_name})
            names.append(name)
        self._pools[slice_name] = names
        self._rr_cursor[slice_name] = itertools.cycle(names)
        return list(names)

    def delete_slice_pool(self, slice_name: str) -> None:
        for name in self._pools.pop(slice_name, []):
            self.runtime.remove(name)
        self._rr_cursor.pop(slice_name, None)
        self._sessions = {imsi: s for imsi, s in self._sessions.items()
                          if s.slice_name != slice_name}

    def pool(self, slice_name: str) -> Sequence[str]:
        try:
            return tuple(self._pools[slice_name])
        except KeyError as exc:
            raise KeyError(f"slice {slice_name!r} has no pool") from exc

    # ---- attachment --------------------------------------------------

    def attach(self, imsi: str) -> Session:
        """Initial attach: IMSI -> slice via HSS, SPGW-U via round-robin.

        Mirrors the CDM scheduling method: "it selects the destination
        SPGW-U from the SPGW-U pool of the slice based on the
        round-robin scheduling during the initial attachment procedure".
        """
        sub = self.hss.lookup(imsi)
        if imsi in self._sessions:
            raise ValueError(f"IMSI {imsi} already attached")
        if sub.slice_name not in self._pools:
            raise KeyError(f"slice {sub.slice_name!r} has no SPGW-U pool")
        sgwu = next(self._rr_cursor[sub.slice_name])
        session = Session(imsi=imsi, slice_name=sub.slice_name,
                          sgwu_name=sgwu)
        self._sessions[imsi] = session
        return session

    def detach(self, imsi: str) -> None:
        if imsi not in self._sessions:
            raise KeyError(f"IMSI {imsi} not attached")
        del self._sessions[imsi]

    def sessions_of(self, slice_name: str) -> List[Session]:
        return [s for s in self._sessions.values()
                if s.slice_name == slice_name]

    # ---- user-plane performance --------------------------------------

    def set_slice_resources(self, slice_name: str, cpu_share: float,
                            ram_gb: float) -> None:
        """Apply ``docker update`` across the slice's SPGW-U pool."""
        pool = self.pool(slice_name)
        per_cpu = float(np.clip(cpu_share, 0.0, 1.0)) / len(pool)
        per_ram = max(ram_gb, 0.0) / len(pool)
        for name in pool:
            self.runtime.update(name, cpu_share=per_cpu, ram_gb=per_ram)

    def evaluate(self, slice_name: str, offered_rate_bps: float
                 ) -> CoreReport:
        """Process a slice's user-plane load through its SPGW-U pool.

        Service rate scales linearly in the pool's CPU share;
        latency follows M/M/1: ``1/(mu - lambda)`` in packet-service
        units, plus the control-plane base latency.
        """
        pool = self.pool(slice_name)
        cpu = sum(self.runtime.get(n).cpu_share for n in pool)
        mu = cpu * self.cfg.sgwu_capacity_pps
        lam = offered_rate_bps / self.cfg.mean_packet_bits
        if mu <= 0:
            return CoreReport(processing_rate_pps=0.0,
                              offered_rate_pps=float(lam),
                              latency_ms=float("inf"),
                              utilization=1.0 if lam > 0 else 0.0)
        utilization = lam / mu
        latency = self.cfg.base_latency_ms + queueing_latency_ms(
            1e3 / mu, utilization)
        return CoreReport(processing_rate_pps=float(mu),
                          offered_rate_pps=float(lam),
                          latency_ms=float(latency),
                          utilization=float(min(utilization, 1.0)))
