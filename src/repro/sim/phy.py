"""PHY-layer abstraction: CQI/MCS tables, spectral efficiency, BLER.

Models the pieces of the OAI PHY/MAC that the paper's RDM manipulates:

* the standard CQI -> MCS mapping (3GPP TS 36.213 Table 7.2.3-1 shape),
* the *customised CQI-MCS mapping table* of the RDM, realised as an MCS
  offset subtracted from the vanilla MCS ("a uRLLC slice can map CQI
  index 15 to 16-QAM instead of standardized 64-QAM to achieve more
  robust radio transmissions but lower link capacities"),
* a block-error-rate model in which backing off the MCS exponentially
  reduces the retransmission probability, matching the paper's Fig. 6
  measurement (~1e-1 at offset 0 down to ~1e-5 at offset 10, with the
  uplink benefiting more steeply than the downlink).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config import MAX_MCS_OFFSET

#: CQI index -> (modulation order bits, code rate x1024, efficiency)
#: following 3GPP TS 36.213 Table 7.2.3-1 (4-bit CQI, QPSK..64QAM).
CQI_TABLE: Tuple[Tuple[int, int, float], ...] = (
    (0, 0, 0.0),        # out of range / no transmission
    (2, 78, 0.1523),
    (2, 120, 0.2344),
    (2, 193, 0.3770),
    (2, 308, 0.6016),
    (2, 449, 0.8770),
    (2, 602, 1.1758),
    (4, 378, 1.4766),
    (4, 490, 1.9141),
    (4, 616, 2.4063),
    (6, 466, 2.7305),
    (6, 567, 3.3223),
    (6, 666, 3.9023),
    (6, 772, 4.5234),
    (6, 873, 5.1152),
    (6, 948, 5.5547),
)

#: MCS index -> spectral efficiency (bit/s/Hz), a 29-entry table with the
#: TS 36.213 Table 8.6.1-1 modulation split (QPSK 0-9, 16QAM 10-16,
#: 64QAM 17-28) and efficiencies interpolated between the CQI anchors.
MCS_TABLE: Tuple[float, ...] = tuple(
    float(x) for x in np.concatenate([
        np.linspace(0.1523, 1.1758, 10),   # MCS 0-9   QPSK
        np.linspace(1.3262, 2.4063, 7),    # MCS 10-16 16QAM
        np.linspace(2.5664, 5.5547, 12),   # MCS 17-28 64QAM
    ])
)

NUM_CQI = len(CQI_TABLE) - 1      # CQI 1..15 usable
NUM_MCS = len(MCS_TABLE)          # MCS 0..28

#: SNR (dB) at which each CQI level is reported: roughly 2 dB per CQI
#: step starting at -6 dB (standard link-adaptation curves).
CQI_SNR_THRESHOLDS_DB: Tuple[float, ...] = tuple(
    -6.0 + 2.0 * i for i in range(NUM_CQI))


def snr_to_cqi(snr_db: float) -> int:
    """Quantise an SNR measurement to the reported CQI index (1..15)."""
    cqi = int(np.searchsorted(CQI_SNR_THRESHOLDS_DB, snr_db, side="right"))
    return int(np.clip(cqi, 1, NUM_CQI))


def cqi_to_mcs(cqi: int) -> int:
    """Vanilla CQI -> MCS mapping (the OAI default the RDM customises).

    Approximately ``mcs = 2 * cqi - 2`` which lands CQI 15 on MCS 28.
    """
    if not 1 <= cqi <= NUM_CQI:
        raise ValueError(f"CQI must be in 1..{NUM_CQI}, got {cqi}")
    return int(np.clip(2 * cqi - 2, 0, NUM_MCS - 1))


def mcs_spectral_efficiency(mcs: int) -> float:
    """Spectral efficiency (bit/s/Hz) achieved by an MCS index."""
    if not 0 <= mcs < NUM_MCS:
        raise ValueError(f"MCS must be in 0..{NUM_MCS - 1}, got {mcs}")
    return MCS_TABLE[mcs]


@dataclass(frozen=True)
class LinkQuality:
    """Result of a PHY evaluation for one link direction."""

    mcs: int
    spectral_efficiency: float     # bit/s/Hz before HARQ losses
    bler: float                    # first-transmission block error rate
    retransmission_probability: float
    goodput_efficiency: float      # efficiency after HARQ overhead


class PhyModel:
    """Link-level model tying CQI, MCS offset and retransmissions.

    Parameters
    ----------
    uplink_bler_decay / downlink_bler_decay:
        Per-offset-step multiplicative decay of the retransmission
        probability.  Fitted to the paper's Fig. 6: the retransmission
        probability falls from ~1e-1 to ~1e-5 over offsets 0..10 in the
        uplink (decay ~0.40/step) and from ~1.5e-2 to ~1.5e-4 in the
        flatter downlink (~0.63/step).
    base_retx_ul / base_retx_dl:
        Retransmission probability at offset 0 under nominal channel
        conditions.
    """

    def __init__(self, base_retx_ul: float = 0.12,
                 base_retx_dl: float = 0.015,
                 uplink_bler_decay: float = 0.40,
                 downlink_bler_decay: float = 0.63) -> None:
        if not 0 < base_retx_ul < 1 or not 0 < base_retx_dl < 1:
            raise ValueError("base retransmission probs must be in (0,1)")
        if not 0 < uplink_bler_decay < 1 or not 0 < downlink_bler_decay < 1:
            raise ValueError("decay factors must be in (0,1)")
        self.base_retx_ul = base_retx_ul
        self.base_retx_dl = base_retx_dl
        self.uplink_bler_decay = uplink_bler_decay
        self.downlink_bler_decay = downlink_bler_decay

    def effective_mcs(self, cqi: int, mcs_offset: int,
                      fixed_mcs: int = -1) -> int:
        """MCS actually used: vanilla MCS from CQI minus the offset.

        A non-negative ``fixed_mcs`` (paper Sec. 7.2 pins MCS 9 for the
        4G/5G comparison) bypasses link adaptation; the offset then
        still applies below the fixed point, mirroring how the RDM's
        custom table composes with a pinned MCS.
        """
        if not 0 <= mcs_offset <= MAX_MCS_OFFSET:
            raise ValueError(
                f"mcs_offset must be in 0..{MAX_MCS_OFFSET}")
        base = fixed_mcs if fixed_mcs >= 0 else cqi_to_mcs(cqi)
        return int(np.clip(base - mcs_offset, 0, NUM_MCS - 1))

    def retransmission_probability(self, mcs_offset: int,
                                   uplink: bool,
                                   channel_margin_db: float = 0.0
                                   ) -> float:
        """First-transmission error probability at a given offset.

        ``channel_margin_db`` shifts the curve: positive margins (better
        channel than the CQI report assumed) reduce the error rate by
        ~a decade per 6 dB.
        """
        if uplink:
            base, decay = self.base_retx_ul, self.uplink_bler_decay
        else:
            base, decay = self.base_retx_dl, self.downlink_bler_decay
        prob = base * decay ** mcs_offset
        prob *= 10.0 ** (-channel_margin_db / 6.0)
        return float(np.clip(prob, 1e-9, 0.99))

    def link_quality(self, cqi: int, mcs_offset: int, uplink: bool,
                     fixed_mcs: int = -1,
                     channel_margin_db: float = 0.0) -> LinkQuality:
        """Full link evaluation for one direction.

        The goodput efficiency folds HARQ retransmissions in as a rate
        discount of ``1 / (1 + p)`` (each errored block consumes one
        extra transmission on average for small ``p``).
        """
        mcs = self.effective_mcs(cqi, mcs_offset, fixed_mcs=fixed_mcs)
        eff = mcs_spectral_efficiency(mcs)
        retx = self.retransmission_probability(
            mcs_offset, uplink, channel_margin_db=channel_margin_db)
        goodput = eff * (1.0 - retx) / (1.0 + retx)
        return LinkQuality(mcs=mcs, spectral_efficiency=eff, bler=retx,
                           retransmission_probability=retx,
                           goodput_efficiency=goodput)

    def message_failure_probability(self, mcs_offset: int, uplink: bool,
                                    harq_rounds: int = 2,
                                    channel_margin_db: float = 0.0
                                    ) -> float:
        """Probability a small message fails all HARQ rounds.

        The RDC slice's reliability metric: a 1 kbit message fits one
        transport block, is retried up to ``harq_rounds`` times, and is
        lost only when every round fails.
        """
        if harq_rounds < 1:
            raise ValueError("harq_rounds must be >= 1")
        p = self.retransmission_probability(
            mcs_offset, uplink, channel_margin_db=channel_margin_db)
        return float(p ** harq_rounds)
