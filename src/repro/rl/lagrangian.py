"""Lagrangian primal-dual multiplier for the SLA constraint.

Paper Eq. 3-5: the constrained problem ``max E[sum r]`` s.t.
``E[(1/T) sum c] <= C_max`` becomes the Lagrangian
``L = E[sum (r - (lambda/T) c)] + lambda C_max``; the dual variable
follows projected sub-gradient ascent

    lambda <- [lambda + eps * (E[(1/T) sum c] - C_max)]^+

so the penalty grows while the slice SLA is being violated and decays
back toward zero once it is satisfied.
"""

from __future__ import annotations

from typing import Optional

from repro.config import LagrangianConfig


class LagrangianMultiplier:
    """Tracks lambda and produces penalised rewards."""

    def __init__(self, cost_threshold: float,
                 cfg: Optional[LagrangianConfig] = None) -> None:
        if cost_threshold < 0:
            raise ValueError("cost_threshold must be non-negative")
        self.cfg = cfg or LagrangianConfig()
        self.cost_threshold = cost_threshold
        self.value = float(self.cfg.initial_multiplier)
        self._history = [self.value]

    def penalized_reward(self, reward: float, cost: float) -> float:
        """Per-slot penalised reward of Eq. 3.

        Eq. 3 subtracts ``(lambda/T) c_t`` inside a sum over T slots; in
        per-slot form the constraint-scale cancels to ``r_t - lambda *
        c_t`` (the constraint of Eq. 2 is on the *mean* cost), which is
        what we apply to every transition handed to the rollout buffer.
        """
        return reward - self.value * cost

    def update(self, mean_episode_cost: float) -> float:
        """Dual ascent step from the observed mean per-slot cost.

        Parameters
        ----------
        mean_episode_cost:
            The empirical ``(1/T) sum_t c_t`` of recent episodes.

        Returns the new multiplier value.
        """
        residual = mean_episode_cost - self.cost_threshold
        step = self.cfg.step_size
        if residual < 0:
            step *= self.cfg.decay_fraction
        self.value = min(
            max(self.value + step * residual, self.cfg.min_multiplier),
            self.cfg.max_multiplier)
        self._history.append(self.value)
        return self.value

    @property
    def history(self):
        return tuple(self._history)
