"""pi_phi: variational Bayesian estimator of the baseline cost-to-go.

Paper Sec. 3: the switching rule needs ``C = E_pi_b[sum_{t=tc}^T c_t]``,
the cumulative cost were the baseline to finish the episode from the
current slot.  A deterministic net "only generates a single estimation
value and overlooks statistical information", so the paper trains a
probabilistic model with variational inference (Eq. 6-7) and uses both
the mean mu and the deviation sigma in the switch criterion (Eq. 8).

:class:`CostToGoEstimator` wraps a :class:`repro.nn.bayesian.BayesianMLP`
with the dataset plumbing: given episodes of (state, cost) pairs run by
the baseline, it forms cost-to-go targets and maximises the ELBO.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.config import EstimatorConfig
from repro.nn.bayesian import BayesianMLP
from repro.nn.optim import Adam, clip_grad_norm


def cost_to_go(costs: Sequence[float]) -> np.ndarray:
    """Undiscounted suffix sums ``C_t = sum_{m>=t} c_m`` of an episode."""
    arr = np.asarray(costs, dtype=np.float64)
    return arr[::-1].cumsum()[::-1].copy()


class CostToGoEstimator:
    """Trainable posterior over the baseline policy's cost-to-go."""

    def __init__(self, state_dim: int,
                 cfg: Optional[EstimatorConfig] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.cfg = cfg or EstimatorConfig()
        self._rng = rng if rng is not None else np.random.default_rng(3)
        self.state_dim = state_dim
        self.network = BayesianMLP(
            state_dim, 1, hidden_sizes=self.cfg.hidden_sizes,
            rng=self._rng, prior_std=self.cfg.prior_std, name="pi_phi")
        self._optim = Adam(self.network.parameters(),
                           lr=self.cfg.learning_rate)
        self._states: List[np.ndarray] = []
        self._targets: List[float] = []
        #: Standardisation of targets keeps the Gaussian likelihood well
        #: scaled regardless of the episode horizon.
        self._target_mean = 0.0
        self._target_std = 1.0

    # ---- dataset management ---------------------------------------

    def add_episode(self, states: Sequence[np.ndarray],
                    costs: Sequence[float]) -> None:
        """Register one baseline episode as (state, cost-to-go) pairs."""
        if len(states) != len(costs):
            raise ValueError("states/costs length mismatch")
        targets = cost_to_go(costs)
        for state, target in zip(states, targets):
            self._states.append(np.asarray(state, dtype=np.float64))
            self._targets.append(float(target))

    @property
    def dataset_size(self) -> int:
        return len(self._states)

    def clear_dataset(self) -> None:
        self._states = []
        self._targets = []

    # ---- training ---------------------------------------------------

    def fit(self, epochs: Optional[int] = None) -> List[float]:
        """Maximise the ELBO over the stored dataset (Eq. 7).

        Returns the per-epoch negative-ELBO curve.
        """
        if not self._states:
            raise RuntimeError("no episodes added")
        epochs = epochs if epochs is not None else self.cfg.train_epochs
        states = np.stack(self._states)
        targets = np.array(self._targets)
        self._target_mean = float(targets.mean())
        self._target_std = max(float(targets.std()), 1e-6)
        targets = (targets - self._target_mean) / self._target_std
        n = len(states)
        kl_weight = self.cfg.kl_weight / max(n, 1)
        curve: List[float] = []
        for _ in range(epochs):
            order = self._rng.permutation(n)
            epoch_loss, batches = 0.0, 0
            for start in range(0, n, self.cfg.minibatch_size):
                idx = order[start:start + self.cfg.minibatch_size]
                self._optim.zero_grad()
                nll, kl = self.network.elbo_step(
                    states[idx], targets[idx], kl_weight=kl_weight)
                clip_grad_norm(self.network.parameters(), 5.0)
                self._optim.step()
                epoch_loss += nll + kl_weight * kl
                batches += 1
            curve.append(epoch_loss / max(batches, 1))
        return curve

    # ---- inference ----------------------------------------------------

    def predict(self, state: np.ndarray,
                num_samples: Optional[int] = None
                ) -> Tuple[float, float]:
        """Posterior predictive ``(mu, sigma)`` of the cost-to-go."""
        num_samples = (num_samples if num_samples is not None
                       else self.cfg.num_posterior_samples)
        mean, std = self.network.predict(
            np.asarray(state, dtype=np.float64),
            num_samples=num_samples, rng=self._rng)
        return (float(mean[0]) * self._target_std + self._target_mean,
                float(std[0]) * self._target_std)
