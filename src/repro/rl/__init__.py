"""Reinforcement-learning substrate: PPO, constrained updates, imitation.

Implements the learning machinery of the paper's Sec. 3 and Sec. 5:
clipped-surrogate PPO with GAE, the Lagrangian primal-dual multiplier of
Eq. 5, truncated-episode handling for the proactive baseline switch,
behavior cloning (Eq. 15), and the variational cost-to-go estimator.
"""

from repro.rl.buffer import RolloutBuffer, Transition
from repro.rl.ppo import GaussianActorCritic, PPOTrainer
from repro.rl.lagrangian import LagrangianMultiplier
from repro.rl.behavior_cloning import BehaviorCloningTrainer
from repro.rl.cost_estimator import CostToGoEstimator

__all__ = [
    "BehaviorCloningTrainer",
    "CostToGoEstimator",
    "GaussianActorCritic",
    "LagrangianMultiplier",
    "PPOTrainer",
    "RolloutBuffer",
    "Transition",
]
